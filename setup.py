from setuptools import setup

# Entry points are duplicated here because the offline `setup.py develop`
# path predates full pyproject [project.scripts] support.
setup(
    entry_points={
        "console_scripts": ["repro-scan=repro.cli:main"],
    },
)
