#!/usr/bin/env python3
"""Tool fingerprinting from first principles.

Crafts packets with each scanning tool's wire behaviour, shows the header
relations the paper exploits (§3.3), and runs the detectors against mixed
traffic — including a de-fingerprinted ZMap build that evades attribution.

Usage::

    python examples/fingerprint_tools.py
"""

import numpy as np

from repro import ToolFingerprinter
from repro.scanners import (
    MasscanModel,
    MiraiModel,
    NMapModel,
    Tool,
    UnicornModel,
    ZMapModel,
    masscan_ip_id,
    nmap_pair_relation_holds,
)
from repro.telescope import PacketBatch, int_to_ip


def craft(model, n=6, seed=1):
    gen = np.random.default_rng(seed)
    dst_ip = gen.integers(0x64400000, 0x64410000, n, dtype=np.uint32)
    dst_port = np.full(n, 443, dtype=np.uint16)
    fields = model.craft(dst_ip, dst_port)
    return dst_ip, dst_port, fields


def main() -> None:
    print("=== the wire relations (paper §3.3) ===\n")

    # ZMap: constant IP identification.
    _, _, z = craft(ZMapModel(rng=1))
    print(f"ZMap      ip_id always {z.ip_id[0]} -> {set(z.ip_id.tolist())}")

    # Masscan: ip_id = dstIP ^ dstPort ^ seq.
    dip, dpt, m = craft(MasscanModel(rng=2))
    check = masscan_ip_id(dip, dpt, m.seq)
    print(f"Masscan   ip_id == dstIP^dstPort^seq for all packets: "
          f"{bool(np.all(m.ip_id == check))}")

    # Mirai: seq == dstIP.
    dip, _, mi = craft(MiraiModel(rng=3))
    print("Mirai     seq == dstIP:")
    for ip, seq in zip(dip[:3].tolist(), mi.seq[:3].tolist()):
        print(f"            dst {int_to_ip(ip):>15s}  seq {seq:#010x}")

    # NMap: XOR of two seqs has equal 16-bit halves (reused keystream).
    _, _, nm = craft(NMapModel(rng=4))
    delta = int(nm.seq[0]) ^ int(nm.seq[1])
    print(f"NMap      seq1^seq2 = {delta:#010x}  "
          f"low16 == high16: {nmap_pair_relation_holds(int(nm.seq[0]), int(nm.seq[1]))}")

    # Unicorn: seq encodes dstIP, srcPort and dstPort.
    dip, dpt, u = craft(UnicornModel(rng=5))
    lhs = int(u.seq[0]) ^ int(u.seq[1])
    rhs = (int(dip[0]) ^ int(dip[1])
           ^ int(u.src_port[0]) ^ int(u.src_port[1])
           ^ ((int(dpt[0]) ^ int(dpt[1])) << 16)) & 0xFFFFFFFF
    print(f"Unicorn   seq1^seq2 == dst/port relation: {lhs == rhs}")

    print("\n=== detection on mixed traffic ===\n")
    fingerprinter = ToolFingerprinter()
    scenarios = [
        ("stock ZMap", ZMapModel(rng=10)),
        ("de-fingerprinted ZMap", ZMapModel(rng=11, fingerprintable=False)),
        ("Masscan", MasscanModel(rng=12)),
        ("Mirai bot", MiraiModel(rng=13)),
        ("NMap session", NMapModel(rng=14)),
    ]
    for label, model in scenarios:
        dip, dpt, fields = craft(model, n=200, seed=99)
        batch = PacketBatch(
            time=np.arange(200, dtype=float),
            src_ip=np.full(200, 42, dtype=np.uint32),
            dst_ip=dip, src_port=fields.src_port, dst_port=dpt,
            ip_id=fields.ip_id, seq=fields.seq, ttl=fields.ttl,
            window=fields.window, flags=np.full(200, 2, dtype=np.uint8),
        )
        verdict = fingerprinter.fingerprint_batch(batch)
        print(f"  {label:24s} -> {verdict.tool.value:8s} "
              f"(match {verdict.match_fraction:.0%})")

    print("\nThe de-fingerprinted build is why tool-attributable traffic "
          "drops below 40% by 2024 (§6.1).")


if __name__ == "__main__":
    main()
