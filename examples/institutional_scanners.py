#!/usr/bin/env python3
"""Who is scanning you, and should you care? (§6.6–6.8, Figures 5–10)

Simulates a 2024 period, classifies every scanning source, and answers the
paper's institutional-scanner questions: how few sources produce how much
traffic, which organisations cover the whole port range, who re-scans daily,
and what that means for blocklists.

Usage::

    python examples/institutional_scanners.py
"""

from repro import TelescopeWorld, analyze_simulation
from repro._util.fmt import format_table
from repro.core.classification import (
    capability_by_type,
    institutional_speed_ratio,
    type_shares,
)
from repro.core.institutions import known_scanner_share, org_footprints
from repro.core.recurrence import recurrence_by_type
from repro.enrichment.types import ScannerType
from repro.reporting import render_table2


def main() -> None:
    world = TelescopeWorld(rng=19)
    sim = world.simulate_year(2024, days=21, max_packets=700_000, min_scans=600)
    analysis = analyze_simulation(sim)

    print("=== who scans (Table 2) ===")
    print(render_table2(type_shares(analysis)))

    share = known_scanner_share(analysis)
    print(f"\nacknowledged scanners: {share.organisations} organisations = "
          f"{share.source_share:.2%} of sources but {share.packet_share:.0%} "
          f"of all telescope traffic")
    print(f"institutional scans are {institutional_speed_ratio(analysis):.0f}x "
          f"faster than the rest on average (paper: ~92x)")

    print("\n=== port-range coverage per organisation (Figure 8) ===")
    rows = []
    for fp in sorted(org_footprints(analysis).values(),
                     key=lambda f: -f.port_coverage)[:12]:
        rows.append([fp.organisation[:28], fp.sources, fp.scans,
                     fp.distinct_ports, f"{fp.port_coverage:.1%}"])
    print(format_table(["organisation", "ips", "scans", "ports", "coverage"],
                       rows))

    print("\n=== who comes back (Figure 6) ===")
    recurrence = recurrence_by_type(analysis.study_scans)
    rows = []
    for stype in ScannerType:
        stats = recurrence.get(stype)
        if stats is None:
            continue
        rows.append([stype.value, stats.sources,
                     f"{stats.fraction_recurring:.0%}",
                     f"{stats.daily_mode_fraction:.0%}"])
    print(format_table(["type", "sources", "recurring", "daily cadence"], rows))

    caps = capability_by_type(analysis)
    inst = caps.get(ScannerType.INSTITUTIONAL)
    res = caps.get(ScannerType.RESIDENTIAL)
    if inst and res:
        print(f"\nspeed: institutional median {inst.speed.median_pps:,.0f} pps "
              f"vs residential {res.speed.median_pps:,.0f} pps")

    print(
        "\nTakeaway (§6.6): non-institutional sources essentially never "
        "return, so IP blocklists go stale before they are distributed; "
        "filtering the handful of acknowledged organisations, however, "
        "removes a third to a half of everything a telescope sees."
    )


if __name__ == "__main__":
    main()
