#!/usr/bin/env python3
"""Would a scanner blocklist actually help you? (§4.4, §6.6)

Simulates a 2022 period and runs the blocklist workflow the paper argues
against: collect last week's scanning IPs, block them this week, measure
what that bought you. Then contrasts it with the one list that stays fresh
— the acknowledged institutional scanners — and with reconstructing
collaborative campaigns instead of counting single sources.

Usage::

    python examples/blocklist_study.py
"""

from repro import TelescopeWorld, analyze_simulation
from repro._util.fmt import format_table
from repro.core import (
    blocklist_effectiveness,
    institutional_filter_effectiveness,
    merge_collaborative_scans,
    single_source_bias,
)


def main() -> None:
    world = TelescopeWorld(rng=23)
    sim = world.simulate_year(2022, days=28, max_packets=400_000, min_scans=700)
    analysis = analyze_simulation(sim)
    print(f"capture: {len(analysis.study_batch):,} packets, "
          f"{analysis.distinct_sources:,} sources, "
          f"{len(analysis.study_scans):,} scans over {sim.days} days\n")

    print("=== the naive blocklist (build one week, apply the next) ===")
    results = blocklist_effectiveness(analysis.study_batch, build_days=7.0)
    rows = [
        [f"week {i} -> {i + 1}", f"{r.list_size:,}",
         f"{r.source_hit_rate:.1%}", f"{r.packet_hit_rate:.1%}"]
        for i, r in enumerate(results)
    ]
    print(format_table(["windows", "list size", "sources blocked",
                        "packets blocked"], rows))
    print("Most of last week's scanners are gone before the list ships —\n"
          "their addresses are burned (hosting) or churned (residential).\n")

    print("=== with distribution lag (a realistic feed delay) ===")
    lagged = blocklist_effectiveness(analysis.study_batch, build_days=7.0,
                                     lag_days=3.0)
    for i, r in enumerate(lagged):
        print(f"  lagged window {i}: sources blocked {r.source_hit_rate:.1%}, "
              f"packets {r.packet_hit_rate:.1%}")

    print("\n=== the list that works: acknowledged scanners ===")
    inst = institutional_filter_effectiveness(analysis, build_days=7.0)
    print(f"  {inst.list_size} institutional IPs collected in week one")
    print(f"  block {inst.packet_hit_rate:.1%} of all subsequent packets "
          f"({inst.source_hit_rate:.2%} of sources)")
    print("  — stable sources, daily re-scans, published address space.\n")

    print("=== counting scans vs counting campaigns (§9) ===")
    merged = merge_collaborative_scans(analysis.study_scans)
    bias = single_source_bias(analysis.study_scans, merged)
    print(f"  observed scans:        {bias.observed_scans}")
    print(f"  logical campaigns:     {bias.logical_campaigns}")
    print(f"  counting inflation:    {bias.inflation_factor:.2f}x")
    print(f"  collaborative groups:  {bias.collaborative_campaigns} "
          f"(mean {bias.mean_sources_per_collaboration:.1f} hosts each)")


if __name__ == "__main__":
    main()
