#!/usr/bin/env python3
"""Quickstart: simulate a telescope period, run the analysis pipeline, and
print the headline ecosystem statistics.

Usage::

    python examples/quickstart.py [year]

The whole flow is four calls: build a world, simulate a year, analyse the
capture, summarise.  Runs in a few seconds at the default scale.
"""

import sys

from repro import TelescopeWorld, analyze_simulation, summarize_period
from repro.reporting import render_table1


def main() -> None:
    year = int(sys.argv[1]) if len(sys.argv) > 1 else 2020

    # A world bundles the telescope (three partially populated /16 blocks)
    # and a synthetic Internet registry; the seed makes everything
    # reproducible.
    world = TelescopeWorld(rng=7)

    print(f"simulating a {year} measurement period ...")
    sim = world.simulate_year(year, days=14, max_packets=200_000, min_scans=400)
    print(f"  captured {len(sim.batch):,} SYN probes "
          f"({sim.packets_per_day_unscaled():,.0f} packets/day projected "
          f"to real-world volume)")
    print(f"  ground truth: {len(sim.campaigns):,} logical campaigns, "
          f"{sim.background_sources:,} background sources")

    # The analysis pipeline only sees packets: it identifies scans (>=100
    # destinations at >=100 pps Internet-wide, 1 h expiry), fingerprints the
    # tools behind them, and enriches origins.
    analysis = analyze_simulation(sim)
    print(f"  identified {len(analysis.scans):,} scans from "
          f"{analysis.distinct_sources:,} distinct sources")

    summary = summarize_period(analysis)
    print()
    print(render_table1({year: summary}))

    print()
    print("tool shares by packets:")
    for tool, share in sorted(summary.tool_shares_by_packets.items(),
                              key=lambda kv: -kv[1]):
        print(f"  {tool.value:10s} {share:6.1%}")


if __name__ == "__main__":
    main()
