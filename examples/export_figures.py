#!/usr/bin/env python3
"""Regenerate the paper's figure data as plottable CSV/JSON artifacts.

Simulates a few study years, runs every figure analysis, and writes the
resulting series into an output directory — ready for matplotlib, gnuplot
or a spreadsheet. No plotting library is required (or used).

Usage::

    python examples/export_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro import TelescopeWorld, analyze_simulation, summarize_period
from repro.core import type_shares
from repro.core.ports_analysis import ports_per_source_summary
from repro.core.recurrence import recurrence_by_type
from repro.core.volatility import volatility_summary
from repro.reporting import (
    export_cdf,
    export_csv,
    export_json,
    export_year_summaries,
    figure7_speed_coverage,
    figure8_org_port_coverage,
)


def main() -> None:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "figure_data")
    out.mkdir(parents=True, exist_ok=True)
    years = (2016, 2020, 2024)

    world = TelescopeWorld(rng=31)
    analyses = {}
    summaries = {}
    for year in years:
        print(f"simulating {year} ...")
        sim = world.simulate_year(year, days=14, max_packets=250_000,
                                  min_scans=500)
        analyses[year] = analyze_simulation(sim)
        summaries[year] = summarize_period(analyses[year])

    written = []

    # Table 1 rows.
    written.append(export_year_summaries(out / "table1.csv", summaries))

    # Table 2 per year.
    for year, analysis in analyses.items():
        written.append(export_json(
            out / f"table2_{year}.json", type_shares(analysis)
        ))

    # Figure 2: weekly change CDFs.
    for year, analysis in analyses.items():
        vol = volatility_summary(analysis)
        for metric, summary in vol.items():
            if summary.cdf[0].size:
                written.append(export_cdf(
                    out / f"fig2_{year}_{metric}.csv", summary.cdf
                ))

    # Figure 3: ports-per-source CDFs.
    for year, analysis in analyses.items():
        summary = ports_per_source_summary(analysis.study_batch)
        written.append(export_cdf(out / f"fig3_{year}.csv", summary.cdf))

    # Figure 6: recurrence per type.
    for year, analysis in analyses.items():
        recurrence = recurrence_by_type(analysis.study_scans)
        written.append(export_json(
            out / f"fig6_{year}.json",
            {stype: {
                "sources": stats.sources,
                "fraction_recurring": stats.fraction_recurring,
                "daily_mode_fraction": stats.daily_mode_fraction,
            } for stype, stats in recurrence.items()},
        ))

    # Figure 7: speed/coverage per type.
    written.append(export_json(
        out / "fig7_2024.json", figure7_speed_coverage(analyses[2024])
    ))

    # Figure 8: org port coverage.
    rows = [
        {"organisation": r.organisation, "ports": r.ports,
         "coverage": r.coverage, "sources": r.sources, "packets": r.packets}
        for r in figure8_org_port_coverage(analyses[2024])
    ]
    written.append(export_csv(out / "fig8_2024.csv", rows))

    print(f"\nwrote {len(written)} artifacts to {out}/:")
    for path in written:
        print(f"  {path.name}")


if __name__ == "__main__":
    main()
