#!/usr/bin/env python3
"""Building your own scanning ecosystem with the scenario kit.

The calibrated per-year configs reproduce the paper; this example shows the
extension surface: composing cohorts with `make_cohort`, using the canned
scenarios, and watching how each world changes what the analysis pipeline
reports.

Usage::

    python examples/custom_world.py
"""

import dataclasses

from repro import TelescopeWorld, Tool, analyze_simulation, summarize_period
from repro.core import single_source_bias, type_shares
from repro.enrichment.types import ScannerType
from repro.simulation import (
    ShardingSpec,
    make_cohort,
    scenario_sharded_sweep,
    scenario_single_botnet,
    year_config,
)


def describe(label, world, cfg, max_packets=120_000):
    sim = world.simulate_year(0, config=cfg, max_packets=max_packets,
                              min_scans=300)
    analysis = analyze_simulation(sim)
    summary = summarize_period(analysis)
    top_tool = max(summary.tool_shares_by_scans.items(), key=lambda kv: kv[1])
    bias = single_source_bias(analysis.study_scans)
    print(f"{label}:")
    print(f"  {len(sim.batch):,} packets, {len(analysis.scans)} scans, "
          f"{analysis.distinct_sources:,} sources")
    print(f"  dominant tool: {top_tool[0].value} ({top_tool[1]:.0%} of scans)")
    print(f"  top port: {summary.top_ports_by_packets[0]}")
    print(f"  single-source counting inflation: {bias.inflation_factor:.2f}x")
    print()


def main() -> None:
    world = TelescopeWorld(rng=77)

    # 1. A canned scenario: one botnet owns the sky.
    describe("Mirai monoculture (scenario_single_botnet)",
             world, scenario_single_botnet(days=7, packets_per_day=30e6,
                                           scans_per_month=120e3))

    # 2. Another: everything is sharded collaborations.
    describe("Sharded sweeps (scenario_sharded_sweep)",
             world, scenario_sharded_sweep(shards_mean=12.0, days=7))

    # 3. Fully custom: a two-faction world built from cohorts.
    rdp_crackers = make_cohort(
        "rdp_crackers", ScannerType.HOSTING, Tool.MASSCAN,
        port_weights={3389: 1.0, 3390: 0.3},
        scan_share=0.55, packet_share=0.7,
        median_pps=2000.0, country_weights={"RU": 0.6, "CN": 0.4},
    )
    iot_worm = make_cohort(
        "iot_worm", ScannerType.RESIDENTIAL, Tool.MIRAI,
        port_weights={8080: 0.7, 8443: 0.3},
        scan_share=0.45, packet_share=0.3,
        median_pps=260.0,
        sharding=ShardingSpec(prob_sharded=0.2, mean_extra_shards=3.0),
    )
    base = year_config(2021, days=7)
    custom = dataclasses.replace(
        base,
        cohorts=(rdp_crackers, iot_worm),
        events=(),
        background_port_weights={3389: 0.5, 8080: 0.5},
    )
    describe("Custom two-faction world", world, custom)

    print("Each world went through the *same* analysis pipeline — the")
    print("configs only shape the traffic, never the measurement.")


if __name__ == "__main__":
    main()
