#!/usr/bin/env python3
"""A miniature version of the paper's whole study: simulate all ten years,
recover Table 1, the growth headlines, the volatility finding and the
single-port decline, and print them side by side.

Usage::

    python examples/decade_study.py [--fast]

``--fast`` trims the per-year packet budget for a quicker run.
"""

import dataclasses
import sys

from repro import ALL_YEARS, TelescopeWorld, analyze_simulation, summarize_period
from repro.core import growth_report
from repro.core.ports_analysis import ports_per_source_summary
from repro.core.volatility import volatility_summary
from repro.reporting import render_table1


def main() -> None:
    fast = "--fast" in sys.argv
    max_packets = 120_000 if fast else 300_000

    world = TelescopeWorld(rng=42)
    summaries = {}
    projected = {}
    analyses = {}

    for year in ALL_YEARS:
        sim = world.simulate_year(year, days=14, max_packets=max_packets,
                                  min_scans=400)
        analysis = analyze_simulation(sim)
        analyses[year] = analysis
        summary = summarize_period(analysis)
        summaries[year] = summary
        # Project the scaled measurements back to real-world volumes.
        projected[year] = dataclasses.replace(
            summary,
            packets_per_day=summary.packets_per_day / sim.packet_scale,
            scans_per_month=summary.scans_per_month / sim.scan_scale,
        )
        print(f"{year}: {len(sim.batch):>8,} packets  "
              f"{len(analysis.scans):>5,} scans  "
              f"single-port sources "
              f"{ports_per_source_summary(analysis.study_batch).fraction_single_port:5.1%}")

    print()
    print(render_table1(
        projected,
        scale_note="(volumes projected to real-world scale; "
                    "per-year simulation scales differ)",
    ))

    report = growth_report(projected)
    print()
    print(f"growth {report.first_year} -> {report.last_year}: "
          f"packets {report.packet_growth:.0f}x (paper: 30x), "
          f"scans {report.scan_growth:.0f}x (paper: 39x)")

    # §4.4: the weekly volatility of the ecosystem.
    vol = volatility_summary(analyses[2022])
    print(f"2022 weekly /16 change: {vol['sources'].fraction_at_least_2x:.0%} "
          f"of netblocks change >=2x week-over-week "
          f"(paper: more than 50%)")


if __name__ == "__main__":
    main()
