"""Cross-year trend analyses (§4.2, §5.4 narrative claims).

Everything here consumes several analysed periods at once and quantifies how
the ecosystem *changes*: the collapse of the classic top-port concentration
("in 2015 [22, 80, 8080] accounted for more than one-third of all scanning
packets, eight years later below 3%"), the diversification of the port and
country distributions, and the concentration of traffic in few scans
(Durumeric: 0.28% of scans generate ~80% of traffic; Richter & Berger: full
-IPv4 scans are 27% of traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.stats import gini_coefficient, pearson_r
from repro.core.campaigns import ScanTable
from repro.core.pipeline import PeriodAnalysis

#: The classic well-known trio of §4.2.
CLASSIC_PORTS = (22, 80, 8080)


def port_share(analysis: PeriodAnalysis, ports: Sequence[int]) -> float:
    """Combined packet share of ``ports`` in one period."""
    batch = analysis.study_batch
    if len(batch) == 0:
        return 0.0
    mask = np.isin(batch.dst_port, np.asarray(ports, dtype=np.uint16))
    return float(mask.mean())


def classic_port_share_trend(
    analyses: Mapping[int, PeriodAnalysis]
) -> Dict[int, float]:
    """Per-year packet share of SSH+HTTP (22, 80, 8080) — §4.2's collapse."""
    return {year: port_share(a, CLASSIC_PORTS) for year, a in analyses.items()}


def entropy_from_counts(counts: np.ndarray) -> float:
    """Shannon entropy (bits) of a tally vector.

    The counts must be in a canonical (key-sorted) order — ``np.unique``
    output, or a sorted-key sparse tally — so the float summation order is
    identical between the batch and streaming paths.
    """
    if counts.size == 0:
        return 0.0
    probs = counts / counts.sum()
    return float(-(probs * np.log2(probs)).sum())


def port_distribution_entropy(analysis: PeriodAnalysis) -> float:
    """Shannon entropy (bits) of the per-port packet distribution.

    Rising entropy over the years is the "scanning blankets the port space"
    diversification in one number.
    """
    batch = analysis.study_batch
    if len(batch) == 0:
        return 0.0
    _, counts = np.unique(batch.dst_port, return_counts=True)
    return entropy_from_counts(counts)


def country_distribution_entropy(analysis: PeriodAnalysis) -> float:
    """Shannon entropy (bits) of the per-country scan distribution (§4.2's
    geographic diversification)."""
    scans = analysis.study_scans
    if len(scans) == 0:
        return 0.0
    _, counts = np.unique(scans.country.astype(str), return_counts=True)
    return entropy_from_counts(counts)


def port_rank_stability(
    a: PeriodAnalysis, b: PeriodAnalysis, top_n: int = 50
) -> float:
    """Overlap of the two periods' top-``top_n`` packet ports (Jaccard).

    Low values between consecutive years are the §4.2 "drastic changes in
    targeted ports".
    """
    def top_ports(analysis: PeriodAnalysis) -> set:
        batch = analysis.study_batch
        if len(batch) == 0:
            return set()
        ports, counts = np.unique(batch.dst_port, return_counts=True)
        order = np.argsort(counts)[::-1][:top_n]
        return {int(p) for p in ports[order]}

    pa, pb = top_ports(a), top_ports(b)
    if not pa and not pb:
        return 1.0
    return len(pa & pb) / len(pa | pb)


@dataclass(frozen=True)
class ConcentrationReport:
    """How unequally traffic is spread over scans."""

    scans: int
    gini: float
    top_1pct_share: float     # packet share of the top 1% of scans
    top_10pct_share: float
    share_for_80pct: float    # fraction of scans carrying 80% of packets


def concentration_from_packets(per_scan_packets: np.ndarray) -> ConcentrationReport:
    """Concentration report from a per-scan packet-count vector.

    Pure finaliser shared by :func:`traffic_concentration` (batch) and the
    streaming trends accumulator; the input need not be sorted.
    """
    if per_scan_packets.size == 0:
        raise ValueError("no scans to analyse")
    packets = np.sort(per_scan_packets.astype(float))[::-1]
    total = packets.sum()
    cumulative = np.cumsum(packets)

    def top_share(fraction: float) -> float:
        k = max(1, int(round(fraction * packets.size)))
        return float(cumulative[k - 1] / total)

    # Float round-off can leave ``0.8 * total`` above ``cumulative[-1]``
    # (``total`` comes from pairwise summation, the cumsum is sequential),
    # in which case ``searchsorted`` returns ``size`` and the share would
    # exceed 1.0 — clamp to the last index: 100% of scans always suffice.
    index = min(int(np.searchsorted(cumulative, 0.8 * total)),
                packets.size - 1)
    return ConcentrationReport(
        scans=int(packets.size),
        gini=gini_coefficient(packets),
        top_1pct_share=top_share(0.01),
        top_10pct_share=top_share(0.10),
        share_for_80pct=(index + 1) / packets.size,
    )


def traffic_concentration(scans: ScanTable) -> ConcentrationReport:
    """Concentration of scan traffic (the Durumeric/Richter-Berger skew).

    At simulation scale the per-campaign hit cap bounds the extreme tail, so
    absolute numbers are milder than the paper's 0.28%→80%; the qualitative
    skew (a small head carries most packets) remains.
    """
    if len(scans) == 0:
        raise ValueError("no scans to analyse")
    return concentration_from_packets(scans.packets)


@dataclass(frozen=True)
class IntensityReport:
    """§5.3's per-scan intensity and duration statistics for one period."""

    scans: int
    median_packets: float
    mean_packets: float
    median_duration_s: float
    mean_duration_s: float


def intensity_from_arrays(
    packets: np.ndarray, duration: np.ndarray
) -> IntensityReport:
    """Intensity report from per-scan packet and duration vectors.

    Pure finaliser shared by :func:`scan_intensity` (batch) and the
    streaming trends accumulator.  The means are pairwise float sums, so
    callers that need bit-identity must pass the vectors in the canonical
    scan-table order (``lexsort((start, src_ip))``).
    """
    if packets.size == 0:
        raise ValueError("no scans to analyse")
    return IntensityReport(
        scans=int(packets.size),
        median_packets=float(np.median(packets)),
        mean_packets=float(packets.mean()),
        median_duration_s=float(np.median(duration)),
        mean_duration_s=float(duration.mean()),
    )


def scan_intensity(scans: ScanTable) -> IntensityReport:
    """Per-scan packets and wall-clock duration (§5.3's 'scans used to get
    more intensive and take longer, but are increasingly spread out')."""
    if len(scans) == 0:
        raise ValueError("no scans to analyse")
    return intensity_from_arrays(scans.packets, scans.duration)


@dataclass(frozen=True)
class TrendLine:
    """A per-year metric with its Pearson trend."""

    years: Tuple[int, ...]
    values: Tuple[float, ...]
    r: float
    p: float


def metric_trend(per_year: Mapping[int, float]) -> TrendLine:
    """Fit a Pearson trend to a year → value mapping."""
    if len(per_year) < 2:
        raise ValueError("a trend needs at least two years")
    years = tuple(sorted(per_year))
    values = tuple(float(per_year[y]) for y in years)
    r, p = pearson_r(years, values)
    return TrendLine(years=years, values=values, r=r, p=p)
