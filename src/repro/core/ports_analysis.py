"""Port-targeting analyses (§5.1–5.2, Figure 3).

Covers: ports-per-source distributions, alias-port affinity (80→8080),
port-space coverage above a noise floor, vertical-scan counting, and the
speed-vs-ports and service-density correlations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.stats import empirical_cdf, fraction_at_most, pearson_r
from repro.core.campaigns import ScanTable
from repro.core.pipeline import PeriodAnalysis
from repro.telescope.packet import PacketBatch

PRIVILEGED_PORT_MAX = 1023


def ports_per_source(batch: PacketBatch) -> np.ndarray:
    """Distinct destination ports per source IP (Figure 3's variable)."""
    if len(batch) == 0:
        return np.array([], dtype=np.int64)
    pairs = (batch.src_ip.astype(np.uint64) << np.uint64(16)) | batch.dst_port.astype(
        np.uint64
    )
    unique_pairs = np.unique(pairs)
    sources = (unique_pairs >> np.uint64(16)).astype(np.uint64)
    _, counts = np.unique(sources, return_counts=True)
    return counts.astype(np.int64)


@dataclass(frozen=True)
class PortsPerSourceSummary:
    """Headline statistics of the Figure 3 CDF."""

    sources: int
    fraction_single_port: float
    fraction_at_least_3: float
    fraction_at_least_5: float
    fraction_more_than_10: float
    cdf: Tuple[np.ndarray, np.ndarray]


def ports_per_source_summary(batch: PacketBatch) -> PortsPerSourceSummary:
    """Summarise the distinct-ports-per-source distribution."""
    counts = ports_per_source(batch)
    if counts.size == 0:
        empty = (np.array([]), np.array([]))
        return PortsPerSourceSummary(0, 0.0, 0.0, 0.0, 0.0, empty)
    return PortsPerSourceSummary(
        sources=int(counts.size),
        fraction_single_port=float(np.mean(counts == 1)),
        fraction_at_least_3=float(np.mean(counts >= 3)),
        fraction_at_least_5=float(np.mean(counts >= 5)),
        fraction_more_than_10=float(np.mean(counts > 10)),
        cdf=empirical_cdf(counts),
    )


def port_pair_affinity(scans: ScanTable, primary: int, companion: int) -> float:
    """P(scan also targets ``companion`` | scan targets ``primary``).

    The paper's 80→8080 coupling: 18% in 2015 rising to 87% by 2020 (§5.1).
    Returns NaN when no scan targets ``primary``.
    """
    with_primary = 0
    with_both = 0
    for ports in scans.port_sets:
        # port_sets are sorted arrays; searchsorted membership is O(log n).
        idx = np.searchsorted(ports, primary)
        if idx < ports.size and ports[idx] == primary:
            with_primary += 1
            jdx = np.searchsorted(ports, companion)
            if jdx < ports.size and ports[jdx] == companion:
                with_both += 1
    if with_primary == 0:
        return float("nan")
    return with_both / with_primary


@dataclass(frozen=True)
class PortSpaceCoverage:
    """How much of the port range receives meaningful probing (§5.1)."""

    probed_ports: int                 # ports above the noise floor
    probed_privileged: int            # of which privileged (1–1023)
    privileged_fraction: float
    min_probes_per_day_all_ports: float  # the "all ports > 1,000/day" check
    noise_floor: float


def port_space_coverage(
    analysis: PeriodAnalysis, noise_floor_fraction: float = 0.01
) -> PortSpaceCoverage:
    """Coverage of the port space above a noise floor.

    ``noise_floor_fraction`` mirrors the paper's "above a 1% noise floor
    level": a port counts as probed when its daily probe count exceeds that
    fraction of the *mean* per-port daily rate.
    """
    if not 0.0 <= noise_floor_fraction < 1.0:
        raise ValueError("noise_floor_fraction must be in [0, 1)")
    batch = analysis.study_batch
    if len(batch) == 0:
        return PortSpaceCoverage(0, 0, 0.0, 0.0, 0.0)
    ports, counts = np.unique(batch.dst_port, return_counts=True)
    per_day = counts / analysis.days
    floor = noise_floor_fraction * per_day.mean()
    probed = per_day > floor
    privileged = probed & (ports <= PRIVILEGED_PORT_MAX)
    # Minimum across the entire range counts unprobed ports as zero.
    min_all = float(per_day.min()) if ports.size == 65536 else 0.0
    return PortSpaceCoverage(
        probed_ports=int(probed.sum()),
        probed_privileged=int(privileged.sum()),
        privileged_fraction=float(privileged.sum() / (PRIVILEGED_PORT_MAX)),
        min_probes_per_day_all_ports=min_all,
        noise_floor=float(floor),
    )


@dataclass(frozen=True)
class VerticalScanCounts:
    """Counts of scans above port-count thresholds (§5.2)."""

    total_scans: int
    over_100_ports: int
    over_1000_ports: int
    over_10000_ports: int

    def fraction_over(self, threshold: int) -> float:
        if self.total_scans == 0:
            return 0.0
        value = {
            100: self.over_100_ports,
            1000: self.over_1000_ports,
            10000: self.over_10000_ports,
        }.get(threshold)
        if value is None:
            raise ValueError("threshold must be one of 100, 1000, 10000")
        return value / self.total_scans


def vertical_scan_counts(scans: ScanTable) -> VerticalScanCounts:
    """Count vertical scans at the paper's thresholds."""
    n_ports = scans.n_ports
    return VerticalScanCounts(
        total_scans=len(scans),
        over_100_ports=int(np.count_nonzero(n_ports > 100)),
        over_1000_ports=int(np.count_nonzero(n_ports > 1000)),
        over_10000_ports=int(np.count_nonzero(n_ports > 10000)),
    )


def speed_ports_correlation(scans: ScanTable) -> Tuple[float, float]:
    """Pearson correlation between scan speed and ports targeted (§5.3).

    Computed on log-speed vs log-ports (both heavy-tailed); the paper reports
    R = 0.88.
    """
    if len(scans) < 3:
        return float("nan"), 1.0
    return pearson_r(np.log10(scans.speed_pps), np.log10(scans.n_ports + 1))


def scan_port_intensity(scans: ScanTable) -> Dict[int, int]:
    """Scans-per-port counts (how many scans include each port)."""
    counts: Dict[int, int] = {}
    for ports in scans.port_sets:
        for port in ports.tolist():
            counts[port] = counts.get(port, 0) + 1
    return counts


def tool_port_footprint(scans: ScanTable, tool) -> Tuple[int, float]:
    """Distinct ports ever targeted by one tool's scans (§6.2).

    The paper finds the Mirai fingerprint on 99.6% of all TCP ports by 2020
    as botnet operators re-point the stock scan routine at new exploits.
    Returns ``(distinct_ports, fraction_of_port_space)``.
    """
    tools = scans.tool.astype(str)
    seen = set()
    for i in np.flatnonzero(tools == str(tool)):
        seen.update(int(p) for p in scans.port_sets[i])
    return len(seen), len(seen) / 65536.0


def service_density_correlation(
    scans: ScanTable, open_port_density: Mapping[int, float]
) -> Tuple[float, float]:
    """Correlation between service density and scan intensity (§5.1).

    The paper finds essentially none (R = 0.047): scanners do not
    proportionally target the ports where services actually live.

    Computed as a rank correlation over the full port range: both vectors
    are extremely heavy-tailed, and a plain Pearson over raw counts is
    dominated by whichever single port happens to lead both rankings
    (port 80), which would measure one shared outlier instead of the
    relationship across the port space.
    """
    from scipy import stats as _sps

    intensity = scan_port_intensity(scans)
    if len(intensity) < 3 or len(open_port_density) < 3:
        return float("nan"), 1.0
    x = np.zeros(65536)
    y = np.zeros(65536)
    for port, density in open_port_density.items():
        x[port] = density
    for port, count in intensity.items():
        y[port] = count
    r, p = _sps.spearmanr(x, y)
    return float(r), float(p)
