"""Ecosystem volatility (§4.4, Figure 2).

Aggregates scanning activity per source /16 netblock per week and measures
week-over-week change factors for three metrics: participating source IPs,
scans launched, and packets sent.  The paper's headline: in more than half of
the /16s, activity changes by a factor of 2 or more from one week to the
next; only 20–30% of netblocks are stable.

The per-(block, week) counting is factored into *sparse tallies* — packed
``(block << 32) | week`` keys with ``int64`` multiplicities — plus a pure
:func:`dense_weekly_counts` finaliser.  The batch path computes the tallies
from whole arrays in one pass; the streaming path
(:class:`repro.stream.analyses.IncrementalVolatility`) accumulates the same
tallies window by window and merges them across shards.  Both funnel through
the one finaliser, so the dense matrices are equal by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro._util.stats import empirical_cdf
from repro.core.campaigns import ScanTable
from repro.core.pipeline import PeriodAnalysis
from repro.telescope.addresses import slash16_of
from repro.telescope.packet import PacketBatch

_WEEK_S = 7 * 86_400.0

#: Metrics tracked per netblock per week.
METRICS = ("sources", "scans", "packets")

#: A sparse per-(block, week) tally: packed keys plus multiplicities.
SparseTally = Tuple[np.ndarray, np.ndarray]


def week_index(times: np.ndarray, n_weeks: int) -> np.ndarray:
    """Week index of each timestamp, clamped into ``[0, n_weeks)``."""
    return np.minimum((times // _WEEK_S).astype(np.int64), n_weeks - 1)


def pack_block_week(blocks: np.ndarray, weeks: np.ndarray) -> np.ndarray:
    """Pack (/16 block, week) pairs into one sortable ``int64`` key.

    The week occupies the low 32 bits — wide enough for any horizon (the
    previous 8-bit packing silently collided past week 255, i.e. on any
    trace longer than ~5 years).  A /16 block index is 16 bits, so the
    mask bounds the shifted operand without changing any value.
    """
    return (
        (blocks.astype(np.int64) & np.int64(0xFFFF)) << np.int64(32)
    ) | weeks.astype(np.int64)


def packet_weekly_tally(batch: PacketBatch, n_weeks: int) -> SparseTally:
    """Sparse per-(block, week) packet counts of one batch (or window)."""
    weeks = week_index(batch.time, n_weeks)
    blocks = slash16_of(batch.src_ip).astype(np.int64)
    return np.unique(pack_block_week(blocks, weeks), return_counts=True)


def source_weekly_tally(batch: PacketBatch, n_weeks: int) -> SparseTally:
    """Sparse per-(block, week) *distinct source* counts of one batch.

    Dedupes ``(src, week)`` pairs with the source in the high 32 bits of a
    ``uint64`` key, so the week index can never overflow into the address
    bits (the regression the old ``src << 8`` packing had past week 255).
    """
    weeks = week_index(batch.time, n_weeks)
    pairs = (batch.src_ip.astype(np.uint64) << np.uint64(32)) | weeks.astype(
        np.uint64
    )
    distinct = np.unique(pairs)
    src = (distinct >> np.uint64(32)).astype(np.uint32)
    blocks = slash16_of(src).astype(np.int64)
    wk = (distinct & np.uint64(0xFFFFFFFF)).astype(np.int64)
    return np.unique(pack_block_week(blocks, wk), return_counts=True)


def scan_weekly_tally(scans: ScanTable, n_weeks: int) -> SparseTally:
    """Sparse per-(block, week) scan counts (by scan start time)."""
    if len(scans) == 0:
        empty = np.array([], dtype=np.int64)
        return empty, empty.copy()
    weeks = week_index(scans.start, n_weeks)
    blocks = slash16_of(scans.src_ip).astype(np.int64)
    return np.unique(pack_block_week(blocks, weeks), return_counts=True)


def dense_weekly_counts(
    blocks_all: np.ndarray,
    n_weeks: int,
    tallies: Mapping[str, SparseTally],
) -> Dict[str, np.ndarray]:
    """Scatter sparse per-(block, week) tallies into dense matrices.

    ``blocks_all`` is the sorted distinct /16 index (packet-derived; tally
    entries for blocks outside it — scans from blocks that sent no packets —
    are dropped, matching the batch semantics).  Returns the
    ``{metric: (n_blocks, n_weeks) int64}`` dict plus the block index under
    ``'blocks'``.
    """
    n_blocks = int(blocks_all.size)
    out: Dict[str, np.ndarray] = {
        metric: np.zeros((n_blocks, n_weeks), dtype=np.int64)
        for metric in METRICS
    }
    out["blocks"] = blocks_all.astype(np.int64)
    if n_blocks == 0:
        return out
    for metric in METRICS:
        keys, counts = tallies[metric]
        if keys.size == 0:
            continue
        blocks = keys >> np.int64(32)
        weeks = (keys & np.int64(0xFFFFFFFF)).astype(np.int64)
        present = np.isin(blocks, blocks_all)
        rows = np.searchsorted(blocks_all, blocks[present])
        out[metric][rows, weeks[present]] += counts[present]
    return out


def weekly_slash16_counts(
    batch: PacketBatch, scans: ScanTable, n_weeks: int
) -> Dict[str, np.ndarray]:
    """Per-/16, per-week activity counts.

    Returns a dict of dense ``(n_blocks, n_weeks)`` arrays keyed by metric,
    plus the block index under key ``'blocks'`` (the distinct /16 values, in
    row order).
    """
    if n_weeks < 1:
        raise ValueError("n_weeks must be >= 1")
    if len(batch) == 0:
        return dense_weekly_counts(
            np.array([], dtype=np.int64), n_weeks,
            {m: (np.array([], dtype=np.int64),) * 2 for m in METRICS},
        )
    blocks_all = np.unique(slash16_of(batch.src_ip)).astype(np.int64)
    return dense_weekly_counts(blocks_all, n_weeks, {
        "packets": packet_weekly_tally(batch, n_weeks),
        "sources": source_weekly_tally(batch, n_weeks),
        "scans": scan_weekly_tally(scans, n_weeks),
    })


def weekly_change_factors(series: np.ndarray) -> np.ndarray:
    """Week-over-week change factors for one metric.

    For each netblock and consecutive week pair where the block is active in
    at least one of the two weeks, the factor is ``max(a, b) / min(a, b)``
    (``inf`` when one side is zero).  A factor of 1 means perfectly stable.
    """
    if series.ndim != 2:
        raise ValueError("series must be (n_blocks, n_weeks)")
    if series.shape[1] < 2:
        return np.array([], dtype=float)
    a = series[:, :-1].astype(float)
    b = series[:, 1:].astype(float)
    active = (a > 0) | (b > 0)
    hi = np.maximum(a, b)[active]
    lo = np.minimum(a, b)[active]
    with np.errstate(divide="ignore"):
        return np.where(lo > 0, hi / lo, np.inf)


@dataclass(frozen=True)
class VolatilitySummary:
    """Figure 2's CDF data plus headline fractions for one metric."""

    metric: str
    pairs: int
    fraction_stable: float        # factor <= 1.25 ("do more or less the same")
    fraction_at_least_2x: float
    fraction_at_least_3x: float
    cdf: Tuple[np.ndarray, np.ndarray]


def weeks_in_period(days: float) -> int:
    """Week count the volatility analysis uses for a period of ``days``."""
    return max(2, int(np.ceil(days / 7.0)))


def summaries_from_counts(
    counts: Mapping[str, np.ndarray]
) -> Dict[str, VolatilitySummary]:
    """Per-metric weekly-change summaries from dense weekly counts.

    The shared finaliser: both :func:`volatility_summary` (batch) and the
    streaming accumulator produce their summaries through this function.
    """
    out: Dict[str, VolatilitySummary] = {}
    for metric in METRICS:
        factors = weekly_change_factors(counts[metric])
        if factors.size == 0:
            out[metric] = VolatilitySummary(metric, 0, 0.0, 0.0, 0.0,
                                            (np.array([]), np.array([])))
            continue
        finite = factors[np.isfinite(factors)]
        out[metric] = VolatilitySummary(
            metric=metric,
            pairs=int(factors.size),
            fraction_stable=float(np.mean(factors <= 1.25)),
            fraction_at_least_2x=float(np.mean(factors >= 2.0)),
            fraction_at_least_3x=float(np.mean(factors >= 3.0)),
            cdf=empirical_cdf(finite),
        )
    return out


def volatility_summary(analysis: PeriodAnalysis) -> Dict[str, VolatilitySummary]:
    """Per-metric weekly-change summaries over the period."""
    n_weeks = weeks_in_period(analysis.days)
    counts = weekly_slash16_counts(analysis.study_batch, analysis.study_scans, n_weeks)
    return summaries_from_counts(counts)
