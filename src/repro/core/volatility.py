"""Ecosystem volatility (§4.4, Figure 2).

Aggregates scanning activity per source /16 netblock per week and measures
week-over-week change factors for three metrics: participating source IPs,
scans launched, and packets sent.  The paper's headline: in more than half of
the /16s, activity changes by a factor of 2 or more from one week to the
next; only 20–30% of netblocks are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro._util.stats import empirical_cdf
from repro.core.campaigns import ScanTable
from repro.core.pipeline import PeriodAnalysis
from repro.telescope.addresses import slash16_of
from repro.telescope.packet import PacketBatch

_WEEK_S = 7 * 86_400.0

#: Metrics tracked per netblock per week.
METRICS = ("sources", "scans", "packets")


def weekly_slash16_counts(
    batch: PacketBatch, scans: ScanTable, n_weeks: int
) -> Dict[str, np.ndarray]:
    """Per-/16, per-week activity counts.

    Returns a dict of dense ``(n_blocks, n_weeks)`` arrays keyed by metric,
    plus the block index under key ``'blocks'`` (the distinct /16 values, in
    row order).
    """
    if n_weeks < 1:
        raise ValueError("n_weeks must be >= 1")
    blocks_all = np.unique(slash16_of(batch.src_ip)) if len(batch) else np.array([], dtype=np.int64)
    block_index = {int(b): i for i, b in enumerate(blocks_all)}
    n_blocks = blocks_all.size

    out = {
        "sources": np.zeros((n_blocks, n_weeks), dtype=np.int64),
        "scans": np.zeros((n_blocks, n_weeks), dtype=np.int64),
        "packets": np.zeros((n_blocks, n_weeks), dtype=np.int64),
        "blocks": blocks_all.astype(np.int64),
    }
    if n_blocks == 0:
        return out

    # Packets and sources from the raw batch.
    weeks = np.minimum((batch.time // _WEEK_S).astype(np.int64), n_weeks - 1)
    blocks = slash16_of(batch.src_ip).astype(np.int64)
    rows = np.searchsorted(blocks_all, blocks)
    np.add.at(out["packets"], (rows, weeks), 1)

    # Distinct sources per (block, week): dedupe (src, week) pairs.
    keys = (batch.src_ip.astype(np.uint64) << np.uint64(8)) | weeks.astype(np.uint64)
    _, first_idx = np.unique(keys, return_index=True)
    np.add.at(out["sources"], (rows[first_idx], weeks[first_idx]), 1)

    # Scans from the scan table (by start time).
    if len(scans):
        scan_weeks = np.minimum((scans.start // _WEEK_S).astype(np.int64), n_weeks - 1)
        scan_blocks = slash16_of(scans.src_ip).astype(np.int64)
        present = np.isin(scan_blocks, blocks_all)
        scan_rows = np.searchsorted(blocks_all, scan_blocks[present])
        np.add.at(out["scans"], (scan_rows, scan_weeks[present]), 1)

    return out


def weekly_change_factors(series: np.ndarray) -> np.ndarray:
    """Week-over-week change factors for one metric.

    For each netblock and consecutive week pair where the block is active in
    at least one of the two weeks, the factor is ``max(a, b) / min(a, b)``
    (``inf`` when one side is zero).  A factor of 1 means perfectly stable.
    """
    if series.ndim != 2:
        raise ValueError("series must be (n_blocks, n_weeks)")
    if series.shape[1] < 2:
        return np.array([], dtype=float)
    a = series[:, :-1].astype(float)
    b = series[:, 1:].astype(float)
    active = (a > 0) | (b > 0)
    hi = np.maximum(a, b)[active]
    lo = np.minimum(a, b)[active]
    with np.errstate(divide="ignore"):
        return np.where(lo > 0, hi / lo, np.inf)


@dataclass(frozen=True)
class VolatilitySummary:
    """Figure 2's CDF data plus headline fractions for one metric."""

    metric: str
    pairs: int
    fraction_stable: float        # factor <= 1.25 ("do more or less the same")
    fraction_at_least_2x: float
    fraction_at_least_3x: float
    cdf: Tuple[np.ndarray, np.ndarray]


def volatility_summary(analysis: PeriodAnalysis) -> Dict[str, VolatilitySummary]:
    """Per-metric weekly-change summaries over the period."""
    n_weeks = max(2, int(np.ceil(analysis.days / 7.0)))
    counts = weekly_slash16_counts(analysis.study_batch, analysis.study_scans, n_weeks)
    out: Dict[str, VolatilitySummary] = {}
    for metric in METRICS:
        factors = weekly_change_factors(counts[metric])
        if factors.size == 0:
            out[metric] = VolatilitySummary(metric, 0, 0.0, 0.0, 0.0,
                                            (np.array([]), np.array([])))
            continue
        finite = factors[np.isfinite(factors)]
        out[metric] = VolatilitySummary(
            metric=metric,
            pairs=int(factors.size),
            fraction_stable=float(np.mean(factors <= 1.25)),
            fraction_at_least_2x=float(np.mean(factors >= 2.0)),
            fraction_at_least_3x=float(np.mean(factors >= 3.0)),
            cdf=empirical_cdf(finite),
        )
    return out
