"""IP-churn correction (§4.2, following Böck et al. and Griffioen & Doerr).

The paper warns that *source counts overstate device counts*: residential
infections sit behind DHCP pools, so one bot surfaces under many addresses
over a measurement period ("botnet infections are often in residential
network spaces where DHCP churn is more likely to occur, inflating the
number of sources measured in studies").

Under a renewal model — each device holds an address for an exponential
lifetime with mean ``L`` and immediately re-appears under a fresh address —
a stable population of ``N`` devices produces, over an observation window of
``T`` days,

    E[distinct addresses]  =  N * (1 + T / L)

and the *cumulative* distinct-address curve grows linearly after the first
lifetime.  This module provides both directions: the forward model, and an
estimator that fits ``(N, L)`` to the cumulative distinct-source curve of a
capture so studies can report device populations instead of address counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro._util.validate import check_positive
from repro.telescope.packet import PacketBatch

_DAY_S = 86_400.0

#: Plausible mean address lifetimes per origin class (days).  Residential
#: pools churn within days; hosting and institutional space is static.
TYPICAL_LIFETIME_DAYS: Dict[str, float] = {
    "residential": 4.0,
    "unknown": 10.0,
    "enterprise": 60.0,
    "hosting": 90.0,
    "institutional": 365.0,
}


def expected_distinct_sources(
    population: float, period_days: float, lifetime_days: float
) -> float:
    """Forward renewal model: distinct addresses a population produces."""
    check_positive("population", population)
    check_positive("period_days", period_days)
    check_positive("lifetime_days", lifetime_days)
    return population * (1.0 + period_days / lifetime_days)


def correct_source_count(
    observed_sources: float, period_days: float, lifetime_days: float
) -> float:
    """Invert the renewal model: devices behind an address count."""
    check_positive("observed_sources", observed_sources)
    check_positive("period_days", period_days)
    check_positive("lifetime_days", lifetime_days)
    return observed_sources / (1.0 + period_days / lifetime_days)


def first_appearance_days(batch: PacketBatch, days: int) -> Tuple[np.ndarray, np.ndarray]:
    """First-appearance day per distinct source of one batch (or window).

    Returns ``(sources, first_days)`` with the sources sorted ascending.
    Shared by the batch cumulative curve and the streaming churn
    accumulator (which dedupes these against its already-seen sources).
    """
    day_idx = np.minimum((batch.time // _DAY_S).astype(np.int64), days - 1)
    order = np.lexsort((day_idx, batch.src_ip))
    src_sorted = batch.src_ip[order]
    day_sorted = day_idx[order]
    first_mask = np.concatenate([[True], src_sorted[1:] != src_sorted[:-1]])
    return src_sorted[first_mask], day_sorted[first_mask]


def cumulative_distinct_sources(batch: PacketBatch, days: int) -> np.ndarray:
    """Cumulative count of distinct source addresses by end of each day."""
    if days < 1:
        raise ValueError("days must be >= 1")
    if len(batch) == 0:
        return np.zeros(days, dtype=np.int64)
    _, first_days = first_appearance_days(batch, days)
    per_day = np.bincount(first_days, minlength=days)
    return np.cumsum(per_day)


@dataclass(frozen=True)
class ChurnFit:
    """Fitted renewal parameters for one source population."""

    population: float          # estimated devices N
    lifetime_days: float       # estimated mean address lifetime L
    observed_sources: int      # distinct addresses over the window
    inflation_factor: float    # observed / population
    residual: float            # RMS error of the fit (sources)


def fit_population_curve(
    curve: np.ndarray,
    min_lifetime_days: float = 0.25,
    max_lifetime_days: float = 3650.0,
) -> ChurnFit:
    """Fit ``(N, L)`` to a cumulative distinct-source curve.

    The pure fit shared by :func:`fit_population` (batch) and the streaming
    churn accumulator: the curve under the renewal model is
    ``C(t) = N * (1 + t / L)`` for ``t`` past the ramp-up; a grid search over
    ``L`` with the optimal ``N`` solved in closed form (least squares over
    the linear model) is robust and has no dependencies.
    """
    if curve[-1] == 0:
        raise ValueError("no sources in the capture")
    t = np.arange(1, curve.size + 1, dtype=float)

    best: Optional[Tuple[float, float, float]] = None
    for lifetime in np.geomspace(min_lifetime_days, max_lifetime_days, 160):
        basis = 1.0 + t / lifetime
        population = float(np.dot(basis, curve) / np.dot(basis, basis))
        residual = float(np.sqrt(np.mean((population * basis - curve) ** 2)))
        if best is None or residual < best[2]:
            best = (population, float(lifetime), residual)

    population, lifetime, residual = best
    observed = int(curve[-1])
    return ChurnFit(
        population=population,
        lifetime_days=lifetime,
        observed_sources=observed,
        inflation_factor=observed / max(population, 1e-9),
        residual=residual,
    )


def fit_population(
    batch: PacketBatch,
    days: int,
    min_lifetime_days: float = 0.25,
    max_lifetime_days: float = 3650.0,
) -> ChurnFit:
    """Fit ``(N, L)`` to a capture's cumulative distinct-source curve."""
    curve = cumulative_distinct_sources(batch, days)
    return fit_population_curve(
        curve,
        min_lifetime_days=min_lifetime_days,
        max_lifetime_days=max_lifetime_days,
    )


def fit_population_by_type(
    analysis, scanner_type
) -> Optional[ChurnFit]:
    """Fit the churn model to one scanner type's traffic.

    ``analysis`` is a :class:`~repro.core.pipeline.PeriodAnalysis`;
    ``scanner_type`` a :class:`~repro.enrichment.types.ScannerType`.
    Returns ``None`` when the type has no traffic.
    """
    batch = analysis.study_batch
    if len(batch) == 0:
        return None
    sources = np.unique(batch.src_ip)
    types = analysis.classifier.classify_array(sources)
    wanted = sources[np.array([t == scanner_type for t in types])]
    if wanted.size == 0:
        return None
    mask = np.isin(batch.src_ip, wanted)
    return fit_population(batch.where(mask), analysis.days)
