"""Collaborative-scan reconstruction.

The paper closes on a measurement caveat: scan campaigns are increasingly
split over many hosts (ZMap sharding, distributed operations), so *counting
scans as single-source* inflates campaign counts and deflates per-campaign
intensity — "future work should take this into account".

This module takes that step: it merges observed per-source scans back into
logical campaigns using the signals a telescope actually has — shards sit in
the same subnet, run the same tool against the same port set, and overlap in
time — and quantifies the single-source counting bias. Ground-truth
evaluation (on simulated data, where the true grouping is known) lives in
:func:`evaluate_merging`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.campaigns import ScanTable
from repro.scanners.base import Tool
from repro.telescope.addresses import slash24_of


@dataclass(frozen=True)
class MergedCampaign:
    """One reconstructed logical campaign."""

    scan_indices: Tuple[int, ...]    # rows of the ScanTable
    sources: Tuple[int, ...]         # distinct source IPs
    tool: Tool
    ports: Tuple[int, ...]           # shared port signature
    start: float
    end: float
    packets: int
    total_coverage: float            # summed member coverage (≈ joint sweep)

    @property
    def is_collaborative(self) -> bool:
        return len(self.sources) > 1


def _port_signature(ports: np.ndarray, limit: int = 16) -> Tuple[int, ...]:
    """A hashable signature of a scan's port set.

    Full port sets can run to tens of thousands of entries; the signature is
    the set size plus a bounded sample of entries — collisions between
    *different* campaigns in the same subnet and time window are unlikely,
    and only those would merge wrongly.
    """
    if ports.size <= limit:
        return tuple(int(p) for p in ports)
    step = ports.size // limit
    return (int(ports.size),) + tuple(int(p) for p in ports[::step][:limit])


def merge_collaborative_scans(
    scans: ScanTable,
    max_gap_s: float = 6 * 3600.0,
    same_tool: bool = True,
    coverage_ratio_max: float = 4.0,
) -> List[MergedCampaign]:
    """Merge per-source scans into logical campaigns.

    Two scans merge when they originate from the same /24, run the same tool
    (unless ``same_tool`` is disabled), target the same port signature,
    their activity windows overlap or sit within ``max_gap_s`` of each
    other, and their coverages are within ``coverage_ratio_max`` of each
    other — shards of one sweep cover near-equal slices, so a wildly
    different coverage marks an unrelated scan that merely shares the
    subnet. Merging is transitive within a key via a sweep over the scans
    in start-time order.
    """
    if max_gap_s < 0:
        raise ValueError("max_gap_s must be non-negative")
    if coverage_ratio_max < 1.0:
        raise ValueError("coverage_ratio_max must be >= 1")
    n = len(scans)
    if n == 0:
        return []

    subnets = slash24_of(scans.src_ip).astype(np.int64)
    keys: Dict[Tuple, List[int]] = {}
    for i in range(n):
        key = (
            int(subnets[i]),
            str(scans.tool[i]) if same_tool else "",
            _port_signature(scans.port_sets[i]),
        )
        keys.setdefault(key, []).append(i)

    merged: List[MergedCampaign] = []
    for key, indices in keys.items():
        indices.sort(key=lambda i: float(scans.start[i]))
        group: List[int] = []
        group_end = -np.inf
        group_cov = 0.0
        for i in indices:
            cov = max(float(scans.coverage[i]), 1e-9)
            gap_break = group and float(scans.start[i]) > group_end + max_gap_s
            cov_break = group and not (
                group_cov / coverage_ratio_max <= cov <= group_cov * coverage_ratio_max
            )
            if gap_break or cov_break:
                merged.append(_finalise(scans, group))
                group = []
                group_end = -np.inf
            if not group:
                group_cov = cov
            group.append(i)
            group_end = max(group_end, float(scans.end[i]))
        if group:
            merged.append(_finalise(scans, group))
    merged.sort(key=lambda c: c.start)
    return merged


def _finalise(scans: ScanTable, indices: Sequence[int]) -> MergedCampaign:
    sources = tuple(sorted({int(scans.src_ip[i]) for i in indices}))
    tools = {str(scans.tool[i]) for i in indices}
    tool = Tool(next(iter(tools))) if len(tools) == 1 else Tool.UNKNOWN
    return MergedCampaign(
        scan_indices=tuple(int(i) for i in indices),
        sources=sources,
        tool=tool,
        ports=tuple(int(p) for p in scans.port_sets[indices[0]]),
        start=float(min(scans.start[i] for i in indices)),
        end=float(max(scans.end[i] for i in indices)),
        packets=int(sum(scans.packets[i] for i in indices)),
        total_coverage=float(sum(scans.coverage[i] for i in indices)),
    )


@dataclass(frozen=True)
class DistributedCampaign:
    """Scans across *different* subnets that look like one operation.

    Shard merging (same /24) catches collaborating hosts in one network;
    truly distributed operations — rented machines across providers,
    botnets — share no subnet.  Following Griffioen & Doerr (NOMS 2020,
    the paper's [27]), they betray themselves through **common header-field
    patterns**: the same tool, the same characteristic TCP window, similar
    TTL band and the same target-port signature, active concurrently.
    """

    scan_indices: Tuple[int, ...]
    sources: Tuple[int, ...]
    subnets: int                 # distinct /24s involved
    tool: Tool
    window_mode: int
    ports: Tuple[int, ...]
    start: float
    end: float
    total_coverage: float


def detect_distributed_campaigns(
    scans: ScanTable,
    min_sources: int = 4,
    min_subnets: int = 3,
    ttl_band: int = 16,
    max_gap_s: float = 12 * 3600.0,
) -> List[DistributedCampaign]:
    """Cluster scans by shared header-field patterns across subnets.

    A cluster requires at least ``min_sources`` sources spread over at
    least ``min_subnets`` distinct /24s, all using the same tool, TCP window
    mode, port signature and a TTL mode within one ``ttl_band``-sized band,
    overlapping in time (gaps up to ``max_gap_s``).  Designed for tools
    with a characteristic per-instance window; tools randomising the window
    per packet (Mirai) will not cluster this way — the telescope sees a
    different "mode" per scan.
    """
    if min_sources < 2 or min_subnets < 2:
        raise ValueError("min_sources and min_subnets must be >= 2")
    n = len(scans)
    if n == 0:
        return []

    keys: Dict[Tuple, List[int]] = {}
    for i in range(n):
        key = (
            str(scans.tool[i]),
            int(scans.window_mode[i]),
            int(scans.ttl_mode[i]) // ttl_band,
            _port_signature(scans.port_sets[i]),
        )
        keys.setdefault(key, []).append(i)

    out: List[DistributedCampaign] = []
    for key, indices in keys.items():
        indices.sort(key=lambda i: float(scans.start[i]))
        group: List[int] = []
        group_end = -np.inf
        for i in indices + [None]:
            done = i is None
            if not done and group and float(scans.start[i]) > group_end + max_gap_s:
                done = True
            if done and group:
                sources = sorted({int(scans.src_ip[j]) for j in group})
                subnets = {int(slash24_of(np.uint32(s))) for s in sources}
                if len(sources) >= min_sources and len(subnets) >= min_subnets:
                    out.append(DistributedCampaign(
                        scan_indices=tuple(group),
                        sources=tuple(sources),
                        subnets=len(subnets),
                        tool=Tool(key[0]),
                        window_mode=key[1],
                        ports=tuple(int(p) for p in scans.port_sets[group[0]]),
                        start=float(min(scans.start[j] for j in group)),
                        end=float(max(scans.end[j] for j in group)),
                        total_coverage=float(sum(scans.coverage[j] for j in group)),
                    ))
                group = []
                group_end = -np.inf
            if i is not None:
                group.append(i)
                group_end = max(group_end, float(scans.end[i]))
    out.sort(key=lambda c: c.start)
    return out


@dataclass(frozen=True)
class BiasReport:
    """How much single-source counting inflates campaign statistics."""

    observed_scans: int
    logical_campaigns: int
    collaborative_campaigns: int
    inflation_factor: float          # observed / logical
    mean_sources_per_collaboration: float


def single_source_bias(
    scans: ScanTable, merged: Optional[Sequence[MergedCampaign]] = None
) -> BiasReport:
    """Quantify the §9 counting bias on one scan table."""
    if merged is None:
        merged = merge_collaborative_scans(scans)
    collaborative = [c for c in merged if c.is_collaborative]
    n_logical = len(merged)
    return BiasReport(
        observed_scans=len(scans),
        logical_campaigns=n_logical,
        collaborative_campaigns=len(collaborative),
        inflation_factor=len(scans) / n_logical if n_logical else float("nan"),
        mean_sources_per_collaboration=(
            float(np.mean([len(c.sources) for c in collaborative]))
            if collaborative else 0.0
        ),
    )


@dataclass(frozen=True)
class MergeEvaluation:
    """Pairwise precision/recall of a merging against ground truth."""

    pair_precision: float
    pair_recall: float
    true_collaborations: int
    found_collaborations: int


def evaluate_merging(
    scans: ScanTable,
    merged: Sequence[MergedCampaign],
    truth_campaign_of_source: Mapping[int, int],
) -> MergeEvaluation:
    """Score a merging against the simulator's ground truth.

    ``truth_campaign_of_source`` maps source IP → true campaign id. The
    score is over *source pairs*: a pair is positive when both sources
    belong to the same true campaign; predicted positive when some merged
    campaign contains both.
    """
    def pairs_of(groups: Sequence[Sequence[int]]) -> set:
        out = set()
        for group in groups:
            members = sorted(set(group))
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    out.add((a, b))
        return out

    truth_groups: Dict[int, List[int]] = {}
    for src in set(int(s) for s in scans.src_ip):
        campaign = truth_campaign_of_source.get(src)
        if campaign is not None:
            truth_groups.setdefault(campaign, []).append(src)

    truth_pairs = pairs_of(list(truth_groups.values()))
    predicted_pairs = pairs_of([c.sources for c in merged])

    tp = len(truth_pairs & predicted_pairs)
    precision = tp / len(predicted_pairs) if predicted_pairs else 1.0
    recall = tp / len(truth_pairs) if truth_pairs else 1.0
    return MergeEvaluation(
        pair_precision=precision,
        pair_recall=recall,
        true_collaborations=sum(1 for g in truth_groups.values() if len(g) > 1),
        found_collaborations=sum(1 for c in merged if c.is_collaborative),
    )
