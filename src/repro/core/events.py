"""Vulnerability-disclosure response analysis (§4.3, Figure 1).

After a disclosure, scanning for the affected port spikes by one to two
orders of magnitude and then decays within weeks — "the Internet forgets
fast".  This module measures that response: the daily activity series on a
port normalised by its period average, the peak surge factor, and the number
of days until a Kolmogorov–Smirnov test can no longer distinguish post-event
activity from the pre-event baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.stats import ks_two_sample
from repro.core.pipeline import PeriodAnalysis
from repro.telescope.packet import PacketBatch

_DAY_S = 86_400.0


def port_daily_packets(batch: PacketBatch, port: int, days: int) -> np.ndarray:
    """Packets per day targeting ``port`` over the period."""
    if days < 1:
        raise ValueError("days must be >= 1")
    mask = batch.dst_port == port
    if not np.any(mask):
        return np.zeros(days, dtype=np.int64)
    day_idx = np.minimum((batch.time[mask] // _DAY_S).astype(np.int64), days - 1)
    return np.bincount(day_idx, minlength=days).astype(np.int64)


@dataclass(frozen=True)
class EventResponse:
    """Measured response of one port to a disclosure event."""

    port: int
    disclosure_day: int
    daily_packets: np.ndarray       # raw series over the whole period
    relative_series: np.ndarray     # post-event days, normalised by baseline
    peak_factor: float              # max surge over baseline
    days_to_normal: Optional[int]   # KS says "back to baseline" after this
    ks_pvalues: np.ndarray          # per post-event window

    @property
    def returned_to_normal(self) -> bool:
        return self.days_to_normal is not None


def event_response(
    analysis: PeriodAnalysis,
    port: int,
    disclosure_day: int,
    baseline_days: Optional[int] = None,
    window_days: int = 5,
    significance: float = 0.05,
) -> EventResponse:
    """Measure a port's disclosure response.

    The baseline is the distribution of daily packet counts before the
    disclosure (or, when the disclosure is too early in the period to leave
    a usable pre-window, the period's median-normalised tail).  Each
    post-event sliding window of ``window_days`` days is KS-tested against
    the baseline; the response has "returned to normal" at the first window
    whose p-value exceeds ``significance``.
    """
    if not 0 <= disclosure_day < analysis.days:
        raise ValueError("disclosure_day must lie within the period")
    if window_days < 2:
        raise ValueError("window_days must be >= 2 (KS needs a sample)")
    daily = port_daily_packets(analysis.study_batch, port, analysis.days)

    if baseline_days is None:
        baseline_days = disclosure_day
    baseline = daily[max(0, disclosure_day - baseline_days):disclosure_day]
    if baseline.size < 2:
        # Too little pre-event data: fall back to the final week, which the
        # decay model guarantees is closest to baseline.
        baseline = daily[-max(window_days, 2):]
    # Floor at one packet/day: ports quiet before a disclosure would
    # otherwise produce astronomically large (and meaningless) ratios.
    baseline_level = max(float(np.mean(baseline)), 1.0)

    post = daily[disclosure_day:]
    relative = post / baseline_level
    peak = float(relative.max()) if relative.size else 0.0

    pvalues: List[float] = []
    days_to_normal: Optional[int] = None
    for offset in range(0, max(0, post.size - window_days + 1)):
        window = post[offset:offset + window_days]
        stat, p = ks_two_sample(baseline, window)
        pvalues.append(p)
        if days_to_normal is None and p > significance:
            days_to_normal = offset
    return EventResponse(
        port=port,
        disclosure_day=disclosure_day,
        daily_packets=daily,
        relative_series=relative,
        peak_factor=peak,
        days_to_normal=days_to_normal,
        ks_pvalues=np.array(pvalues, dtype=float),
    )


def multi_event_responses(
    analysis: PeriodAnalysis,
    events: Sequence[Tuple[int, int]],
    **kwargs,
) -> Dict[int, EventResponse]:
    """Responses for several ``(port, disclosure_day)`` events (Figure 1)."""
    out: Dict[int, EventResponse] = {}
    for port, day in events:
        out[port] = event_response(analysis, port, day, **kwargs)
    return out
