"""End-to-end analysis pipeline.

:func:`analyze_period` is the hub every experiment goes through: it takes a
telescope capture, identifies scans, fingerprints tools, and enriches scans
with origin metadata.  The resulting :class:`PeriodAnalysis` is what the
figure/table modules consume.

Ports 23 and 445 are excluded from all general statistics (the telescope
blocks them at the ingress from 2017 and the paper therefore drops them from
every year's statistics, §3.2); :attr:`PeriodAnalysis.study_batch` is the
capture with those ports removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import FrozenSet, Optional

import numpy as np

from repro.core.campaigns import CampaignCriteria, ScanTable, identify_scans
from repro.core.fingerprints import ToolFingerprinter
from repro.enrichment.classify import ScannerClassifier
from repro.enrichment.registry import build_default_registry
from repro.telescope.packet import PacketBatch

#: Ports excluded from every statistic (ingress-blocked since 2017, §3.2).
EXCLUDED_STUDY_PORTS: FrozenSet[int] = frozenset({23, 445})


@dataclass
class PeriodAnalysis:
    """Analysed view of one measurement period."""

    year: int
    days: int
    batch: PacketBatch            # full capture (scan probes)
    scans: ScanTable              # identified + fingerprinted + enriched
    classifier: ScannerClassifier
    criteria: CampaignCriteria

    @cached_property
    def study_batch(self) -> PacketBatch:
        """The capture with study-excluded ports removed."""
        if len(self.batch) == 0:
            return self.batch
        excluded = np.array(sorted(EXCLUDED_STUDY_PORTS), dtype=np.uint16)
        return self.batch.where(~np.isin(self.batch.dst_port, excluded))

    @cached_property
    def study_scans(self) -> ScanTable:
        """Scans whose primary port is not study-excluded."""
        if len(self.scans) == 0:
            return self.scans
        excluded = np.array(sorted(EXCLUDED_STUDY_PORTS), dtype=np.uint16)
        return self.scans.select(~np.isin(self.scans.primary_port, excluded))

    @property
    def packets_per_day(self) -> float:
        """Scan packets per day in the study view."""
        return len(self.study_batch) / self.days

    @property
    def scans_per_month(self) -> float:
        """Observed scans per 30 days."""
        return len(self.study_scans) / (self.days / 30.0)

    @cached_property
    def distinct_sources(self) -> int:
        """Distinct source IPs in the study view (scans and background)."""
        return self.study_batch.distinct_sources()


def analyze_period(
    batch: PacketBatch,
    year: int,
    days: int,
    classifier: Optional[ScannerClassifier] = None,
    criteria: Optional[CampaignCriteria] = None,
    fingerprinter: Optional[ToolFingerprinter] = None,
) -> PeriodAnalysis:
    """Run the full pipeline over a capture.

    Args:
        batch: telescope scan probes (output of :meth:`Telescope.observe`).
        year: calendar year of the capture (drives reporting only).
        days: measurement-period length in days.
        classifier: enrichment classifier; defaults to one over the default
            synthetic registry.
        criteria: campaign-identification thresholds (§3.4 defaults).
        fingerprinter: tool fingerprinting configuration.
    """
    if days <= 0:
        raise ValueError("days must be positive")
    if classifier is None:
        classifier = ScannerClassifier(build_default_registry())
    criteria = criteria if criteria is not None else CampaignCriteria()
    scans = identify_scans(batch, criteria=criteria, fingerprinter=fingerprinter)
    scans.enrich(classifier)
    return PeriodAnalysis(
        year=year,
        days=days,
        batch=batch,
        scans=scans,
        classifier=classifier,
        criteria=criteria,
    )


def analyze_simulation(result, criteria: Optional[CampaignCriteria] = None,
                       fingerprinter: Optional[ToolFingerprinter] = None) -> PeriodAnalysis:
    """Analyse a :class:`~repro.simulation.world.SimulationResult`.

    Uses the simulation's own registry for enrichment so classification has a
    consistent ground truth; the analysis still only sees packets.
    """
    classifier = ScannerClassifier(result.registry)
    return analyze_period(
        result.batch,
        year=result.year,
        days=result.days,
        classifier=classifier,
        criteria=criteria,
        fingerprinter=fingerprinter,
    )
