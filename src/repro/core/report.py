"""The combined paper report: trends, volatility, recurrence, churn.

:class:`PaperReport` bundles the longitudinal analyses of §4.2/§4.4/§6.6
into one value both computation paths produce:

* :func:`paper_report` builds it from a fully materialised
  :class:`~repro.core.pipeline.PeriodAnalysis` (the batch path);
* :class:`repro.stream.analyses.AnalysisSuite` builds the *same* report —
  field by field, float for float — from a single bounded-memory streaming
  pass, at any window size and shard count.

Both paths funnel through the pure finalisers of the analysis modules
(:func:`~repro.core.volatility.summaries_from_counts`,
:func:`~repro.core.trends.concentration_from_packets`,
:func:`~repro.core.recurrence.recurrence_stats_arrays`,
:func:`~repro.core.churn.fit_population_curve`), which is what makes the
equality structural rather than coincidental.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.churn import ChurnFit, cumulative_distinct_sources, fit_population_curve
from repro.core.pipeline import PeriodAnalysis
from repro.core.recurrence import (
    RecurrenceStats,
    institutional_daily_scanners,
    recurrence_by_type,
    recurrence_stats,
)
from repro.core.trends import (
    CLASSIC_PORTS,
    ConcentrationReport,
    IntensityReport,
    country_distribution_entropy,
    port_distribution_entropy,
    port_share,
    scan_intensity,
    traffic_concentration,
)
from repro.core.volatility import (
    VolatilitySummary,
    summaries_from_counts,
    weekly_slash16_counts,
    weeks_in_period,
)
from repro.enrichment.types import ScannerType


@dataclass(frozen=True)
class TrendsReport:
    """§4.2's single-period trend metrics."""

    classic_port_share: float          # packet share of ports (22, 80, 8080)
    port_entropy: float                # bits over the packet-port distribution
    country_entropy: float             # bits over the scan-country distribution
    concentration: Optional[ConcentrationReport]
    intensity: Optional[IntensityReport]


@dataclass(frozen=True)
class RecurrenceReport:
    """§6.6's recurrence metrics, overall and per scanner type."""

    overall: RecurrenceStats
    by_type: Dict[ScannerType, RecurrenceStats]
    institutional_daily: int


@dataclass(frozen=True)
class ChurnReport:
    """§4.2's churn view: the distinct-source curve and its renewal fit."""

    curve: np.ndarray                  # cumulative distinct sources per day
    fit: Optional[ChurnFit]


@dataclass(frozen=True)
class PaperReport:
    """Every longitudinal analysis of one period, in one value."""

    year: int
    days: int
    packets: int                       # study-view packets
    scans: int                         # study-view scans
    trends: TrendsReport
    volatility: Dict[str, VolatilitySummary]
    recurrence: RecurrenceReport
    churn: ChurnReport


def paper_report(analysis: PeriodAnalysis) -> PaperReport:
    """Assemble the report from a batch :class:`PeriodAnalysis`."""
    scans = analysis.study_scans
    batch = analysis.study_batch
    n_weeks = weeks_in_period(analysis.days)
    counts = weekly_slash16_counts(batch, scans, n_weeks)
    curve = cumulative_distinct_sources(batch, analysis.days)
    return PaperReport(
        year=analysis.year,
        days=analysis.days,
        packets=len(batch),
        scans=len(scans),
        trends=TrendsReport(
            classic_port_share=port_share(analysis, CLASSIC_PORTS),
            port_entropy=port_distribution_entropy(analysis),
            country_entropy=country_distribution_entropy(analysis),
            concentration=(
                traffic_concentration(scans) if len(scans) else None
            ),
            intensity=scan_intensity(scans) if len(scans) else None,
        ),
        volatility=summaries_from_counts(counts),
        recurrence=RecurrenceReport(
            overall=recurrence_stats(scans),
            by_type=recurrence_by_type(scans),
            institutional_daily=institutional_daily_scanners(scans),
        ),
        churn=ChurnReport(
            curve=curve,
            fit=fit_population_curve(curve) if curve[-1] > 0 else None,
        ),
    )
