"""Tool fingerprinting — the *detecting* side of §3.3.

The detectors here implement the published header-field relations for the
five tracked tools.  They are written against the literature, not against
this repository's generators, and are validated in both directions by the
test suite (generators satisfy the relations; random traffic does not).

Detection order matters: the most specific single-packet relations run first
(ZMap's constant IP-ID, Masscan's IP-ID equation, Mirai's sequence=destIP),
then the pairwise relations (Unicorn before NMap, because NMap's relation has
a far higher chance rate — 2⁻¹⁶ per pair — and would shadow Unicorn's 2⁻³²
relation if tested first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.scanners.base import Tool
from repro.scanners.masscan import masscan_ip_id
from repro.scanners.zmap import ZMAP_IP_ID
from repro.telescope.packet import PacketBatch

#: Fraction of packets/pairs that must satisfy a relation for attribution.
DEFAULT_MATCH_THRESHOLD = 0.8

#: Packets examined per scan; fingerprints are deterministic per tool, so a
#: prefix sample is sufficient and keeps huge scans cheap.
DEFAULT_SAMPLE_LIMIT = 256


def masscan_match(ip_id: np.ndarray, dst_ip: np.ndarray, dst_port: np.ndarray,
                  seq: np.ndarray) -> np.ndarray:
    """Per-packet Masscan test: IPid == destIP ⊕ destPort ⊕ SeqNum (16-bit)."""
    return ip_id == masscan_ip_id(dst_ip, dst_port, seq)


def zmap_match(ip_id: np.ndarray) -> np.ndarray:
    """Per-packet stock-ZMap test: IP Identification == 54321."""
    return ip_id == ZMAP_IP_ID


def mirai_match(seq: np.ndarray, dst_ip: np.ndarray) -> np.ndarray:
    """Per-packet Mirai test: TCP sequence number == destination IP."""
    return seq.astype(np.uint32) == dst_ip.astype(np.uint32)


def nmap_pair_match(seq: np.ndarray) -> np.ndarray:
    """Consecutive-pair NMap test.

    Within one session, ``Seq1 ⊕ Seq2`` has equal 16-bit halves because the
    embedded info is duplicated into both halves before the session secret is
    XORed on.  Returns a boolean per consecutive pair (length ``n - 1``).
    """
    if seq.size < 2:
        return np.zeros(0, dtype=bool)
    delta = seq[:-1].astype(np.uint32) ^ seq[1:].astype(np.uint32)
    return (delta & np.uint32(0xFFFF)) == ((delta >> np.uint32(16)) & np.uint32(0xFFFF))


def unicorn_pair_match(
    seq: np.ndarray, dst_ip: np.ndarray, dst_port: np.ndarray, src_port: np.ndarray
) -> np.ndarray:
    """Consecutive-pair Unicorn test (paper §3.3)::

        Seq1 ⊕ Seq2 == destIP1 ⊕ destIP2 ⊕ srcPort1 ⊕ srcPort2
                       ⊕ ((destPort1 ⊕ destPort2) << 16)
    """
    if seq.size < 2:
        return np.zeros(0, dtype=bool)
    left = seq[:-1].astype(np.uint32) ^ seq[1:].astype(np.uint32)
    right = (
        (dst_ip[:-1].astype(np.uint32) ^ dst_ip[1:].astype(np.uint32))
        ^ (src_port[:-1].astype(np.uint32) ^ src_port[1:].astype(np.uint32))
        ^ ((dst_port[:-1].astype(np.uint32) ^ dst_port[1:].astype(np.uint32))
           << np.uint32(16))
    )
    return left == right


@dataclass(frozen=True)
class FingerprintVerdict:
    """Outcome of fingerprinting one scan."""

    tool: Tool
    match_fraction: float
    packets_examined: int


class ToolFingerprinter:
    """Attributes scans to tools from their header fields."""

    def __init__(
        self,
        threshold: float = DEFAULT_MATCH_THRESHOLD,
        sample_limit: int = DEFAULT_SAMPLE_LIMIT,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if sample_limit < 2:
            raise ValueError("sample_limit must be >= 2 (pairwise tests need pairs)")
        self.threshold = threshold
        self.sample_limit = sample_limit

    def fingerprint_arrays(
        self,
        ip_id: np.ndarray,
        seq: np.ndarray,
        dst_ip: np.ndarray,
        dst_port: np.ndarray,
        src_port: np.ndarray,
    ) -> FingerprintVerdict:
        """Fingerprint one scan given its (time-ordered) packet fields."""
        n = min(ip_id.size, self.sample_limit)
        if n == 0:
            return FingerprintVerdict(Tool.UNKNOWN, 0.0, 0)
        ip_id, seq = ip_id[:n], seq[:n]
        dst_ip, dst_port, src_port = dst_ip[:n], dst_port[:n], src_port[:n]

        # Single-packet relations, most specific first.
        for tool, mask in (
            (Tool.ZMAP, zmap_match(ip_id)),
            (Tool.MASSCAN, masscan_match(ip_id, dst_ip, dst_port, seq)),
            (Tool.MIRAI, mirai_match(seq, dst_ip)),
        ):
            fraction = float(np.count_nonzero(mask) / n)
            if fraction >= self.threshold:
                return FingerprintVerdict(tool, fraction, n)

        # Pairwise relations need at least one pair.
        if n >= 2:
            uni = unicorn_pair_match(seq, dst_ip, dst_port, src_port)
            fraction = float(np.count_nonzero(uni) / uni.size)
            if fraction >= self.threshold:
                return FingerprintVerdict(Tool.UNICORN, fraction, n)
            nmap = nmap_pair_match(seq)
            fraction = float(np.count_nonzero(nmap) / nmap.size)
            if fraction >= self.threshold:
                return FingerprintVerdict(Tool.NMAP, fraction, n)

        return FingerprintVerdict(Tool.UNKNOWN, 0.0, n)

    def fingerprint_batch(self, batch: PacketBatch) -> FingerprintVerdict:
        """Fingerprint a batch assumed to belong to one scan."""
        return self.fingerprint_arrays(
            batch.ip_id, batch.seq, batch.dst_ip, batch.dst_port, batch.src_port
        )

    def per_packet_tool(self, batch: PacketBatch) -> np.ndarray:
        """Best-effort per-packet attribution over a mixed batch.

        Only the single-packet relations apply (pairwise tests are undefined
        across unrelated packets); everything else is UNKNOWN.  Used for
        traffic-share analyses where packets, not scans, are weighted.
        """
        n = len(batch)
        out = np.full(n, Tool.UNKNOWN, dtype=object)
        if n == 0:
            return out
        zm = zmap_match(batch.ip_id)
        ms = masscan_match(batch.ip_id, batch.dst_ip, batch.dst_port, batch.seq)
        mi = mirai_match(batch.seq, batch.dst_ip)
        out[mi] = Tool.MIRAI
        out[ms & ~zm] = Tool.MASSCAN
        out[zm] = Tool.ZMAP
        return out
