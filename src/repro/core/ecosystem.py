"""Per-year ecosystem statistics (Table 1, §4.1).

Summarises a :class:`~repro.core.pipeline.PeriodAnalysis` into the metrics of
the paper's Table 1: packets/day, scans/month, the five most-targeted ports
by packets, by sources and by scans, and tool shares; plus the growth-factor
arithmetic of §4.1 (the "30-fold in ten years" headline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.pipeline import PeriodAnalysis
from repro.scanners.base import Tool


@dataclass(frozen=True)
class PortShare:
    """One entry of a top-ports ranking."""

    port: int
    share: float

    def __str__(self) -> str:
        return f"{self.port} ({self.share * 100:.1f}%)"


@dataclass(frozen=True)
class YearSummary:
    """Table 1's row set for one year."""

    year: int
    packets_per_day: float
    scans_per_month: float
    distinct_sources: int
    top_ports_by_packets: Tuple[PortShare, ...]
    top_ports_by_sources: Tuple[PortShare, ...]
    top_ports_by_scans: Tuple[PortShare, ...]
    tool_shares_by_scans: Mapping[Tool, float]
    tool_shares_by_packets: Mapping[Tool, float]


def top_ports_by_packets(analysis: PeriodAnalysis, k: int = 5) -> List[PortShare]:
    """Ports ranked by packet volume (study view)."""
    batch = analysis.study_batch
    if len(batch) == 0:
        return []
    ports, counts = np.unique(batch.dst_port, return_counts=True)
    order = np.argsort(counts)[::-1][:k]
    total = len(batch)
    return [PortShare(int(ports[i]), counts[i] / total) for i in order]


def top_ports_by_sources(analysis: PeriodAnalysis, k: int = 5) -> List[PortShare]:
    """Ports ranked by the number of distinct sources probing them.

    Shares are fractions of all distinct sources (they need not sum to 1 —
    a source probing several ports counts towards each).
    """
    batch = analysis.study_batch
    if len(batch) == 0:
        return []
    pairs = (batch.src_ip.astype(np.uint64) << np.uint64(16)) | batch.dst_port.astype(np.uint64)
    unique_pairs = np.unique(pairs)
    ports = (unique_pairs & np.uint64(0xFFFF)).astype(np.int64)
    port_values, counts = np.unique(ports, return_counts=True)
    order = np.argsort(counts)[::-1][:k]
    total_sources = analysis.distinct_sources
    return [
        PortShare(int(port_values[i]), counts[i] / max(total_sources, 1))
        for i in order
    ]


def top_ports_by_scans(analysis: PeriodAnalysis, k: int = 5) -> List[PortShare]:
    """Ports ranked by the number of scans whose port set includes them."""
    scans = analysis.study_scans
    if len(scans) == 0:
        return []
    counts: Dict[int, int] = {}
    for ports in scans.port_sets:
        for port in ports.tolist():
            counts[port] = counts.get(port, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)[:k]
    return [PortShare(port, count / len(scans)) for port, count in ranked]


def summarize_period(analysis: PeriodAnalysis, top_k: int = 5) -> YearSummary:
    """Build the Table 1 row set for one analysed period."""
    scans = analysis.study_scans
    return YearSummary(
        year=analysis.year,
        packets_per_day=analysis.packets_per_day,
        scans_per_month=analysis.scans_per_month,
        distinct_sources=analysis.distinct_sources,
        top_ports_by_packets=tuple(top_ports_by_packets(analysis, top_k)),
        top_ports_by_sources=tuple(top_ports_by_sources(analysis, top_k)),
        top_ports_by_scans=tuple(top_ports_by_scans(analysis, top_k)),
        tool_shares_by_scans=scans.tool_shares_by_scans(),
        tool_shares_by_packets=scans.tool_shares_by_packets(),
    )


@dataclass(frozen=True)
class GrowthReport:
    """The §4.1 growth arithmetic between the first and last study year."""

    first_year: int
    last_year: int
    packet_growth: float     # "30-fold" in the paper
    scan_growth: float       # "factor of 39"
    intensity_first: float   # packets per scan, first year
    intensity_last: float


def growth_report(summaries: Mapping[int, YearSummary]) -> GrowthReport:
    """Growth factors across the summarised years.

    Raises ``ValueError`` on fewer than two years — growth of a single point
    is meaningless.
    """
    if len(summaries) < 2:
        raise ValueError("growth needs at least two years")
    years = sorted(summaries)
    first, last = summaries[years[0]], summaries[years[-1]]
    if first.packets_per_day <= 0 or first.scans_per_month <= 0:
        raise ValueError("first year has no traffic; cannot compute growth")
    return GrowthReport(
        first_year=first.year,
        last_year=last.year,
        packet_growth=last.packets_per_day / first.packets_per_day,
        scan_growth=last.scans_per_month / first.scans_per_month,
        intensity_first=first.packets_per_day * 30 / first.scans_per_month,
        intensity_last=last.packets_per_day * 30 / last.scans_per_month,
    )


def common_tool_share(summary: YearSummary, by_packets: bool = False) -> float:
    """Share of scans (or packets) attributable to the tracked tools.

    §6.1: 34% of scans in 2015 → 54% in 2020; 25% of packets in 2015 → 92%
    in 2020; under 40% of packets by 2024.
    """
    shares = (
        summary.tool_shares_by_packets if by_packets else summary.tool_shares_by_scans
    )
    return sum(v for t, v in shares.items() if t != Tool.UNKNOWN)
