"""Scanner recurrence (§6.6, Figure 6).

Measures how often source IPs come back to scan again and how long they stay
quiet between scans.  The paper's findings: non-institutional sources rarely
return (their addresses are "burned" — deliberately for hosting, through
DHCP churn for residential), while institutional sources exhibit a strong
mode of scanning every single day.

The per-source grouping is one ``lexsort`` plus split boundaries
(:func:`split_scan_times`) rather than a Python dict-append loop: the old
formulation was interpreter-bound at O(n) dict operations and dominated
recurrence analysis on large tables.  The split arrays are also the
finalise representation of the streaming recurrence accumulator
(:class:`repro.stream.analyses.IncrementalRecurrence`), so batch and
streaming recurrence compute through the same implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.stats import empirical_cdf
from repro.core.campaigns import ScanTable
from repro.enrichment.types import ScannerType

_DAY_S = 86_400.0


@dataclass(frozen=True)
class RecurrenceStats:
    """Recurrence behaviour of one scanner-type group."""

    sources: int
    fraction_recurring: float                # sources with >= 2 scans
    fraction_over_100_scans: float           # the institutional hallmark
    scan_count_cdf: Tuple[np.ndarray, np.ndarray]
    downtime_cdf: Tuple[np.ndarray, np.ndarray]   # seconds between scans
    fraction_downtime_within_day: float
    daily_mode_fraction: float               # downtimes within 1 day ± 25%


def split_scan_times(
    src_ip: np.ndarray, start: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-source sorted scan times in one vectorised pass.

    Returns ``(sources, offsets, times)``: the distinct sources in ascending
    order, ``int64`` offsets of length ``len(sources) + 1``, and the scan
    start times sorted by ``(source, time)`` — source ``i`` owns
    ``times[offsets[i]:offsets[i + 1]]``, ascending.
    """
    if src_ip.size == 0:
        return (np.array([], dtype=src_ip.dtype),
                np.zeros(1, dtype=np.int64),
                np.array([], dtype=float))
    order = np.lexsort((start, src_ip))
    src_sorted = src_ip[order]
    times = start[order].astype(float, copy=False)
    firsts = np.flatnonzero(
        np.concatenate(([True], src_sorted[1:] != src_sorted[:-1]))
    )
    offsets = np.append(firsts, src_sorted.size).astype(np.int64)
    return src_sorted[firsts], offsets, times


def _per_source_scan_times(scans: ScanTable) -> Dict[int, np.ndarray]:
    """Sorted scan start times per source (dict view of the split arrays)."""
    sources, offsets, times = split_scan_times(scans.src_ip, scans.start)
    return {
        int(sources[i]): times[offsets[i]:offsets[i + 1]]
        for i in range(sources.size)
    }


def recurrence_stats_arrays(
    sources: np.ndarray, offsets: np.ndarray, times: np.ndarray
) -> RecurrenceStats:
    """Recurrence statistics from :func:`split_scan_times` arrays.

    The shared finalise step of the batch path and the streaming recurrence
    accumulator.
    """
    if sources.size == 0:
        empty = (np.array([]), np.array([]))
        return RecurrenceStats(0, 0.0, 0.0, empty, empty, 0.0, 0.0)
    counts = np.diff(offsets).astype(np.int64)
    if times.size > 1:
        gaps = np.diff(times)
        keep = np.ones(gaps.size, dtype=bool)
        # Drop the gaps that straddle a source boundary.
        keep[offsets[1:-1] - 1] = False
        downtimes_arr = gaps[keep].astype(float)
    else:
        downtimes_arr = np.array([], dtype=float)
    within_day = float(np.mean(downtimes_arr <= _DAY_S)) if downtimes_arr.size else 0.0
    daily_mode = (
        float(np.mean((downtimes_arr >= 0.75 * _DAY_S) & (downtimes_arr <= 1.25 * _DAY_S)))
        if downtimes_arr.size else 0.0
    )
    return RecurrenceStats(
        sources=int(counts.size),
        fraction_recurring=float(np.mean(counts >= 2)),
        fraction_over_100_scans=float(np.mean(counts > 100)),
        scan_count_cdf=empirical_cdf(counts),
        downtime_cdf=empirical_cdf(downtimes_arr) if downtimes_arr.size else (np.array([]), np.array([])),
        fraction_downtime_within_day=within_day,
        daily_mode_fraction=daily_mode,
    )


def recurrence_stats(scans: ScanTable) -> RecurrenceStats:
    """Recurrence statistics over one scan table."""
    return recurrence_stats_arrays(*split_scan_times(scans.src_ip, scans.start))


def recurrence_by_type(scans: ScanTable) -> Dict[ScannerType, RecurrenceStats]:
    """Recurrence statistics split by scanner type (Figure 6).

    Requires an enriched table (``scans.enrich`` must have run).
    """
    out: Dict[ScannerType, RecurrenceStats] = {}
    types = np.array([str(t) if t is not None else "" for t in scans.scanner_type])
    for stype in ScannerType:
        mask = types == stype.value
        if np.any(mask):
            out[stype] = recurrence_stats(scans.select(mask))
    return out


def daily_cadence_sources(
    sources: np.ndarray,
    offsets: np.ndarray,
    times: np.ndarray,
    tolerance: float = 0.25,
    min_scans: int = 5,
) -> int:
    """Sources whose median inter-scan gap is within ``tolerance`` of a day.

    Operates on :func:`split_scan_times` arrays so the streaming path can
    reuse it; only sources with at least ``min_scans`` scans qualify.
    """
    counts = np.diff(offsets)
    count = 0
    for i in np.flatnonzero(counts >= min_scans):
        gaps = np.diff(times[offsets[i]:offsets[i + 1]])
        median_gap = float(np.median(gaps))
        if abs(median_gap - _DAY_S) <= tolerance * _DAY_S:
            count += 1
    return count


def institutional_daily_scanners(scans: ScanTable, tolerance: float = 0.25) -> int:
    """Number of institutional sources with a near-daily scanning cadence.

    A source qualifies when it scanned at least 5 times and the median gap
    between its scans is within ``tolerance`` of one day — the Figure 6
    "large mode of scanning IP addresses that consistently scan every day".
    """
    types = np.array([str(t) if t is not None else "" for t in scans.scanner_type])
    inst = scans.select(types == ScannerType.INSTITUTIONAL.value)
    sources, offsets, times = split_scan_times(inst.src_ip, inst.start)
    return daily_cadence_sources(sources, offsets, times, tolerance=tolerance)
