"""Scanner recurrence (§6.6, Figure 6).

Measures how often source IPs come back to scan again and how long they stay
quiet between scans.  The paper's findings: non-institutional sources rarely
return (their addresses are "burned" — deliberately for hosting, through
DHCP churn for residential), while institutional sources exhibit a strong
mode of scanning every single day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.stats import empirical_cdf
from repro.core.campaigns import ScanTable
from repro.enrichment.types import ScannerType

_DAY_S = 86_400.0


@dataclass(frozen=True)
class RecurrenceStats:
    """Recurrence behaviour of one scanner-type group."""

    sources: int
    fraction_recurring: float                # sources with >= 2 scans
    fraction_over_100_scans: float           # the institutional hallmark
    scan_count_cdf: Tuple[np.ndarray, np.ndarray]
    downtime_cdf: Tuple[np.ndarray, np.ndarray]   # seconds between scans
    fraction_downtime_within_day: float
    daily_mode_fraction: float               # downtimes within 1 day ± 25%


def _per_source_scan_times(scans: ScanTable) -> Dict[int, np.ndarray]:
    """Sorted scan start times per source."""
    out: Dict[int, List[float]] = {}
    for i in range(len(scans)):
        out.setdefault(int(scans.src_ip[i]), []).append(float(scans.start[i]))
    return {src: np.sort(np.array(times)) for src, times in out.items()}


def recurrence_stats(scans: ScanTable) -> RecurrenceStats:
    """Recurrence statistics over one scan table."""
    per_source = _per_source_scan_times(scans)
    if not per_source:
        empty = (np.array([]), np.array([]))
        return RecurrenceStats(0, 0.0, 0.0, empty, empty, 0.0, 0.0)
    counts = np.array([t.size for t in per_source.values()], dtype=np.int64)
    downtimes: List[float] = []
    for times in per_source.values():
        if times.size >= 2:
            downtimes.extend(np.diff(times).tolist())
    downtimes_arr = np.array(downtimes, dtype=float)
    within_day = float(np.mean(downtimes_arr <= _DAY_S)) if downtimes_arr.size else 0.0
    daily_mode = (
        float(np.mean((downtimes_arr >= 0.75 * _DAY_S) & (downtimes_arr <= 1.25 * _DAY_S)))
        if downtimes_arr.size else 0.0
    )
    return RecurrenceStats(
        sources=int(counts.size),
        fraction_recurring=float(np.mean(counts >= 2)),
        fraction_over_100_scans=float(np.mean(counts > 100)),
        scan_count_cdf=empirical_cdf(counts),
        downtime_cdf=empirical_cdf(downtimes_arr) if downtimes_arr.size else (np.array([]), np.array([])),
        fraction_downtime_within_day=within_day,
        daily_mode_fraction=daily_mode,
    )


def recurrence_by_type(scans: ScanTable) -> Dict[ScannerType, RecurrenceStats]:
    """Recurrence statistics split by scanner type (Figure 6).

    Requires an enriched table (``scans.enrich`` must have run).
    """
    out: Dict[ScannerType, RecurrenceStats] = {}
    types = np.array([str(t) if t is not None else "" for t in scans.scanner_type])
    for stype in ScannerType:
        mask = types == stype.value
        if np.any(mask):
            out[stype] = recurrence_stats(scans.select(mask))
    return out


def institutional_daily_scanners(scans: ScanTable, tolerance: float = 0.25) -> int:
    """Number of institutional sources with a near-daily scanning cadence.

    A source qualifies when it scanned at least 5 times and the median gap
    between its scans is within ``tolerance`` of one day — the Figure 6
    "large mode of scanning IP addresses that consistently scan every day".
    """
    types = np.array([str(t) if t is not None else "" for t in scans.scanner_type])
    inst = scans.select(types == ScannerType.INSTITUTIONAL.value)
    count = 0
    for times in _per_source_scan_times(inst).values():
        if times.size < 5:
            continue
        median_gap = float(np.median(np.diff(times)))
        if abs(median_gap - _DAY_S) <= tolerance * _DAY_S:
            count += 1
    return count
