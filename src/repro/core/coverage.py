"""IPv4-coverage analyses (§6.4, parts of Figure 7).

A scan's coverage is estimated by extrapolating the distinct telescope
addresses it hit over the whole IPv4 space (the :class:`ScanTable` carries
this estimate per scan).  On top of that, this module finds the *coverage
modes* that betray logical target-space slicing — 256 collaborating sources
each covering 1/256 of the permutation produce a vertical step in the
coverage CDF — and the collaborating-subnet clusters behind them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.campaigns import ScanTable
from repro.scanners.base import Tool
from repro.telescope.addresses import slash24_of


@dataclass(frozen=True)
class CoverageStats:
    """Coverage distribution summary for one group of scans."""

    scans: int
    mean: float
    median: float
    p90: float
    fraction_full_ipv4: float


def coverage_stats(coverage: np.ndarray, full_threshold: float = 0.9) -> CoverageStats:
    """Summarise a coverage sample.

    ``full_threshold`` defines "targets the entire IPv4 space"; the default
    0.9 tolerates the sampling loss of scans that overlap the period edge.
    """
    if coverage.size == 0:
        raise ValueError("no scans to summarise")
    if not 0.0 < full_threshold <= 1.0:
        raise ValueError("full_threshold must be in (0, 1]")
    return CoverageStats(
        scans=int(coverage.size),
        mean=float(coverage.mean()),
        median=float(np.median(coverage)),
        p90=float(np.quantile(coverage, 0.9)),
        fraction_full_ipv4=float(np.mean(coverage >= full_threshold)),
    )


def coverage_by_tool(scans: ScanTable, full_threshold: float = 0.9) -> Dict[Tool, CoverageStats]:
    """Per-tool coverage statistics."""
    out: Dict[Tool, CoverageStats] = {}
    tools = scans.tool.astype(str)
    for name in sorted(set(tools.tolist())):
        mask = tools == name
        out[Tool(name)] = coverage_stats(scans.coverage[mask], full_threshold)
    return out


@dataclass(frozen=True)
class CoverageMode:
    """A detected mode (vertical step) in a coverage distribution."""

    coverage: float          # centre of the mode bin
    count: int               # scans in the bin
    excess: float            # count relative to neighbouring bins


def coverage_modes(
    coverage: np.ndarray,
    n_bins: int = 200,
    min_count: int = 10,
    excess_factor: float = 3.0,
) -> List[CoverageMode]:
    """Find modes in a coverage sample (evidence of target-space slicing).

    Bins are logarithmic (slicing modes live at small coverages like 1/256);
    a bin is a mode when it holds at least ``min_count`` scans and exceeds
    the mean of its neighbours by ``excess_factor``.
    """
    if n_bins < 10:
        raise ValueError("n_bins must be >= 10")
    cov = coverage[coverage > 0]
    if cov.size == 0:
        return []
    lo = max(cov.min(), 1e-7)
    edges = np.logspace(np.log10(lo * 0.9), np.log10(1.0), n_bins + 1)
    hist, _ = np.histogram(cov, bins=edges)
    modes: List[CoverageMode] = []
    for i in range(1, n_bins - 1):
        neighbours = (hist[i - 1] + hist[i + 1]) / 2.0
        if hist[i] >= min_count and hist[i] > excess_factor * max(neighbours, 1.0):
            centre = float(np.sqrt(edges[i] * edges[i + 1]))
            modes.append(CoverageMode(centre, int(hist[i]), float(hist[i] / max(neighbours, 1.0))))
    return modes


@dataclass(frozen=True)
class CollaborationCluster:
    """Sources in one /24 jointly running what looks like a single scan."""

    slash24: int
    sources: int
    total_coverage: float
    mean_coverage: float
    start: float
    end: float


def collaborating_subnets(
    scans: ScanTable,
    min_sources: int = 8,
    time_overlap_s: float = 86_400.0,
    coverage_cv_max: float = 0.5,
) -> List[CollaborationCluster]:
    """Find /24 subnets whose members scan concurrently with similar coverage.

    This is the §6.4 observation operationalised: a /24 of (academic)
    scanners collaborating on one Internet-wide sweep shows up as many
    sources in one subnet, overlapping in time, each with nearly identical
    coverage.  ``coverage_cv_max`` bounds the coefficient of variation of
    member coverages.
    """
    if len(scans) == 0:
        return []
    subnets = slash24_of(scans.src_ip).astype(np.int64)
    clusters: List[CollaborationCluster] = []
    for subnet in np.unique(subnets):
        mask = subnets == subnet
        if int(mask.sum()) < min_sources:
            continue
        starts = scans.start[mask]
        ends = scans.end[mask]
        # Concurrency: the bulk of members overlap a common window.
        window_lo, window_hi = np.median(starts), np.median(ends)
        concurrent = (starts <= window_hi + time_overlap_s) & (ends >= window_lo - time_overlap_s)
        if int(concurrent.sum()) < min_sources:
            continue
        cov = scans.coverage[mask][concurrent]
        if cov.mean() <= 0:
            continue
        cv = float(cov.std() / cov.mean())
        if cv > coverage_cv_max:
            continue
        clusters.append(CollaborationCluster(
            slash24=int(subnet),
            sources=int(concurrent.sum()),
            total_coverage=float(cov.sum()),
            mean_coverage=float(cov.mean()),
            start=float(starts.min()),
            end=float(ends.max()),
        ))
    return clusters
