"""Scan-campaign identification (§3.4) and the observed-scan table.

A *scan* is a sequence of probes from one source address that hits at least
``min_distinct_dsts`` distinct telescope addresses at an Internet-wide rate
of at least ``min_rate_pps``; a source's activity is split into separate
scans whenever it goes quiet for longer than ``expiry_s`` (1 hour — chosen
because a 100 pps random scanner appears in the telescope within the hour
with 99.9% probability, per the Moore et al. detection model).

The output is a :class:`ScanTable`: a column store of observed scans that
every downstream analysis (tool shares, speeds, coverage, recurrence,
classification, geography) operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fingerprints import FingerprintVerdict, ToolFingerprinter
from repro.enrichment.classify import ScannerClassifier
from repro.scanners.base import Tool
from repro.telescope.addresses import IPV4_SPACE_SIZE
from repro.telescope.packet import PacketBatch
from repro.telescope.sensor import PAPER_TELESCOPE_SIZE

#: Average TCP SYN frame size on the wire, used to express rates in bps.
SYN_FRAME_BYTES = 60


@dataclass(frozen=True)
class CampaignCriteria:
    """Thresholds of the scan definition (§3.4).

    The defaults are the paper's; ``durumeric2014`` gives the looser bounds
    of the earlier study (10 pps, 480 s expiry) for comparison experiments.
    """

    min_distinct_dsts: int = 100
    min_rate_pps: float = 100.0
    expiry_s: float = 3600.0
    telescope_size: int = PAPER_TELESCOPE_SIZE
    #: Address-space extent spanned by the telescope's blocks (first to last
    #: monitored address); needed to extrapolate sequential-sweep rates.
    telescope_extent: int = 3 * 65536

    def __post_init__(self) -> None:
        if self.min_distinct_dsts < 1:
            raise ValueError("min_distinct_dsts must be >= 1")
        if self.min_rate_pps <= 0:
            raise ValueError("min_rate_pps must be positive")
        if self.expiry_s <= 0:
            raise ValueError("expiry_s must be positive")
        if self.telescope_size <= 0:
            raise ValueError("telescope_size must be positive")

    @classmethod
    def durumeric2014(cls) -> "CampaignCriteria":
        """The thresholds of Durumeric et al. (2014): 10 pps, 480 s expiry."""
        return cls(min_distinct_dsts=100, min_rate_pps=10.0, expiry_s=480.0)

    def internet_rate(self, telescope_pps: float) -> float:
        """Extrapolate a telescope-local rate to an Internet-wide rate."""
        return telescope_pps * (IPV4_SPACE_SIZE / self.telescope_size)


class ScanTable:
    """Column store of observed scans.

    All columns are aligned arrays of one length; ``port_sets`` carries the
    distinct destination ports of each scan as a sorted array.  Enrichment
    columns (country, scanner type, organisation) start empty and are filled
    by :meth:`enrich`.
    """

    def __init__(
        self,
        src_ip: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        packets: np.ndarray,
        distinct_dsts: np.ndarray,
        port_sets: List[np.ndarray],
        primary_port: np.ndarray,
        tool: np.ndarray,
        match_fraction: np.ndarray,
        speed_pps: np.ndarray,
        coverage: np.ndarray,
        sequential: Optional[np.ndarray] = None,
        window_mode: Optional[np.ndarray] = None,
        ttl_mode: Optional[np.ndarray] = None,
        country: Optional[np.ndarray] = None,
        scanner_type: Optional[np.ndarray] = None,
        organisation: Optional[np.ndarray] = None,
    ):
        n = src_ip.size
        for name, arr in (
            ("start", start), ("end", end), ("packets", packets),
            ("distinct_dsts", distinct_dsts), ("primary_port", primary_port),
            ("tool", tool), ("match_fraction", match_fraction),
            ("speed_pps", speed_pps), ("coverage", coverage),
        ):
            if arr.shape != (n,):
                raise ValueError(f"column {name} misaligned")
        if len(port_sets) != n:
            raise ValueError("port_sets misaligned")
        # Derived-column caches; the base columns are treated as immutable
        # (select() builds new tables rather than mutating), so computing
        # duration / ports-per-scan once per table is safe.
        self._duration_cache: Optional[np.ndarray] = None
        self._n_ports_cache: Optional[np.ndarray] = None
        self.src_ip = src_ip
        self.start = start
        self.end = end
        self.packets = packets
        self.distinct_dsts = distinct_dsts
        self.port_sets = port_sets
        self.primary_port = primary_port
        self.tool = tool
        self.match_fraction = match_fraction
        self.speed_pps = speed_pps
        self.coverage = coverage
        self.sequential = (
            sequential if sequential is not None else np.zeros(n, dtype=bool)
        )
        # Header quirks used for distributed-scanner clustering: the most
        # common TCP window and TTL value among the scan's packets.
        self.window_mode = (
            window_mode if window_mode is not None
            else np.zeros(n, dtype=np.uint16)
        )
        self.ttl_mode = (
            ttl_mode if ttl_mode is not None else np.zeros(n, dtype=np.uint8)
        )
        self.country = country if country is not None else np.full(n, "", dtype=object)
        self.scanner_type = (
            scanner_type if scanner_type is not None else np.full(n, None, dtype=object)
        )
        self.organisation = (
            organisation if organisation is not None else np.full(n, "", dtype=object)
        )

    # -- protocol ---------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.src_ip.size)

    @classmethod
    def empty(cls) -> "ScanTable":
        z = np.array([], dtype=np.int64)
        return cls(
            src_ip=np.array([], dtype=np.uint32),
            start=np.array([], dtype=float),
            end=np.array([], dtype=float),
            packets=z.copy(),
            distinct_dsts=z.copy(),
            port_sets=[],
            primary_port=np.array([], dtype=np.uint16),
            tool=np.array([], dtype=object),
            match_fraction=np.array([], dtype=float),
            speed_pps=np.array([], dtype=float),
            coverage=np.array([], dtype=float),
            sequential=np.array([], dtype=bool),
            window_mode=np.array([], dtype=np.uint16),
            ttl_mode=np.array([], dtype=np.uint8),
        )

    def select(self, mask: np.ndarray) -> "ScanTable":
        """Row-filter into a new table."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise TypeError("select expects a boolean mask")
        if mask.shape != (len(self),):
            raise ValueError("mask misaligned")
        idx = np.flatnonzero(mask)
        return ScanTable(
            src_ip=self.src_ip[idx],
            start=self.start[idx],
            end=self.end[idx],
            packets=self.packets[idx],
            distinct_dsts=self.distinct_dsts[idx],
            port_sets=[self.port_sets[i] for i in idx],
            primary_port=self.primary_port[idx],
            tool=self.tool[idx],
            match_fraction=self.match_fraction[idx],
            speed_pps=self.speed_pps[idx],
            coverage=self.coverage[idx],
            sequential=self.sequential[idx],
            window_mode=self.window_mode[idx],
            ttl_mode=self.ttl_mode[idx],
            country=self.country[idx],
            scanner_type=self.scanner_type[idx],
            organisation=self.organisation[idx],
        )

    # -- derived columns ----------------------------------------------------------

    @property
    def duration(self) -> np.ndarray:
        """Scan durations in seconds (minimum 1 s); computed once per table."""
        if self._duration_cache is None:
            self._duration_cache = np.maximum(self.end - self.start, 1.0)
        return self._duration_cache

    @property
    def n_ports(self) -> np.ndarray:
        """Distinct ports per scan; computed once per table."""
        if self._n_ports_cache is None:
            self._n_ports_cache = np.array(
                [p.size for p in self.port_sets], dtype=np.int64
            )
        return self._n_ports_cache

    @property
    def speed_bps(self) -> np.ndarray:
        """Internet-wide scan rate in bits/second (60-byte SYN frames)."""
        return self.speed_pps * SYN_FRAME_BYTES * 8

    def tool_shares_by_scans(self) -> Dict[Tool, float]:
        """Fraction of scans attributed to each tool."""
        if len(self) == 0:
            return {}
        tools, counts = np.unique(self.tool.astype(str), return_counts=True)
        return {Tool(t): c / len(self) for t, c in zip(tools, counts)}

    def tool_shares_by_packets(self) -> Dict[Tool, float]:
        """Fraction of scan packets attributed to each tool."""
        total = self.packets.sum()
        if total == 0:
            return {}
        tools, inverse = np.unique(self.tool.astype(str), return_inverse=True)
        sums = np.bincount(inverse, weights=self.packets, minlength=tools.size)
        return {Tool(t): float(s / total) for t, s in zip(tools, sums)}

    # -- enrichment ----------------------------------------------------------------

    def enrich(self, classifier: ScannerClassifier) -> "ScanTable":
        """Fill country / scanner-type / organisation columns in place."""
        if len(self) == 0:
            return self
        self.country = classifier.registry.country_of(self.src_ip)
        self.scanner_type = classifier.classify_array(self.src_ip)
        self.organisation = classifier.feed.organisation_of(self.src_ip)
        return self


def iter_source_sessions(
    batch: PacketBatch, expiry_s: float
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(src_ip, time-ordered packet indices)`` per source session.

    A session is a maximal run of a source's packets with no inter-packet
    gap exceeding ``expiry_s``.
    """
    if len(batch) == 0:
        return
    order = np.lexsort((batch.time, batch.src_ip))
    src_sorted = batch.src_ip[order]
    time_sorted = batch.time[order]
    uniques, starts = np.unique(src_sorted, return_index=True)
    bounds = np.append(starts, src_sorted.size)
    for i, src in enumerate(uniques):
        segment = order[bounds[i]:bounds[i + 1]]
        times = time_sorted[bounds[i]:bounds[i + 1]]
        if segment.size == 1:
            yield int(src), segment
            continue
        gaps = np.flatnonzero(np.diff(times) > expiry_s)
        prev = 0
        for cut in list(gaps + 1) + [segment.size]:
            yield int(src), segment[prev:cut]
            prev = cut


#: Minimum |correlation(time, dst)| and session size for the sequential test.
SEQUENTIAL_CORR_THRESHOLD = 0.75
SEQUENTIAL_MIN_PACKETS = 20

#: Naive Internet-wide rates beyond this (≈0.5 Gbps of SYNs) are treated as
#: implausible for a random-permutation scanner; such bursts are re-examined
#: as sequential sweeps whose crossing time sits below the timestamp jitter.
BURST_SUSPECT_RATE_PPS = 1.0e6
BURST_SUSPECT_CORR = 0.3


def detect_sequential(times: np.ndarray, dst: np.ndarray) -> bool:
    """Is this session a linear address sweep?

    Sequential scanners (Lee et al.: 91% of port scanners in 2003; NMap and
    much bespoke tooling today) visit addresses in order, so their hit times
    correlate almost perfectly with the destination address value.
    """
    if times.size < SEQUENTIAL_MIN_PACKETS:
        return False
    dst_f = dst.astype(np.float64)
    if np.all(dst_f == dst_f[0]) or np.all(times == times[0]):
        return False
    r = np.corrcoef(times, dst_f)[0, 1]
    return bool(abs(r) >= SEQUENTIAL_CORR_THRESHOLD)


def estimate_internet_rate(
    times: np.ndarray,
    dst: np.ndarray,
    n_ports: int,
    criteria: CampaignCriteria,
    sequential: bool,
) -> float:
    """Internet-wide probe rate of one session.

    Random-permutation scanners are extrapolated through the telescope's
    space fraction (§3.4).  Sequential sweeps would be inflated by orders of
    magnitude under that model — their hits arrive in compressed bursts as
    the sweep crosses the telescope's blocks — so their rate is instead
    estimated from the sweep's address-space velocity: during the crossing
    the scanner probed its per-address fraction of the crossed span, and the
    session's hits are that fraction of the monitored addresses within it::

        rate = hits * span / (monitored_in_span * duration)

    (the per-address port count cancels out — it inflates hits and probes
    alike).
    """
    if sequential:
        # A sweep's telescope crossing is legitimately sub-second at high
        # probe rates; clamping its duration to 1 s would destroy the
        # estimate, so only a numerical floor applies here.
        duration = max(float(times[-1] - times[0]), 1e-3)
        span = float(dst.max()) - float(dst.min()) + 1.0
        monitored_in_span = criteria.telescope_size * min(
            1.0, span / criteria.telescope_extent
        )
        if span > 1.0 and monitored_in_span >= 1.0:
            return times.size * span / (monitored_in_span * duration)
    duration = max(float(times[-1] - times[0]), 1.0)
    return criteria.internet_rate(times.size / duration)


def _session_correlation(
    times: np.ndarray,
    dst: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-segment Pearson correlation of (time, dst), plus both variances.

    ``times``/``dst`` hold the packets of all segments back to back;
    ``offsets``/``counts`` delimit the segments.  Two-pass (centred) so the
    result matches ``np.corrcoef`` despite destination values up to 2³²:
    a single-pass E[td] − E[t]E[d] formula would lose the covariance to
    cancellation at those magnitudes.
    """
    sum_t = np.add.reduceat(times, offsets)
    sum_d = np.add.reduceat(dst, offsets)
    centred_t = times - np.repeat(sum_t / counts, counts)
    centred_d = dst - np.repeat(sum_d / counts, counts)
    var_t = np.add.reduceat(centred_t * centred_t, offsets)
    var_d = np.add.reduceat(centred_d * centred_d, offsets)
    cov = np.add.reduceat(centred_t * centred_d, offsets)
    defined = (var_t > 0) & (var_d > 0)
    with np.errstate(invalid="ignore", divide="ignore"):
        r = np.where(defined, cov / np.sqrt(var_t * var_d), 0.0)
    return r, var_t, var_d


def _grouped_value_counts(
    group: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Distinct ``(group, value)`` pairs and their multiplicities.

    ``group`` must be sorted ascending and ``values`` must fit in 16 bits
    (ports, windows and TTLs all do).  Packing both into one int64 key lets a
    single flat sort replace a per-group ``np.unique`` loop.  Returns
    ``(g, v, counts)`` with pairs ordered by group then ascending value.
    """
    # group ids are packet-index-bounded (< 2**32 even at Merit scale), so
    # group << 16 stays well inside int64.
    key = (group.astype(np.int64) << 16) | values.astype(np.int64)  # repro-lint: disable=RPR011
    key.sort()
    first = np.empty(key.size, dtype=bool)
    first[0] = True
    first[1:] = key[1:] != key[:-1]
    starts = np.flatnonzero(first)
    run_counts = np.diff(np.append(starts, key.size))
    uniq = key[starts]
    return uniq >> 16, uniq & 0xFFFF, run_counts


def _first_max_per_group(
    g: np.ndarray, v: np.ndarray, cnts: np.ndarray
) -> np.ndarray:
    """Per group, the value with the highest count; smallest value on ties.

    Matches the ``np.unique`` + ``np.argmax`` idiom of the reference
    implementation (``argmax`` returns the *first* maximum, and ``unique``
    sorts values ascending).  Every group id must be present in ``g``.
    """
    by = np.lexsort((-cnts, g))  # stable: ties keep ascending-value order
    gb = g[by]
    firsts = np.flatnonzero(np.concatenate(([True], gb[1:] != gb[:-1])))
    return v[by[firsts]]


def _grouped_mode(
    group: np.ndarray, values: np.ndarray, n_groups: int
) -> np.ndarray:
    """Modal value of each group (ties break to the smallest value)."""
    g, v, cnts = _grouped_value_counts(group, values)
    assert g[-1] == n_groups - 1 or n_groups == 0
    return _first_max_per_group(g, v, cnts)


def _grouped_port_profile(
    group: np.ndarray, ports: np.ndarray, n_groups: int
) -> Tuple[List[np.ndarray], np.ndarray]:
    """Sorted distinct-port set and most-frequent port of each group.

    ``port_sets[i]`` is ascending int64, exactly what ``np.unique`` would
    return for group ``i``'s ports; ``primary[i]`` is its highest-count port
    with ties broken to the smallest, as in the reference implementation.
    """
    g, v, cnts = _grouped_value_counts(group, ports)
    splits = np.flatnonzero(g[1:] != g[:-1]) + 1
    port_sets = np.split(v, splits)
    return port_sets, _first_max_per_group(g, v, cnts)


def score_sessions(
    times: np.ndarray,
    dsts: np.ndarray,
    offsets: np.ndarray,
    counts: np.ndarray,
    criteria: CampaignCriteria,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-session ``(start, end, sequential, internet_rate)`` arrays.

    ``times``/``dsts`` hold the time-ordered packets of all sessions back to
    back (``dsts`` already as float64); ``offsets``/``counts`` delimit the
    sessions.  Every statistic is segment-local — nothing crosses session
    boundaries — so scoring the same session in a different grouping (the
    whole capture at once, or window-by-window as sessions finalise in
    ``repro.stream``) yields bit-identical values.  Both the batch and the
    incremental identifier go through this function for exactly that reason.
    """
    start = times[offsets]
    end = times[offsets + counts - 1]
    d_min = np.minimum.reduceat(dsts, offsets)
    d_max = np.maximum.reduceat(dsts, offsets)
    r, var_t, var_d = _session_correlation(times, dsts, offsets, counts)
    correlated = (var_t > 0) & (var_d > 0)

    sequential = (
        (counts >= SEQUENTIAL_MIN_PACKETS)
        & correlated
        & (np.abs(r) >= SEQUENTIAL_CORR_THRESHOLD)
    )

    # Random-permutation model: telescope-fraction extrapolation, 1 s floor.
    rate_random = criteria.internet_rate(counts / np.maximum(end - start, 1.0))
    # Sequential model: address-space velocity over the crossing, with only
    # a numerical duration floor (sub-second crossings are legitimate).
    span = d_max - d_min + 1.0
    monitored_in_span = criteria.telescope_size * np.minimum(
        1.0, span / criteria.telescope_extent
    )
    seq_defined = (span > 1.0) & (monitored_in_span >= 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        rate_sweep = (
            counts * span / (monitored_in_span * np.maximum(end - start, 1e-3))
        )
    rate_sweep = np.where(seq_defined, rate_sweep, rate_random)
    rate = np.where(sequential, rate_sweep, rate_random)

    # Burst re-examination: implausibly fast "random" sessions whose
    # time↔address correlation is weak but present are reclassified as
    # sweeps crossing faster than the timestamp jitter.
    burst = (
        ~sequential
        & (rate > BURST_SUSPECT_RATE_PPS)
        & correlated
        & (np.abs(r) >= BURST_SUSPECT_CORR)
    )
    sequential = sequential | burst
    rate = np.where(burst, rate_sweep, rate)
    return start, end, sequential, rate


def identify_scans(
    batch: PacketBatch,
    criteria: Optional[CampaignCriteria] = None,
    fingerprinter: Optional[ToolFingerprinter] = None,
) -> ScanTable:
    """Bundle a packet batch into observed scans (§3.4) and fingerprint them.

    Sessions failing the distinct-destination or rate thresholds are dropped
    (they are background noise, not Internet-wide scans).

    This is the analysis hot path, so the per-source Python loop of the
    original implementation (kept as :func:`identify_scans_reference`, the
    executable spec) is replaced by array passes: one lexsort builds the
    session table, `np.add.reduceat`-style grouped reductions compute every
    per-session statistic, and Python-level work remains only for the scans
    that survive all thresholds (port sets, header modes, fingerprinting).
    """
    criteria = criteria if criteria is not None else CampaignCriteria()
    fingerprinter = fingerprinter if fingerprinter is not None else ToolFingerprinter()
    if len(batch) == 0:
        return ScanTable.empty()

    # -- session table: one lexsort, boundaries where source or gap breaks --
    order = np.lexsort((batch.time, batch.src_ip))
    src_s = batch.src_ip[order]
    time_s = batch.time[order]
    n = order.size
    breaks = np.empty(n, dtype=bool)
    breaks[0] = True
    breaks[1:] = (src_s[1:] != src_s[:-1]) | (
        (time_s[1:] - time_s[:-1]) > criteria.expiry_s
    )
    bounds = np.flatnonzero(breaks)
    session_ends = np.append(bounds[1:], n)
    counts = session_ends - bounds
    n_sessions = bounds.size

    # -- cheap prefilter: a session with < min_distinct_dsts packets cannot
    # have enough distinct destinations.  This alone drops the long tail of
    # background sources before any per-session work happens.
    candidate = counts >= criteria.min_distinct_dsts
    if not np.any(candidate):
        return ScanTable.empty()

    session_of_packet = np.repeat(np.arange(n_sessions), counts)
    cand_packets = candidate[session_of_packet]
    cand_ids = np.flatnonzero(candidate)
    c_counts = counts[cand_ids]
    c_offsets = np.concatenate(([0], np.cumsum(c_counts)[:-1]))

    # -- distinct destinations per candidate session (grouped unique count).
    # A packed (session, dst) uint64 single-key sort is several times faster
    # than the equivalent two-pass lexsort on large captures.
    sub_session = session_of_packet[cand_packets]
    sub_dst = batch.dst_ip[order][cand_packets]
    # Session ids are bounded by the capture's packet count (< 2**32), so
    # session << 32 | dst cannot wrap the uint64 key.
    packed = (sub_session.astype(np.uint64) << np.uint64(32)) | sub_dst.astype(  # repro-lint: disable=RPR011
        np.uint64
    )
    packed.sort()
    first = np.empty(packed.size, dtype=bool)
    first[0] = True
    first[1:] = packed[1:] != packed[:-1]
    distinct_all = np.bincount(
        (packed[first] >> np.uint64(32)).astype(np.intp), minlength=n_sessions
    )
    distinct_c = distinct_all[cand_ids]
    keep = distinct_c >= criteria.min_distinct_dsts
    if not np.any(keep):
        return ScanTable.empty()

    # -- per-session statistics over candidate packets (shared scorer) -----
    t_c = time_s[cand_packets]
    d_c = sub_dst.astype(np.float64)
    start_c, end_c, sequential, rate = score_sessions(
        t_c, d_c, c_offsets, c_counts, criteria
    )

    keep &= rate >= criteria.min_rate_pps
    if not np.any(keep):
        return ScanTable.empty()

    # -- survivor tail: grouped passes for ports/modes, a narrow Python
    # loop only for tool fingerprinting (bounded by its sample limit).
    kept = np.flatnonzero(keep)
    kept_sessions = cand_ids[kept]
    seg_counts = counts[kept_sessions]
    seg_offsets = np.concatenate(([0], np.cumsum(seg_counts)))
    # Concatenated original-batch indices of every survivor packet, grouped
    # per scan and time-ordered within each group.
    flat = np.repeat(
        bounds[kept_sessions] - seg_offsets[:-1], seg_counts
    ) + np.arange(seg_offsets[-1])
    orig = order[flat]
    scan_of = np.repeat(np.arange(kept.size), seg_counts)

    port_sets, primary = _grouped_port_profile(
        scan_of, batch.dst_port[orig], kept.size
    )
    # Header-quirk modes use each scan's first 64 packets, like the
    # reference implementation.
    head_counts = np.minimum(seg_counts, 64)
    head_flat = np.repeat(
        seg_offsets[:-1] - np.concatenate(([0], np.cumsum(head_counts)[:-1])),
        head_counts,
    ) + np.arange(int(head_counts.sum()))
    head_orig = orig[head_flat]
    head_scan = np.repeat(np.arange(kept.size), head_counts)
    window_mode = _grouped_mode(head_scan, batch.window[head_orig], kept.size)
    ttl_mode = _grouped_mode(head_scan, batch.ttl[head_orig], kept.size)

    tool_list: List[Tool] = []
    match_list: List[float] = []
    limit = fingerprinter.sample_limit
    for i in range(kept.size):
        segment = orig[seg_offsets[i]:seg_offsets[i] + min(seg_counts[i], limit)]
        verdict = fingerprinter.fingerprint_arrays(
            batch.ip_id[segment], batch.seq[segment], batch.dst_ip[segment],
            batch.dst_port[segment], batch.src_port[segment],
        )
        tool_list.append(verdict.tool)
        match_list.append(verdict.match_fraction)

    return ScanTable(
        src_ip=src_s[bounds[cand_ids[kept]]].astype(np.uint32),
        start=start_c[kept].astype(float),
        end=end_c[kept].astype(float),
        packets=c_counts[kept].astype(np.int64),
        distinct_dsts=distinct_c[kept].astype(np.int64),
        port_sets=port_sets,
        primary_port=primary.astype(np.uint16),
        tool=np.array(tool_list, dtype=object),
        match_fraction=np.array(match_list, dtype=float),
        speed_pps=rate[kept].astype(float),
        coverage=np.minimum(
            1.0, distinct_c[kept] / criteria.telescope_size
        ).astype(float),
        sequential=sequential[kept],
        window_mode=window_mode.astype(np.uint16),
        ttl_mode=ttl_mode.astype(np.uint8),
    )


def identify_scans_reference(
    batch: PacketBatch,
    criteria: Optional[CampaignCriteria] = None,
    fingerprinter: Optional[ToolFingerprinter] = None,
) -> ScanTable:
    """Per-session reference implementation of :func:`identify_scans`.

    The readable executable spec: one Python iteration per source session,
    calling :func:`detect_sequential` / :func:`estimate_internet_rate`
    directly.  The vectorised ``identify_scans`` is regression-tested
    against this on simulated captures; prefer it for anything hot.
    """
    criteria = criteria if criteria is not None else CampaignCriteria()
    fingerprinter = fingerprinter if fingerprinter is not None else ToolFingerprinter()

    src_list: List[int] = []
    start_list: List[float] = []
    end_list: List[float] = []
    packets_list: List[int] = []
    dsts_list: List[int] = []
    port_sets: List[np.ndarray] = []
    primary_list: List[int] = []
    tool_list: List[Tool] = []
    match_list: List[float] = []
    speed_list: List[float] = []
    coverage_list: List[float] = []
    sequential_list: List[bool] = []
    window_list: List[int] = []
    ttl_list: List[int] = []

    for src, indices in iter_source_sessions(batch, criteria.expiry_s):
        n = indices.size
        if n < criteria.min_distinct_dsts:
            continue
        dst = batch.dst_ip[indices]
        distinct = int(np.unique(dst).size)
        if distinct < criteria.min_distinct_dsts:
            continue
        times = batch.time[indices]
        ports = batch.dst_port[indices]
        unique_ports, port_counts = np.unique(ports, return_counts=True)
        sequential = detect_sequential(times, dst)
        rate = estimate_internet_rate(
            times, dst, int(unique_ports.size), criteria, sequential
        )
        if not sequential and rate > BURST_SUSPECT_RATE_PPS:
            # Implausibly fast for random targeting — very likely a fast
            # sweep whose crossing burst is shorter than timestamp jitter,
            # leaving the time↔address correlation weak but still present.
            dst_f = dst.astype(np.float64)
            if dst_f.std() > 0 and times.std() > 0:
                r = float(np.corrcoef(times, dst_f)[0, 1])
                if abs(r) >= BURST_SUSPECT_CORR:
                    sequential = True
                    rate = estimate_internet_rate(
                        times, dst, int(unique_ports.size), criteria, True
                    )
        if rate < criteria.min_rate_pps:
            continue

        verdict = fingerprinter.fingerprint_arrays(
            batch.ip_id[indices], batch.seq[indices], dst, ports,
            batch.src_port[indices],
        )

        src_list.append(src)
        start_list.append(float(times[0]))
        end_list.append(float(times[-1]))
        packets_list.append(int(n))
        dsts_list.append(distinct)
        port_sets.append(unique_ports.astype(np.int64))
        primary_list.append(int(unique_ports[int(np.argmax(port_counts))]))
        tool_list.append(verdict.tool)
        match_list.append(verdict.match_fraction)
        speed_list.append(rate)
        coverage_list.append(min(1.0, distinct / criteria.telescope_size))
        sequential_list.append(sequential)
        head = indices[:64]
        windows, window_counts = np.unique(batch.window[head], return_counts=True)
        window_list.append(int(windows[int(np.argmax(window_counts))]))
        ttls, ttl_counts = np.unique(batch.ttl[head], return_counts=True)
        ttl_list.append(int(ttls[int(np.argmax(ttl_counts))]))

    return ScanTable(
        src_ip=np.array(src_list, dtype=np.uint32),
        start=np.array(start_list, dtype=float),
        end=np.array(end_list, dtype=float),
        packets=np.array(packets_list, dtype=np.int64),
        distinct_dsts=np.array(dsts_list, dtype=np.int64),
        port_sets=port_sets,
        primary_port=np.array(primary_list, dtype=np.uint16),
        tool=np.array(tool_list, dtype=object),
        match_fraction=np.array(match_list, dtype=float),
        speed_pps=np.array(speed_list, dtype=float),
        coverage=np.array(coverage_list, dtype=float),
        sequential=np.array(sequential_list, dtype=bool),
        window_mode=np.array(window_list, dtype=np.uint16),
        ttl_mode=np.array(ttl_list, dtype=np.uint8),
    )
