"""The paper's analysis pipeline — this package is the primary contribution.

Workflow: a telescope capture goes through :func:`analyze_period` (or
:func:`analyze_simulation`), which identifies scan campaigns (§3.4),
fingerprints tools (§3.3) and enriches origins; the sibling modules then
compute every table and figure of the evaluation.
"""

from repro.core.campaigns import (
    CampaignCriteria,
    ScanTable,
    identify_scans,
    iter_source_sessions,
)
from repro.core.fingerprints import (
    FingerprintVerdict,
    ToolFingerprinter,
    masscan_match,
    mirai_match,
    nmap_pair_match,
    unicorn_pair_match,
    zmap_match,
)
from repro.core.pipeline import (
    EXCLUDED_STUDY_PORTS,
    PeriodAnalysis,
    analyze_period,
    analyze_simulation,
)
from repro.core.ecosystem import (
    GrowthReport,
    PortShare,
    YearSummary,
    common_tool_share,
    growth_report,
    summarize_period,
    top_ports_by_packets,
    top_ports_by_scans,
    top_ports_by_sources,
)
from repro.core.ports_analysis import (
    PortSpaceCoverage,
    PortsPerSourceSummary,
    VerticalScanCounts,
    port_pair_affinity,
    port_space_coverage,
    ports_per_source,
    ports_per_source_summary,
    scan_port_intensity,
    service_density_correlation,
    tool_port_footprint,
    speed_ports_correlation,
    vertical_scan_counts,
)
from repro.core.volatility import (
    VolatilitySummary,
    dense_weekly_counts,
    summaries_from_counts,
    volatility_summary,
    weekly_change_factors,
    weekly_slash16_counts,
    weeks_in_period,
)
from repro.core.events import (
    EventResponse,
    event_response,
    multi_event_responses,
    port_daily_packets,
)
from repro.core.speed import (
    SpeedStats,
    SpeedTrend,
    nmap_faster_than_masscan,
    overall_speed_trend,
    speed_stats,
    speed_stats_by_tool,
    tool_speed_trend,
    top_k_mean_speed,
    top_k_speed_trend,
)
from repro.core.coverage import (
    CollaborationCluster,
    CoverageMode,
    CoverageStats,
    collaborating_subnets,
    coverage_by_tool,
    coverage_modes,
    coverage_stats,
)
from repro.core.recurrence import (
    RecurrenceStats,
    daily_cadence_sources,
    institutional_daily_scanners,
    recurrence_by_type,
    recurrence_stats,
    recurrence_stats_arrays,
    split_scan_times,
)
from repro.core.classification import (
    TypeCapability,
    TypeShares,
    capability_by_type,
    institutional_speed_ratio,
    port_type_distribution,
    type_shares,
)
from repro.core.institutions import (
    KnownScannerShare,
    OrgFootprint,
    known_scanner_share,
    org_footprints,
    port_coverage_comparison,
)
from repro.core.churn import (
    ChurnFit,
    TYPICAL_LIFETIME_DAYS,
    correct_source_count,
    cumulative_distinct_sources,
    expected_distinct_sources,
    first_appearance_days,
    fit_population,
    fit_population_by_type,
    fit_population_curve,
)
from repro.core.trends import (
    CLASSIC_PORTS,
    ConcentrationReport,
    IntensityReport,
    TrendLine,
    scan_intensity,
    classic_port_share_trend,
    concentration_from_packets,
    country_distribution_entropy,
    entropy_from_counts,
    intensity_from_arrays,
    metric_trend,
    port_distribution_entropy,
    port_rank_stability,
    port_share,
    traffic_concentration,
)
from repro.core.report import (
    ChurnReport,
    PaperReport,
    RecurrenceReport,
    TrendsReport,
    paper_report,
)
from repro.core.collaboration import (
    BiasReport,
    DistributedCampaign,
    MergedCampaign,
    MergeEvaluation,
    detect_distributed_campaigns,
    evaluate_merging,
    merge_collaborative_scans,
    single_source_bias,
)
from repro.core.blocklist import (
    BlocklistWindowResult,
    InstitutionalFilterResult,
    blocklist_effectiveness,
    institutional_filter_effectiveness,
)
from repro.core.geography import (
    PortOriginBias,
    biased_port_counts_by_country,
    country_shares,
    port_country_share,
    port_origin_biases,
    space_normalised_shares,
    tool_country_shares,
)

__all__ = [
    # campaigns
    "CampaignCriteria", "ScanTable", "identify_scans", "iter_source_sessions",
    # fingerprints
    "FingerprintVerdict", "ToolFingerprinter", "masscan_match", "mirai_match",
    "nmap_pair_match", "unicorn_pair_match", "zmap_match",
    # pipeline
    "EXCLUDED_STUDY_PORTS", "PeriodAnalysis", "analyze_period", "analyze_simulation",
    # ecosystem
    "GrowthReport", "PortShare", "YearSummary", "common_tool_share",
    "growth_report", "summarize_period", "top_ports_by_packets",
    "top_ports_by_scans", "top_ports_by_sources",
    # ports
    "PortSpaceCoverage", "PortsPerSourceSummary", "VerticalScanCounts",
    "port_pair_affinity", "port_space_coverage", "ports_per_source",
    "ports_per_source_summary", "scan_port_intensity",
    "service_density_correlation", "speed_ports_correlation",
    "tool_port_footprint", "vertical_scan_counts",
    # volatility
    "VolatilitySummary", "dense_weekly_counts", "summaries_from_counts",
    "volatility_summary", "weekly_change_factors", "weeks_in_period",
    "weekly_slash16_counts",
    # events
    "EventResponse", "event_response", "multi_event_responses",
    "port_daily_packets",
    # speed
    "SpeedStats", "SpeedTrend", "nmap_faster_than_masscan",
    "overall_speed_trend", "speed_stats", "speed_stats_by_tool",
    "tool_speed_trend", "top_k_mean_speed", "top_k_speed_trend",
    # coverage
    "CollaborationCluster", "CoverageMode", "CoverageStats",
    "collaborating_subnets", "coverage_by_tool", "coverage_modes",
    "coverage_stats",
    # recurrence
    "RecurrenceStats", "daily_cadence_sources",
    "institutional_daily_scanners", "recurrence_by_type",
    "recurrence_stats", "recurrence_stats_arrays", "split_scan_times",
    # classification
    "TypeCapability", "TypeShares", "capability_by_type",
    "institutional_speed_ratio", "port_type_distribution", "type_shares",
    # institutions
    "KnownScannerShare", "OrgFootprint", "known_scanner_share",
    "org_footprints", "port_coverage_comparison",
    # churn
    "ChurnFit", "TYPICAL_LIFETIME_DAYS", "correct_source_count",
    "cumulative_distinct_sources", "expected_distinct_sources",
    "first_appearance_days", "fit_population", "fit_population_by_type",
    "fit_population_curve",
    # trends
    "CLASSIC_PORTS", "ConcentrationReport", "IntensityReport", "TrendLine",
    "scan_intensity",
    "classic_port_share_trend", "country_distribution_entropy",
    "metric_trend", "port_distribution_entropy", "port_rank_stability",
    "port_share", "traffic_concentration", "concentration_from_packets",
    "entropy_from_counts", "intensity_from_arrays",
    # report
    "ChurnReport", "PaperReport", "RecurrenceReport", "TrendsReport",
    "paper_report",
    # collaboration
    "BiasReport", "DistributedCampaign", "MergedCampaign", "MergeEvaluation",
    "detect_distributed_campaigns", "evaluate_merging",
    "merge_collaborative_scans", "single_source_bias",
    # blocklist
    "BlocklistWindowResult", "InstitutionalFilterResult",
    "blocklist_effectiveness", "institutional_filter_effectiveness",
    # geography
    "PortOriginBias", "biased_port_counts_by_country", "country_shares",
    "port_country_share", "port_origin_biases", "space_normalised_shares",
    "tool_country_shares",
]
