"""Blocklist-effectiveness analysis (§4.4 / §6.6 implications).

The paper argues that blocklists of scanning IPs go stale almost
immediately: non-institutional sources are burned after one campaign, so by
the time a list is distributed its entries have vanished.  This module
simulates exactly that workflow over a capture — build a list from one
window, measure how much of the next window's traffic it would have blocked
— and contrasts it with the one list that *does* keep working: the
acknowledged (institutional) scanners, whose sources are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import PeriodAnalysis
from repro.telescope.packet import PacketBatch

_DAY_S = 86_400.0


@dataclass(frozen=True)
class BlocklistWindowResult:
    """Effectiveness of a list built in one window, applied to the next."""

    build_window: Tuple[float, float]
    apply_window: Tuple[float, float]
    list_size: int
    sources_blocked: int            # next-window sources on the list
    source_hit_rate: float          # fraction of next-window sources blocked
    packet_hit_rate: float          # fraction of next-window packets blocked


def blocklist_effectiveness(
    batch: PacketBatch,
    build_days: float = 7.0,
    lag_days: float = 0.0,
) -> List[BlocklistWindowResult]:
    """Slide a build/apply window pair over the capture.

    For each consecutive pair of ``build_days`` windows (optionally
    separated by a distribution ``lag_days``), collect the sources observed
    in the build window and measure what fraction of the following window's
    sources and packets they account for.
    """
    if build_days <= 0:
        raise ValueError("build_days must be positive")
    if lag_days < 0:
        raise ValueError("lag_days must be non-negative")
    if len(batch) == 0:
        return []
    window = build_days * _DAY_S
    lag = lag_days * _DAY_S
    t_end = float(batch.time.max())
    results: List[BlocklistWindowResult] = []
    start = float(batch.time.min())
    while start + window + lag + window <= t_end + 1.0:
        build = batch.time_window(start, start + window)
        apply_start = start + window + lag
        apply = batch.time_window(apply_start, apply_start + window)
        if len(build) and len(apply):
            listed = np.unique(build.src_ip)
            apply_sources = np.unique(apply.src_ip)
            blocked_sources = np.isin(apply_sources, listed)
            blocked_packets = np.isin(apply.src_ip, listed)
            results.append(BlocklistWindowResult(
                build_window=(start, start + window),
                apply_window=(apply_start, apply_start + window),
                list_size=int(listed.size),
                sources_blocked=int(blocked_sources.sum()),
                source_hit_rate=float(blocked_sources.mean()),
                packet_hit_rate=float(blocked_packets.mean()),
            ))
        start += window
    return results


@dataclass(frozen=True)
class InstitutionalFilterResult:
    """Effect of filtering only the acknowledged-scanner sources."""

    list_size: int
    packet_hit_rate: float
    source_hit_rate: float


def institutional_filter_effectiveness(
    analysis: PeriodAnalysis,
    build_days: float = 7.0,
) -> InstitutionalFilterResult:
    """Build an institutional-only list from the first window and apply it
    to the remainder of the period.

    Unlike the general blocklist, this one stays effective: institutional
    sources are stable and re-scan daily (§6.6), so a one-week-old list
    still removes a large share of traffic.
    """
    if build_days <= 0:
        raise ValueError("build_days must be positive")
    batch = analysis.study_batch
    if len(batch) == 0:
        return InstitutionalFilterResult(0, 0.0, 0.0)
    window = build_days * _DAY_S
    t0 = float(batch.time.min())
    build = batch.time_window(t0, t0 + window)
    rest = batch.where(batch.time >= t0 + window)
    if len(build) == 0 or len(rest) == 0:
        return InstitutionalFilterResult(0, 0.0, 0.0)

    feed = analysis.classifier.feed
    build_sources = np.unique(build.src_ip)
    listed = build_sources[feed.is_known(build_sources)]
    rest_sources = np.unique(rest.src_ip)
    return InstitutionalFilterResult(
        list_size=int(listed.size),
        packet_hit_rate=float(np.isin(rest.src_ip, listed).mean()),
        source_hit_rate=float(np.isin(rest_sources, listed).mean()),
    )
