"""Scan-speed analyses (§6.3, parts of Figure 7).

Speeds are Internet-wide probe rates extrapolated from telescope hit rates
(§3.4's model); the module provides per-tool statistics, cross-year trends
(overall decline, NMap's mild increase, the top-100 acceleration), and the
threshold fractions quoted in §6.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.stats import pearson_r, quantiles
from repro.core.campaigns import ScanTable
from repro.scanners.base import Tool

#: 1 Gbps expressed as SYN packets/second (60-byte frames).
GBPS_IN_PPS = 1e9 / (60 * 8)


@dataclass(frozen=True)
class SpeedStats:
    """Distributional statistics for one group of scans."""

    scans: int
    median_pps: float
    mean_pps: float
    p90_pps: float
    max_pps: float
    fraction_over_1000pps: float
    fraction_over_1gbps: float


def speed_stats(speed_pps: np.ndarray) -> SpeedStats:
    """Summarise a speed sample; raises on empty input."""
    if speed_pps.size == 0:
        raise ValueError("no scans to summarise")
    med, p90 = quantiles(speed_pps, [0.5, 0.9])
    return SpeedStats(
        scans=int(speed_pps.size),
        median_pps=float(med),
        mean_pps=float(speed_pps.mean()),
        p90_pps=float(p90),
        max_pps=float(speed_pps.max()),
        fraction_over_1000pps=float(np.mean(speed_pps > 1000.0)),
        fraction_over_1gbps=float(np.mean(speed_pps > GBPS_IN_PPS)),
    )


def speed_stats_by_tool(scans: ScanTable) -> Dict[Tool, SpeedStats]:
    """Per-tool speed statistics (§6.3's tool comparison)."""
    out: Dict[Tool, SpeedStats] = {}
    tools = scans.tool.astype(str)
    for name in sorted(set(tools.tolist())):
        mask = tools == name
        out[Tool(name)] = speed_stats(scans.speed_pps[mask])
    return out


def top_k_mean_speed(scans: ScanTable, k: int = 100) -> float:
    """Mean speed of the ``k`` fastest scans (NaN when none)."""
    if len(scans) == 0:
        return float("nan")
    if k < 1:
        raise ValueError("k must be >= 1")
    fastest = np.sort(scans.speed_pps)[-k:]
    return float(fastest.mean())


@dataclass(frozen=True)
class SpeedTrend:
    """A Pearson trend of some speed statistic over the years."""

    years: Tuple[int, ...]
    values: Tuple[float, ...]
    r: float
    p: float

    @property
    def increasing(self) -> bool:
        return self.r > 0


def _trend(yearly: Mapping[int, float]) -> SpeedTrend:
    years = tuple(sorted(yearly))
    values = tuple(float(yearly[y]) for y in years)
    r, p = pearson_r(years, values)
    return SpeedTrend(years=years, values=values, r=r, p=p)


def overall_speed_trend(tables: Mapping[int, ScanTable]) -> SpeedTrend:
    """Trend of the median scan speed across years (paper: decreasing)."""
    yearly = {
        year: float(np.median(t.speed_pps)) for year, t in tables.items() if len(t)
    }
    if len(yearly) < 2:
        raise ValueError("trend needs at least two years with scans")
    return _trend(yearly)


def tool_speed_trend(tables: Mapping[int, ScanTable], tool: Tool) -> SpeedTrend:
    """Per-tool median-speed trend (NMap is the only increasing one, §6.3)."""
    yearly: Dict[int, float] = {}
    for year, table in tables.items():
        mask = table.tool.astype(str) == tool.value
        if np.any(mask):
            yearly[year] = float(np.median(table.speed_pps[mask]))
    if len(yearly) < 2:
        raise ValueError(f"trend for {tool} needs at least two years with scans")
    return _trend(yearly)


def top_k_speed_trend(tables: Mapping[int, ScanTable], k: int = 100) -> SpeedTrend:
    """Trend of the top-``k`` mean speed (paper: increasing, R = 0.356)."""
    yearly = {
        year: top_k_mean_speed(t, k) for year, t in tables.items() if len(t) >= 1
    }
    if len(yearly) < 2:
        raise ValueError("trend needs at least two years with scans")
    return _trend(yearly)


def nmap_faster_than_masscan(scans: ScanTable) -> Optional[bool]:
    """§6.3's surprise: is the median NMap scan faster than Masscan's?

    ``None`` when either tool is absent from the table.
    """
    tools = scans.tool.astype(str)
    nmap = scans.speed_pps[tools == Tool.NMAP.value]
    masscan = scans.speed_pps[tools == Tool.MASSCAN.value]
    if nmap.size == 0 or masscan.size == 0:
        return None
    return bool(np.median(nmap) > np.median(masscan))
