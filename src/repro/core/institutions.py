"""Known-scanner (institutional) analyses (§6.8, Figures 8–10, Appendix A).

Per acknowledged organisation: which ports it scanned, how much of the port
range that covers, and how its footprint compares to the rest of the
ecosystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import PeriodAnalysis

FULL_PORT_RANGE = 65_536


@dataclass(frozen=True)
class OrgFootprint:
    """One organisation's observed scanning footprint."""

    organisation: str
    sources: int
    scans: int
    packets: int
    distinct_ports: int
    port_coverage: float           # distinct_ports / 65536
    ports: np.ndarray              # sorted distinct ports observed

    @property
    def covers_full_range(self) -> bool:
        """Did the organisation touch (almost) every TCP port?"""
        return self.port_coverage >= 0.99


def org_footprints(analysis: PeriodAnalysis) -> Dict[str, OrgFootprint]:
    """Figure 8/9/10 data: per-organisation port footprints.

    Organisations come from the known-scanner feed; their packets are
    gathered from the *raw* capture so that port coverage is not clipped by
    the scan-identification thresholds.
    """
    batch = analysis.study_batch
    feed = analysis.classifier.feed
    if len(batch) == 0:
        return {}
    orgs = feed.organisation_of(batch.src_ip)
    known_mask = orgs != ""

    scans = analysis.study_scans
    scan_orgs = np.array([str(o) for o in scans.organisation])

    out: Dict[str, OrgFootprint] = {}
    for org in sorted(set(orgs[known_mask].tolist())):
        mask = orgs == org
        ports = np.unique(batch.dst_port[mask]).astype(np.int64)
        sources = int(np.unique(batch.src_ip[mask]).size)
        n_scans = int(np.count_nonzero(scan_orgs == org))
        out[str(org)] = OrgFootprint(
            organisation=str(org),
            sources=sources,
            scans=n_scans,
            packets=int(mask.sum()),
            distinct_ports=int(ports.size),
            port_coverage=float(ports.size / FULL_PORT_RANGE),
            ports=ports,
        )
    return out


@dataclass(frozen=True)
class KnownScannerShare:
    """Appendix A's aggregate: known scanners vs the whole capture."""

    organisations: int
    source_share: float      # fraction of distinct sources that are known
    packet_share: float      # fraction of telescope traffic from known orgs


def known_scanner_share(analysis: PeriodAnalysis) -> KnownScannerShare:
    """The ~0.4–0.6% of sources / ~51% of traffic statistic (Appendix A)."""
    batch = analysis.study_batch
    feed = analysis.classifier.feed
    if len(batch) == 0:
        return KnownScannerShare(0, 0.0, 0.0)
    known_packets = feed.is_known(batch.src_ip)
    unique_sources = np.unique(batch.src_ip)
    known_sources = feed.is_known(unique_sources)
    orgs = feed.organisation_of(unique_sources[known_sources])
    return KnownScannerShare(
        organisations=int(len(set(orgs.tolist()))),
        source_share=float(known_sources.mean()),
        packet_share=float(known_packets.mean()),
    )


def port_coverage_comparison(
    footprints_a: Mapping[str, OrgFootprint],
    footprints_b: Mapping[str, OrgFootprint],
) -> Dict[str, Tuple[float, float]]:
    """Year-over-year port-coverage comparison (Figures 9 vs 10).

    Returns org → (coverage_a, coverage_b) for organisations present in
    either year (0.0 where absent).
    """
    orgs = sorted(set(footprints_a) | set(footprints_b))
    return {
        org: (
            footprints_a[org].port_coverage if org in footprints_a else 0.0,
            footprints_b[org].port_coverage if org in footprints_b else 0.0,
        )
        for org in orgs
    }
