"""Scanner-type breakdowns (Table 2, Figures 5 and 7).

Splits the observed traffic by scanner origin class — hosting, enterprise,
institutional, residential, unknown — and reproduces:

* Table 2: each class's share of unique sources, scans and packets;
* Figure 5: the class mix over the most-targeted ports;
* Figure 7: speed and coverage per class (institutional scanners ~92×
  faster than the average scanner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.campaigns import ScanTable
from repro.core.pipeline import PeriodAnalysis
from repro.core.speed import SpeedStats, speed_stats
from repro.core.coverage import CoverageStats, coverage_stats
from repro.enrichment.types import SCANNER_TYPE_ORDER, ScannerType


@dataclass(frozen=True)
class TypeShares:
    """Table 2 row: one scanner type's share of sources, scans and packets."""

    scanner_type: ScannerType
    sources: float
    scans: float
    packets: float


def _scan_type_values(scans: ScanTable) -> np.ndarray:
    return np.array([str(t) if t is not None else "" for t in scans.scanner_type])


def type_shares(analysis: PeriodAnalysis) -> List[TypeShares]:
    """Table 2: per-type shares of unique sources, scans and packets.

    *Sources* counts every distinct source IP in the capture (including
    sub-threshold background sources — the paper counts "unique IP addresses
    recorded"); scans and packets come from the identified-scan table and
    the raw capture respectively.
    """
    batch = analysis.study_batch
    scans = analysis.study_scans
    classifier = analysis.classifier

    unique_sources = np.unique(batch.src_ip) if len(batch) else np.array([], dtype=np.uint32)
    source_types = (
        classifier.classify_array(unique_sources)
        if unique_sources.size else np.array([], dtype=object)
    )
    source_type_values = np.array([str(t) for t in source_types])

    # Packets classified by their (unique) source's type via an index join.
    if len(batch):
        idx = np.searchsorted(unique_sources, batch.src_ip)
        packet_type_values = source_type_values[idx]
    else:
        packet_type_values = np.array([], dtype=object)

    scan_type_values = _scan_type_values(scans)

    n_sources = max(unique_sources.size, 1)
    n_scans = max(len(scans), 1)
    n_packets = max(len(batch), 1)

    out: List[TypeShares] = []
    for stype in SCANNER_TYPE_ORDER:
        out.append(TypeShares(
            scanner_type=stype,
            sources=float(np.count_nonzero(source_type_values == stype.value) / n_sources),
            scans=float(np.count_nonzero(scan_type_values == stype.value) / n_scans),
            packets=float(np.count_nonzero(packet_type_values == stype.value) / n_packets),
        ))
    return out


def port_type_distribution(
    analysis: PeriodAnalysis, top_n: int = 15
) -> Dict[int, Dict[ScannerType, float]]:
    """Figure 5: scanner-type mix per top-targeted port.

    Ports are ranked by scan count; for each, the share of scans per type.
    """
    scans = analysis.study_scans
    if len(scans) == 0:
        return {}
    type_values = _scan_type_values(scans)

    port_counts: Dict[int, int] = {}
    for ports in scans.port_sets:
        for port in ports.tolist():
            port_counts[port] = port_counts.get(port, 0) + 1
    top_ports = [p for p, _ in sorted(port_counts.items(), key=lambda kv: -kv[1])[:top_n]]

    out: Dict[int, Dict[ScannerType, float]] = {}
    for port in top_ports:
        includes = np.array([
            bool(ports.size) and bool(
                (i := np.searchsorted(ports, port)) < ports.size and ports[i] == port
            )
            for ports in scans.port_sets
        ])
        total = max(int(includes.sum()), 1)
        out[port] = {
            stype: float(np.count_nonzero(includes & (type_values == stype.value)) / total)
            for stype in SCANNER_TYPE_ORDER
        }
    return out


@dataclass(frozen=True)
class TypeCapability:
    """Figure 7 point: speed and coverage behaviour of one scanner type."""

    scanner_type: ScannerType
    speed: SpeedStats
    coverage: CoverageStats


def capability_by_type(analysis: PeriodAnalysis) -> Dict[ScannerType, TypeCapability]:
    """Speed and coverage statistics per scanner type (Figure 7)."""
    scans = analysis.study_scans
    type_values = _scan_type_values(scans)
    out: Dict[ScannerType, TypeCapability] = {}
    for stype in SCANNER_TYPE_ORDER:
        mask = type_values == stype.value
        if not np.any(mask):
            continue
        out[stype] = TypeCapability(
            scanner_type=stype,
            speed=speed_stats(scans.speed_pps[mask]),
            coverage=coverage_stats(scans.coverage[mask]),
        )
    return out


def institutional_speed_ratio(analysis: PeriodAnalysis) -> float:
    """Mean institutional speed over mean non-institutional speed.

    The paper's §6.8: institutions scan "on average 92 times faster than the
    average scanner".  NaN when either group is empty.
    """
    scans = analysis.study_scans
    if len(scans) == 0:
        return float("nan")
    type_values = _scan_type_values(scans)
    inst = scans.speed_pps[type_values == ScannerType.INSTITUTIONAL.value]
    rest = scans.speed_pps[type_values != ScannerType.INSTITUTIONAL.value]
    if inst.size == 0 or rest.size == 0:
        return float("nan")
    return float(inst.mean() / rest.mean())
