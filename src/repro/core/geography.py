"""Geographic origin analyses (§4.2, §5.4, §6.5).

Country shares of scanning activity, per-port origin biases (the "RDP is
scanned from China, HTTPS from the US" findings), and space-normalised
activity (which makes the Netherlands the post-2020 outlier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.campaigns import ScanTable
from repro.core.pipeline import PeriodAnalysis
from repro.enrichment.registry import InternetRegistry
from repro.scanners.base import Tool


def country_shares(
    analysis: PeriodAnalysis, weight: str = "scans"
) -> Dict[str, float]:
    """Country shares of activity, weighted by scans, packets or sources."""
    if weight == "scans":
        scans = analysis.study_scans
        if len(scans) == 0:
            return {}
        values, counts = np.unique(scans.country.astype(str), return_counts=True)
        total = counts.sum()
    elif weight == "packets":
        batch = analysis.study_batch
        if len(batch) == 0:
            return {}
        countries = analysis.classifier.registry.country_of(batch.src_ip)
        values, counts = np.unique(countries, return_counts=True)
        total = counts.sum()
    elif weight == "sources":
        batch = analysis.study_batch
        if len(batch) == 0:
            return {}
        sources = np.unique(batch.src_ip)
        countries = analysis.classifier.registry.country_of(sources)
        values, counts = np.unique(countries, return_counts=True)
        total = counts.sum()
    else:
        raise ValueError("weight must be 'scans', 'packets' or 'sources'")
    return {str(c): float(n / total) for c, n in zip(values, counts)}


@dataclass(frozen=True)
class PortOriginBias:
    """A port whose traffic predominantly originates from one country."""

    port: int
    country: str
    share: float
    packets: int


def port_origin_biases(
    analysis: PeriodAnalysis,
    min_share: float = 0.8,
    min_packets: int = 50,
) -> List[PortOriginBias]:
    """Ports where one country originates at least ``min_share`` of traffic.

    §5.4: China exceeds 80% on 14,444 ports in 2022, the US on 666, Brazil
    on 221 … — this recovers the same structure (scaled to the simulated
    volume, hence the ``min_packets`` floor to suppress one-packet ports).
    """
    if not 0.5 < min_share <= 1.0:
        raise ValueError("min_share must be in (0.5, 1]")
    batch = analysis.study_batch
    if len(batch) == 0:
        return []
    countries = analysis.classifier.registry.country_of(batch.src_ip)
    # Integer-encode countries for a joint (port, country) bincount.
    country_values, country_codes = np.unique(countries, return_inverse=True)
    key = batch.dst_port.astype(np.int64) * len(country_values) + country_codes
    joint = np.bincount(key, minlength=65536 * len(country_values))
    joint = joint.reshape(65536, len(country_values))
    totals = joint.sum(axis=1)
    out: List[PortOriginBias] = []
    eligible = np.flatnonzero(totals >= min_packets)
    for port in eligible:
        row = joint[port]
        top = int(np.argmax(row))
        share = row[top] / totals[port]
        if share >= min_share:
            out.append(PortOriginBias(
                port=int(port),
                country=str(country_values[top]),
                share=float(share),
                packets=int(totals[port]),
            ))
    return out


def biased_port_counts_by_country(
    biases: Sequence[PortOriginBias],
) -> Dict[str, int]:
    """How many >80%-biased ports each country owns (the §5.4 scoreboard)."""
    out: Dict[str, int] = {}
    for bias in biases:
        out[bias.country] = out.get(bias.country, 0) + 1
    return dict(sorted(out.items(), key=lambda kv: -kv[1]))


def tool_country_shares(analysis: PeriodAnalysis, tool: Tool) -> Dict[str, float]:
    """Country mix of one tool's scans (§6.5's tool-geography biases)."""
    scans = analysis.study_scans
    if len(scans) == 0:
        return {}
    mask = scans.tool.astype(str) == tool.value
    if not np.any(mask):
        return {}
    values, counts = np.unique(scans.country[mask].astype(str), return_counts=True)
    total = counts.sum()
    return {str(c): float(n / total) for c, n in zip(values, counts)}


def space_normalised_shares(
    analysis: PeriodAnalysis, weight: str = "scans"
) -> Dict[str, float]:
    """Country activity normalised by allocated address space (§4.2).

    Divides each country's share by its fraction of the registry's allocated
    space; values above 1 mean disproportionate activity (the post-2020
    Netherlands signal).
    """
    shares = country_shares(analysis, weight=weight)
    registry = analysis.classifier.registry
    space: Dict[str, int] = {}
    for record in registry.records:
        space[record.country] = space.get(record.country, 0) + record.block.size
    total_space = sum(space.values())
    out: Dict[str, float] = {}
    for country, share in shares.items():
        country_fraction = space.get(country, 0) / total_space
        if country_fraction > 0:
            out[country] = share / country_fraction
    return dict(sorted(out.items(), key=lambda kv: -kv[1]))


def port_country_share(
    analysis: PeriodAnalysis, port: int, country: str
) -> float:
    """Share of a port's traffic originating from one country (NaN if quiet)."""
    batch = analysis.study_batch
    mask = batch.dst_port == port
    if not np.any(mask):
        return float("nan")
    countries = analysis.classifier.registry.country_of(batch.src_ip[mask])
    return float(np.mean(countries == country))
