"""SARIF 2.1.0 serialisation of lint diagnostics.

One run, one driver (``repro-lint``), one rule entry per registered rule,
one result per diagnostic.  The output is what CI uploads so code-scanning
annotates PRs; keep it stable — ordering is the diagnostics' sort order
and the rule index is the sorted registry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro import __version__
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import RuleRegistry

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def to_sarif(
    diagnostics: Sequence[Diagnostic], registry: RuleRegistry
) -> Dict[str, Any]:
    """Build the SARIF log object for one lint run."""
    rules = registry.rules()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for diag in diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diag.code,
            "level": _LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": diag.line,
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        if diag.code in rule_index:
            result["ruleIndex"] = rule_index[diag.code]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/lint.md"
                        ),
                        "version": __version__,
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {
                                    "text": rule.description
                                },
                                "defaultConfiguration": {
                                    "level": _LEVELS[rule.default_severity]
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    diagnostics: Sequence[Diagnostic], registry: RuleRegistry
) -> str:
    return json.dumps(to_sarif(diagnostics, registry), indent=2, sort_keys=True)
