"""Whole-program analysis pass (pass 1) for the project rules.

:func:`analyze_files` reduces every source file to a serialisable
:class:`ModuleSummary` — symbol table, import graph edges, a conservative
call graph, and an index of the call sites the cross-module rules care
about (``derive_rng`` keys, ``*_SCHEMA_VERSION`` constants, persisted-dict
field sets, ``np.savez``/process-pool submissions, ``PacketBatch`` column
arguments).  :class:`ProjectContext` stitches the summaries into the
whole-program view that the :class:`~repro.lint.engine.ProjectRule`
subclasses (RPR006–RPR009) traverse.

Summaries carry everything pass 2 needs and nothing it does not (no live
ASTs), so they are content-addressed-cached per file — the same blake2b
keying discipline as ``repro.exec.cache.CaptureCache`` — and a warm lint
re-parses only edited files.  Files are summarised in parallel with the
repo's ``--workers`` convention (0 = serial in-process).
"""

from __future__ import annotations

import ast
import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro import __version__
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import (
    REGISTRY,
    FileContext,
    RuleRegistry,
    _relativize,
    apply_warn,
    collect_files,
    is_suppressed,
    parse_suppressions,
)
from repro.lint._ast import BATCH_COLUMNS, import_aliases, resolve
from repro.lint.concurrency import (
    ConcurrencyAnalysis,
    ConcurrencyExtractor,
    ConcurrencyFunction,
    FunctionConcurrency,
    LockInfo,
    concurrency_fingerprint,
    lock_kind,
)
from repro.lint.typeflow import (
    FunctionTypeflow,
    TypeflowAnalysis,
    TypeflowExtractor,
    TypeflowFunction,
    lattice_fingerprint,
)

#: Bump when the summary layout changes; every cache entry then misses.
SUMMARY_SCHEMA_VERSION = 5

#: Canonical names whose call constructs a process pool.
_POOL_CONSTRUCTORS = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
}

#: Constructors whose result is module-level *mutable* state when bound at
#: module scope (literals are detected structurally).
_MUTABLE_CONSTRUCTOR_LEAVES = {"dict", "list", "set", "defaultdict", "Counter",
                               "deque", "OrderedDict", "bytearray"}

#: Canonical call prefixes that are ambient randomness (process-pool purity).
_RANDOM_PREFIXES = ("random.", "numpy.random.", "secrets.")
_RANDOM_EXACT = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}

#: numpy.random leaves that only *construct* (deterministically seeded)
#: machinery rather than draw ambient entropy; RPR002 already polices
#: construction, so RPR007 does not re-flag them.
_RANDOM_OK_LEAVES = {"Generator", "SeedSequence", "BitGenerator", "PCG64",
                     "PCG64DXSM", "MT19937", "Philox", "SFC64"}

_MUTATOR_METHODS = {
    "sort", "fill", "partition", "put", "resize", "setflags", "byteswap",
    "append", "extend", "clear", "update", "pop", "setdefault",
}

#: In-place numpy mutators relevant to array parameters (RPR009).
_ARRAY_MUTATORS = {"sort", "fill", "partition", "put", "resize", "setflags",
                   "byteswap"}


# ---------------------------------------------------------------------------
# summary records
# ---------------------------------------------------------------------------


@dataclass
class RngSite:
    """One ``derive_rng(root, *tokens)`` call site."""

    lineno: int
    col: int
    func: str  #: enclosing function qualname ('<module>' at top level)
    #: per token: repr of the literal, or None when dynamic
    tokens: List[Optional[str]]
    #: source text per token, for messages
    token_texts: List[str]

    def to_dict(self) -> Dict[str, Any]:
        return {"lineno": self.lineno, "col": self.col, "func": self.func,
                "tokens": self.tokens, "token_texts": self.token_texts}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RngSite":
        return cls(lineno=int(data["lineno"]), col=int(data["col"]),
                   func=data["func"], tokens=list(data["tokens"]),
                   token_texts=list(data["token_texts"]))


@dataclass
class SubmitSite:
    """One ``pool.submit(f, ...)`` / ``pool.map(f, ...)`` call site."""

    lineno: int
    col: int
    method: str  #: 'submit' or 'map'
    callee: Optional[str]  #: resolved dotted name of the submitted callable
    callee_text: str

    def to_dict(self) -> Dict[str, Any]:
        return {"lineno": self.lineno, "col": self.col, "method": self.method,
                "callee": self.callee, "callee_text": self.callee_text}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SubmitSite":
        return cls(lineno=int(data["lineno"]), col=int(data["col"]),
                   method=data["method"], callee=data["callee"],
                   callee_text=data["callee_text"])


@dataclass
class ColumnArg:
    """A call passing a ``PacketBatch`` column attribute as an argument."""

    lineno: int
    col: int
    callee: str  #: resolved dotted callee
    arg_index: int
    column: str
    arg_text: str

    def to_dict(self) -> Dict[str, Any]:
        return {"lineno": self.lineno, "col": self.col, "callee": self.callee,
                "arg_index": self.arg_index, "column": self.column,
                "arg_text": self.arg_text}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ColumnArg":
        return cls(lineno=int(data["lineno"]), col=int(data["col"]),
                   callee=data["callee"], arg_index=int(data["arg_index"]),
                   column=data["column"], arg_text=data["arg_text"])


@dataclass
class FunctionSummary:
    """Facts about one function that survive across module boundaries."""

    qualname: str
    lineno: int
    params: List[str]
    #: positional indices mutated in place (subscript store / array mutator)
    mutated_params: List[int] = field(default_factory=list)
    #: (callee, callee_arg_index, own_param_index) — param forwarded whole
    forwards: List[Tuple[str, int, int]] = field(default_factory=list)
    #: resolved dotted callees (project call-graph edges)
    calls: List[str] = field(default_factory=list)
    #: (global name, 'read'|'write', lineno) touching module mutable state
    global_uses: List[Tuple[str, str, int]] = field(default_factory=list)
    #: (canonical dotted name, lineno) — from-imported foreign-module values
    ext_reads: List[Tuple[str, int]] = field(default_factory=list)
    #: (canonical target, lineno) — ambient randomness reached directly
    random_calls: List[Tuple[str, int]] = field(default_factory=list)
    #: pass-3 dataflow record (events, returns, abstract call args)
    typeflow: Optional[Dict[str, Any]] = None
    #: pass-4 concurrency record (lock scopes, accesses, calls, spawns)
    concurrency: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "lineno": self.lineno,
            "params": self.params, "mutated_params": self.mutated_params,
            "forwards": [list(f) for f in self.forwards],
            "calls": self.calls,
            "global_uses": [list(g) for g in self.global_uses],
            "ext_reads": [list(e) for e in self.ext_reads],
            "random_calls": [list(r) for r in self.random_calls],
            "typeflow": self.typeflow,
            "concurrency": self.concurrency,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"], lineno=int(data["lineno"]),
            params=list(data["params"]),
            mutated_params=[int(i) for i in data["mutated_params"]],
            forwards=[(f[0], int(f[1]), int(f[2])) for f in data["forwards"]],
            calls=list(data["calls"]),
            global_uses=[(g[0], g[1], int(g[2])) for g in data["global_uses"]],
            ext_reads=[(e[0], int(e[1])) for e in data["ext_reads"]],
            random_calls=[(r[0], int(r[1])) for r in data["random_calls"]],
            typeflow=data.get("typeflow"),
            concurrency=data.get("concurrency"),
        )


@dataclass
class ModuleSummary:
    """Everything pass 2 may ask about one module — JSON-serialisable."""

    rel_path: str
    module: str  #: dotted module name derived from the relative path
    mutable_globals: List[str] = field(default_factory=list)
    #: ALL_CAPS module constants: name -> repr(value)
    constants: Dict[str, str] = field(default_factory=dict)
    #: persisted-field sets: qualname -> {'fields': [...], 'lineno': n}
    schema_fields: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: dtype layout tables (``_COLUMNS``/``_COLUMN_ORDER`` style):
    #: name -> {'pairs': [[field, dtype-spelling], ...], 'lineno': n}
    layouts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    rng_sites: List[RngSite] = field(default_factory=list)
    submit_sites: List[SubmitSite] = field(default_factory=list)
    pool_sites: List[int] = field(default_factory=list)
    savez_sites: List[int] = field(default_factory=list)
    column_args: List[ColumnArg] = field(default_factory=list)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: lock definition sites: [owner ('<module>' or class name), attr,
    #: kind ('lock'/'rlock'), lineno]
    lock_defs: List[List[Any]] = field(default_factory=list)
    #: class index: name -> {'bases': [dotted...], 'lineno': n}
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: inline-suppression table: [line, codes-or-None]
    suppressions: List[Tuple[int, Optional[List[str]]]] = field(
        default_factory=list
    )

    def suppression_table(self) -> Dict[int, Optional[Set[str]]]:
        return {
            line: (None if codes is None else set(codes))
            for line, codes in self.suppressions
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rel_path": self.rel_path,
            "module": self.module,
            "mutable_globals": self.mutable_globals,
            "constants": self.constants,
            "schema_fields": self.schema_fields,
            "layouts": self.layouts,
            "rng_sites": [s.to_dict() for s in self.rng_sites],
            "submit_sites": [s.to_dict() for s in self.submit_sites],
            "pool_sites": self.pool_sites,
            "savez_sites": self.savez_sites,
            "column_args": [a.to_dict() for a in self.column_args],
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "lock_defs": [list(d) for d in self.lock_defs],
            "classes": {
                name: {"bases": list(v["bases"]), "lineno": v["lineno"]}
                for name, v in self.classes.items()
            },
            "suppressions": [
                [line, codes] for line, codes in self.suppressions
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            rel_path=data["rel_path"],
            module=data["module"],
            mutable_globals=list(data["mutable_globals"]),
            constants=dict(data["constants"]),
            schema_fields={
                q: {"fields": list(v["fields"]), "lineno": int(v["lineno"])}
                for q, v in data["schema_fields"].items()
            },
            layouts={
                name: {
                    "pairs": [[p[0], p[1]] for p in v["pairs"]],
                    "lineno": int(v["lineno"]),
                }
                for name, v in data.get("layouts", {}).items()
            },
            rng_sites=[RngSite.from_dict(s) for s in data["rng_sites"]],
            submit_sites=[SubmitSite.from_dict(s) for s in data["submit_sites"]],
            pool_sites=[int(n) for n in data["pool_sites"]],
            savez_sites=[int(n) for n in data["savez_sites"]],
            column_args=[ColumnArg.from_dict(a) for a in data["column_args"]],
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in data["functions"].items()
            },
            lock_defs=[
                [d[0], d[1], d[2], int(d[3])]
                for d in data.get("lock_defs", [])
            ],
            classes={
                name: {"bases": list(v["bases"]), "lineno": int(v["lineno"])}
                for name, v in data.get("classes", {}).items()
            },
            suppressions=[
                (int(line), None if codes is None else list(codes))
                for line, codes in data["suppressions"]
            ],
        )


def target_param_index(fsum: "FunctionSummary", call_arg_index: int) -> int:
    """Map a positional call-site index onto the callee's parameter list.

    Instance/class methods resolved through an attribute call receive the
    receiver implicitly, so positional arguments shift by one.
    """
    if fsum.params and fsum.params[0] in ("self", "cls"):
        return call_arg_index + 1
    return call_arg_index


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a posix relative path.

    ``src/repro/exec/cache.py`` → ``repro.exec.cache``; a package
    ``__init__.py`` names the package itself.
    """
    parts = [p for p in rel_path.split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# pass 1: the summariser
# ---------------------------------------------------------------------------


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed expression
        return "<expr>"


def _const_token(node: ast.AST) -> Optional[str]:
    """repr of a hashable literal token, None when dynamic."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (str, int, bool, float, bytes)
    ):
        return repr(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_token(node.operand)
        return None if inner is None else f"-{inner}"
    return None


def _const_str_keys(node: ast.Dict) -> Optional[List[str]]:
    keys: List[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
        else:
            return None
    return keys or None


def _pair_sequence_fields(node: ast.AST) -> Optional[List[str]]:
    """First elements of a tuple/list of tuples — e.g. ``_COLUMN_ORDER``."""
    if not isinstance(node, (ast.Tuple, ast.List)) or not node.elts:
        return None
    fields: List[str] = []
    for elt in node.elts:
        if not (isinstance(elt, (ast.Tuple, ast.List)) and elt.elts):
            return None
        head = elt.elts[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            fields.append(head.value)
        else:
            return None
    return fields


def _pair_sequence_layout(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[List[List[str]]]:
    """(name, dtype-spelling) pairs of a ``_COLUMNS``-style table.

    The dtype spelling is kept verbatim: a string literal (``"<u4"``,
    endianness included) or the canonical dotted name of a numpy dtype
    (``numpy.float64``); rows with a dynamic second element abort the
    capture (the table is not a declared layout).
    """
    if not isinstance(node, (ast.Tuple, ast.List)) or not node.elts:
        return None
    pairs: List[List[str]] = []
    for elt in node.elts:
        if not (isinstance(elt, (ast.Tuple, ast.List)) and len(elt.elts) >= 2):
            return None
        head, dtype_node = elt.elts[0], elt.elts[1]
        if not (isinstance(head, ast.Constant)
                and isinstance(head.value, str)):
            return None
        if isinstance(dtype_node, ast.Constant) and isinstance(
            dtype_node.value, str
        ):
            pairs.append([head.value, dtype_node.value])
            continue
        dotted = resolve(dtype_node, aliases)
        if dotted is None:
            return None
        pairs.append([head.value, dotted])
    return pairs


def _is_mutable_value(node: ast.AST, aliases: Dict[str, str]) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = resolve(node.func, aliases) or ""
        return target.rsplit(".", 1)[-1] in _MUTABLE_CONSTRUCTOR_LEAVES
    return False


class _Summarizer:
    """Single AST pass producing a :class:`ModuleSummary`."""

    def __init__(self, tree: ast.Module, source: str, rel_path: str):
        self.tree = tree
        self.rel_path = rel_path
        self.module = module_name_for(rel_path)
        self.aliases = import_aliases(tree)
        self.summary = ModuleSummary(rel_path=rel_path, module=self.module)
        self.summary.suppressions = sorted(
            (line, None if codes is None else sorted(codes))
            for line, codes in parse_suppressions(source.splitlines()).items()
        )
        #: names of module-level defs (for bare-name call resolution)
        self.toplevel_defs: Set[str] = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef))
        }
    def run(self) -> ModuleSummary:
        self._module_scope()
        stack: List[str] = []

        def visit(node: ast.AST, klass: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    self._class_def(child)
                    visit(child, child.name)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stack:
                        qual = f"{stack[-1]}.{child.name}"
                    elif klass:
                        qual = f"{klass}.{child.name}"
                    else:
                        qual = child.name
                    stack.append(qual)
                    self._function(child, qual, klass)
                    visit(child, None)
                    stack.pop()
                else:
                    visit(child, klass)

        visit(self.tree, None)
        self._call_index()
        return self.summary

    # -- classes and locks ---------------------------------------------------

    def _class_def(self, node: ast.ClassDef) -> None:
        bases: List[str] = []
        for base in node.bases:
            dotted = resolve(base, self.aliases)
            if dotted is not None:
                bases.append(dotted)
        self.summary.classes.setdefault(
            node.name, {"bases": bases, "lineno": node.lineno}
        )

    def _lock_def(self, owner: str, attr: str, kind: str,
                  lineno: int) -> None:
        for entry in self.summary.lock_defs:
            if entry[0] == owner and entry[1] == attr:
                return
        self.summary.lock_defs.append([owner, attr, kind, lineno])

    # -- module scope -------------------------------------------------------

    def _module_scope(self) -> None:
        out = self.summary
        for node in self.tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                kind = lock_kind(value, self.aliases)
                if kind is not None:
                    self._lock_def("<module>", name, kind, node.lineno)
                if _is_mutable_value(value, self.aliases):
                    out.mutable_globals.append(name)
                if name.isupper():
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, (int, str, bytes)
                    ):
                        out.constants[name] = repr(value.value)
                    fields = _pair_sequence_fields(value)
                    if fields is not None:
                        out.schema_fields[name] = {
                            "fields": fields, "lineno": node.lineno
                        }
                    pairs = _pair_sequence_layout(value, self.aliases)
                    if pairs is not None:
                        out.layouts[name] = {
                            "pairs": pairs, "lineno": node.lineno
                        }
                if isinstance(value, ast.Dict):
                    keys = _const_str_keys(value)
                    if keys is not None:
                        out.schema_fields.setdefault(
                            name, {"fields": keys, "lineno": node.lineno}
                        )

    # -- functions ----------------------------------------------------------

    def _function(self, func: ast.AST, qualname: str,
                  klass: Optional[str]) -> None:
        args = func.args
        params = [a.arg for a in [*args.posonlyargs, *args.args]]
        fsum = FunctionSummary(qualname=qualname, lineno=func.lineno,
                               params=params)
        param_index = {name: i for i, name in enumerate(params)}
        mutable = set(self.summary.mutable_globals)
        locals_bound: Set[str] = set(params)
        global_decls: Set[str] = set()

        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)
                for name in node.names:
                    fsum.global_uses.append((name, "write", node.lineno))
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._function_store(node, fsum, param_index, mutable,
                                     locals_bound)
            elif isinstance(node, ast.Call):
                self._function_call(node, fsum, param_index, klass)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in mutable and node.id not in locals_bound:
                    fsum.global_uses.append((node.id, "read", node.lineno))
                elif node.id in self.aliases and node.id.isupper():
                    dotted = self.aliases[node.id]
                    if "." in dotted:
                        fsum.ext_reads.append((dotted, node.lineno))

        # Pass-3 dataflow record: expression IR + cast/arith/sink events,
        # extracted now so warm runs never re-parse for typeflow.
        flow = TypeflowExtractor(
            params,
            self.aliases,
            lambda call: self._resolve_call(call, klass),
        ).extract(func)
        if flow.events or flow.returns or flow.calls:
            fsum.typeflow = flow.to_dict()

        # Pass-4 concurrency record: lock scopes, self-attribute accesses,
        # calls (deferred-flagged), callback registrations, thread spawns.
        if klass is not None:
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                kind = lock_kind(node.value, self.aliases)
                if kind is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._lock_def(klass, target.attr, kind, node.lineno)
        conc = ConcurrencyExtractor(
            self.module,
            klass,
            self.aliases,
            self.toplevel_defs,
            lambda call: self._resolve_call(call, klass),
        ).extract(func)
        if conc.events:
            fsum.concurrency = conc.to_dict()

        # Record dict literals returned / bound in this function as
        # persisted-schema candidates (keyed by qualname[.var]).
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                keys = _const_str_keys(node.value)
                if keys is not None:
                    entry = self.summary.schema_fields.setdefault(
                        qualname, {"fields": [], "lineno": node.lineno}
                    )
                    entry["fields"] = sorted(set(entry["fields"]) | set(keys))
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
                keys = _const_str_keys(node.value)
                if keys is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        qual = f"{qualname}.{target.id}"
                        entry = self.summary.schema_fields.setdefault(
                            qual, {"fields": [], "lineno": node.lineno}
                        )
                        entry["fields"] = sorted(
                            set(entry["fields"]) | set(keys)
                        )

        self.summary.functions[qualname] = fsum

    def _function_store(self, node: ast.AST, fsum: FunctionSummary,
                        param_index: Dict[str, int], mutable: Set[str],
                        locals_bound: Set[str]) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in mutable and not isinstance(node, ast.AugAssign):
                    # Rebinding a module name locally shadows it from here
                    # on; conservative, but stops param-style false hits.
                    locals_bound.add(target.id)
                continue
            if isinstance(target, ast.Subscript):
                base = target.value
                if isinstance(base, ast.Name):
                    if base.id in param_index:
                        idx = param_index[base.id]
                        if idx not in fsum.mutated_params:
                            fsum.mutated_params.append(idx)
                    elif base.id in mutable and base.id not in locals_bound:
                        fsum.global_uses.append(
                            (base.id, "write", node.lineno)
                        )

    def _function_call(self, node: ast.Call, fsum: FunctionSummary,
                       param_index: Dict[str, int],
                       klass: Optional[str]) -> None:
        resolved = self._resolve_call(node, klass)
        if resolved is not None:
            fsum.calls.append(resolved)
            if self._is_random(resolved):
                fsum.random_calls.append((resolved, node.lineno))
            # Whole-parameter forwarding (for transitive mutation).
            for arg_idx, arg in enumerate(node.args):
                if isinstance(arg, ast.Name) and arg.id in param_index:
                    fsum.forwards.append(
                        (resolved, arg_idx, param_index[arg.id])
                    )
        func = node.func
        if isinstance(func, ast.Attribute):
            # In-place mutators on a bare parameter: arr.sort(), arr.fill(0).
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in param_index
                and func.attr in _ARRAY_MUTATORS
            ):
                idx = param_index[base.id]
                if idx not in fsum.mutated_params:
                    fsum.mutated_params.append(idx)
            # Mutation of module-level mutable state: CACHE.clear(), ...
            if (
                isinstance(base, ast.Name)
                and base.id in self.summary.mutable_globals
                and func.attr in _MUTATOR_METHODS
            ):
                fsum.global_uses.append((base.id, "write", node.lineno))

    def _resolve_call(self, node: ast.Call,
                      klass: Optional[str]) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self.toplevel_defs:
                return f"{self.module}.{func.id}"
            return self.aliases.get(func.id)
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and klass is not None
            ):
                return f"{self.module}.{klass}.{func.attr}"
            return resolve(func, self.aliases)
        return None

    @staticmethod
    def _is_random(target: str) -> bool:
        if target in _RANDOM_EXACT:
            return True
        for prefix in _RANDOM_PREFIXES:
            if target.startswith(prefix):
                leaf = target.rsplit(".", 1)[-1]
                return leaf not in _RANDOM_OK_LEAVES
        return False

    # -- call-site indexes ---------------------------------------------------

    def _call_index(self) -> None:
        stack: List[Tuple[Optional[str], str]] = []

        def visit(node: ast.AST, klass: Optional[str]) -> None:
            if isinstance(node, ast.ClassDef):
                for child in ast.iter_child_nodes(node):
                    visit(child, node.name)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stack:
                    qual = f"{stack[-1][1]}.{node.name}"
                    owner = stack[-1][0]
                else:
                    qual = f"{klass}.{node.name}" if klass else node.name
                    owner = klass
                stack.append((owner, qual))
                for child in ast.iter_child_nodes(node):
                    visit(child, None)
                stack.pop()
                return
            if isinstance(node, ast.Call):
                enclosing = stack[-1][1] if stack else "<module>"
                owner = stack[-1][0] if stack else klass
                self._index_call(node, enclosing, owner)
            for child in ast.iter_child_nodes(node):
                visit(child, klass)

        visit(self.tree, None)

    def _index_call(self, node: ast.Call, enclosing: str,
                    klass: Optional[str]) -> None:
        out = self.summary
        resolved = self._resolve_call(node, klass)
        leaf = (resolved or "").rsplit(".", 1)[-1]

        if leaf == "derive_rng":
            tokens = [_const_token(arg) for arg in node.args[1:]]
            texts = [_expr_text(arg) for arg in node.args[1:]]
            out.rng_sites.append(RngSite(
                lineno=node.lineno, col=node.col_offset, func=enclosing,
                tokens=tokens, token_texts=texts,
            ))
        if resolved in _POOL_CONSTRUCTORS:
            out.pool_sites.append(node.lineno)
        if resolved in ("numpy.savez", "numpy.savez_compressed"):
            out.savez_sites.append(node.lineno)

        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("submit", "map")
            and node.args
        ):
            head = node.args[0]
            callee: Optional[str] = None
            if isinstance(head, ast.Name):
                callee = (
                    f"{self.module}.{head.id}"
                    if head.id in self.toplevel_defs
                    else self.aliases.get(head.id)
                )
            elif isinstance(head, ast.Attribute):
                callee = resolve(head, self.aliases)
            out.submit_sites.append(SubmitSite(
                lineno=node.lineno, col=node.col_offset, method=func.attr,
                callee=callee, callee_text=_expr_text(head),
            ))

        # PacketBatch column attributes handed to a resolvable callee.
        if resolved is not None:
            for arg_idx, arg in enumerate(node.args):
                if (
                    isinstance(arg, ast.Attribute)
                    and arg.attr in BATCH_COLUMNS
                    and not isinstance(arg.value, ast.Attribute)
                ):
                    out.column_args.append(ColumnArg(
                        lineno=node.lineno, col=node.col_offset,
                        callee=resolved, arg_index=arg_idx, column=arg.attr,
                        arg_text=_expr_text(arg),
                    ))


def summarize_source(source: str, rel_path: str,
                     tree: Optional[ast.Module] = None) -> ModuleSummary:
    """Summarise one source blob (parses unless ``tree`` is supplied)."""
    if tree is None:
        tree = ast.parse(source, filename=rel_path)
    return _Summarizer(tree, source, rel_path).run()


# ---------------------------------------------------------------------------
# the whole-program view
# ---------------------------------------------------------------------------


class ProjectContext:
    """Cross-module view over every :class:`ModuleSummary`."""

    def __init__(self, config: LintConfig,
                 modules: Dict[str, ModuleSummary]):
        self.config = config
        self.modules = modules  #: rel_path -> summary
        self.by_name: Dict[str, ModuleSummary] = {
            summary.module: summary for summary in modules.values()
        }
        self._functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = {}
        for summary in modules.values():
            for fsum in summary.functions.values():
                self._functions[f"{summary.module}.{fsum.qualname}"] = (
                    summary, fsum
                )
        self._mutated: Optional[Dict[str, Set[int]]] = None
        self._typeflow: Optional[TypeflowAnalysis] = None
        self._concurrency: Optional[ConcurrencyAnalysis] = None

    # -- lookups ------------------------------------------------------------

    def function(
        self, dotted: Optional[str]
    ) -> Optional[Tuple[ModuleSummary, FunctionSummary]]:
        if dotted is None:
            return None
        return self._functions.get(dotted)

    def module_by_suffix(self, suffix: str) -> Optional[ModuleSummary]:
        for summary in self.modules.values():
            if summary.rel_path.endswith(suffix):
                return summary
        return None

    def iter_modules(self) -> Iterator[ModuleSummary]:
        for rel_path in sorted(self.modules):
            yield self.modules[rel_path]

    # -- call graph ---------------------------------------------------------

    def reachable(
        self, start: str, max_depth: int = 8, max_nodes: int = 400
    ) -> Dict[str, List[str]]:
        """Project functions reachable from ``start``: name -> call chain."""
        if start not in self._functions:
            return {}
        chains: Dict[str, List[str]] = {start: [start]}
        frontier = [start]
        depth = 0
        while frontier and depth < max_depth and len(chains) < max_nodes:
            next_frontier: List[str] = []
            for name in frontier:
                _, fsum = self._functions[name]
                for callee in fsum.calls:
                    if callee in self._functions and callee not in chains:
                        chains[callee] = chains[name] + [callee]
                        next_frontier.append(callee)
            frontier = next_frontier
            depth += 1
        return chains

    def mutated_param_table(self) -> Dict[str, Set[int]]:
        """Fixpoint of in-place parameter mutation across call forwarding."""
        if self._mutated is not None:
            return self._mutated
        table: Dict[str, Set[int]] = {
            name: set(fsum.mutated_params)
            for name, (_, fsum) in self._functions.items()
        }
        changed = True
        while changed:
            changed = False
            for name, (_, fsum) in self._functions.items():
                mine = table[name]
                for callee, arg_idx, param_idx in fsum.forwards:
                    entry = self._functions.get(callee)
                    if entry is None:
                        continue
                    idx = target_param_index(entry[1], arg_idx)
                    if idx in table[callee] and param_idx not in mine:
                        mine.add(param_idx)
                        changed = True
        self._mutated = table
        return table

    # -- typeflow (pass 3) ---------------------------------------------------

    def typeflow_analysis(self) -> TypeflowAnalysis:
        """Solved interprocedural typeflow over every summarised function.

        Memoised: the fixpoint runs once per lint invocation, purely over
        the cached summaries (no AST access), so warm runs stay warm.
        """
        if self._typeflow is not None:
            return self._typeflow
        functions: Dict[str, TypeflowFunction] = {}
        for name, (summary, fsum) in self._functions.items():
            if fsum.typeflow is None:
                continue
            functions[name] = TypeflowFunction(
                fqname=name,
                rel_path=summary.rel_path,
                params=list(fsum.params),
                flow=FunctionTypeflow.from_dict(fsum.typeflow),
            )
        analysis = TypeflowAnalysis(functions)
        analysis.solve()
        self._typeflow = analysis
        return analysis

    # -- concurrency (pass 4) ------------------------------------------------

    def concurrency_analysis(self) -> ConcurrencyAnalysis:
        """Solved whole-program concurrency facts (locksets, lock order,
        thread entries, inferred guards).

        Memoised like :meth:`typeflow_analysis`: one fixpoint per lint
        invocation, purely over the cached summaries.  Modules are
        visited in sorted order, so lock ids, thread entries and every
        downstream diagnostic are byte-identical at any worker count.
        """
        if self._concurrency is not None:
            return self._concurrency
        functions: Dict[str, ConcurrencyFunction] = {}
        locks: Dict[str, LockInfo] = {}
        class_bases: Dict[str, List[str]] = {}
        for summary in self.iter_modules():
            for name in sorted(summary.classes):
                info = summary.classes[name]
                class_bases[f"{summary.module}.{name}"] = list(info["bases"])
            for entry in summary.lock_defs:
                owner, attr, kind, lineno = entry
                canon = (
                    f"{summary.module}.{attr}"
                    if owner == "<module>"
                    else f"{summary.module}.{owner}.{attr}"
                )
                if canon not in locks:
                    locks[canon] = LockInfo(
                        canon=canon, kind=str(kind),
                        rel_path=summary.rel_path, lineno=int(lineno),
                    )
            for qual in sorted(summary.functions):
                fsum = summary.functions[qual]
                if fsum.concurrency is None:
                    continue
                head = qual.split(".", 1)[0]
                owner = (
                    f"{summary.module}.{head}"
                    if head in summary.classes
                    else None
                )
                record = FunctionConcurrency.from_dict(fsum.concurrency)
                functions[f"{summary.module}.{qual}"] = ConcurrencyFunction(
                    fqname=f"{summary.module}.{qual}",
                    module=summary.module,
                    qualname=qual,
                    rel_path=summary.rel_path,
                    owner=owner,
                    events=record.events,
                )
        analysis = ConcurrencyAnalysis(functions, locks, class_bases)
        analysis.solve()
        self._concurrency = analysis
        return analysis


# ---------------------------------------------------------------------------
# content-addressed per-file cache
# ---------------------------------------------------------------------------


class SummaryCache:
    """Per-file analysis cache keyed on content, config, and rule set.

    One JSON entry per (source digest, environment salt); the key mirrors
    ``CaptureCache``'s blake2b discipline, so any edit — to the file, the
    lint configuration, the rule set, or the library version — misses and
    re-analyses, while untouched files load without parsing.
    """

    def __init__(self, root: Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def salt(config: LintConfig, registry: RuleRegistry) -> str:
        material = {
            "schema": SUMMARY_SCHEMA_VERSION,
            "version": __version__,
            "rules": [r.code for r in registry.rules()],
            "config": config.to_payload(include_root=False),
            "lattice": lattice_fingerprint(),
            "concurrency": concurrency_fingerprint(),
        }
        return json.dumps(material, sort_keys=True)

    def key_for(self, rel_path: str, source: bytes, salt: str) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(salt.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(rel_path.encode("utf-8"))
        digest.update(b"\x1f")
        digest.update(source)
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.lint.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self.path_for(key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        payload = dict(payload)
        payload["key"] = key
        path = self.path_for(key)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        tmp.replace(path)


# ---------------------------------------------------------------------------
# pass orchestration
# ---------------------------------------------------------------------------


@dataclass
class ProjectStats:
    """What one whole-program run did (surfaced by the CLI)."""

    files: int = 0
    parsed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def _diag_to_dict(diag: Diagnostic) -> Dict[str, Any]:
    return {"path": diag.path, "line": diag.line, "col": diag.col,
            "code": diag.code, "message": diag.message,
            "severity": diag.severity.value}


def _diag_from_dict(data: Dict[str, Any]) -> Diagnostic:
    from repro.lint.diagnostics import Severity

    return Diagnostic(path=data["path"], line=int(data["line"]),
                      col=int(data["col"]), code=data["code"],
                      message=data["message"],
                      severity=Severity(data["severity"]))


def _analyze_source(
    source: str,
    rel_path: str,
    path: Path,
    config: LintConfig,
    registry: RuleRegistry,
) -> Tuple[ModuleSummary, List[Diagnostic]]:
    """Parse once; produce the module summary and the file-rule findings."""
    tree = ast.parse(source, filename=rel_path)
    summary = summarize_source(source, rel_path, tree=tree)
    ctx = FileContext(path=path, rel_path=rel_path, source=source,
                      tree=tree, config=config)
    found: List[Diagnostic] = []
    for rule in registry.file_rules(config):
        found.extend(rule.check(ctx))
    found = apply_warn(found, config)
    table = summary.suppression_table()
    kept = [d for d in found if not is_suppressed(d, table)]
    return summary, sorted(kept, key=Diagnostic.sort_key)


def _analyze_file_task(
    path_str: str, rel_path: str, config_payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Worker entry point — module-level so process pools pickle it by
    reference; always uses the default registry (rule modules re-register
    at import in each worker)."""
    config = LintConfig.from_payload(config_payload)
    source = Path(path_str).read_text(encoding="utf-8")
    summary, diags = _analyze_source(
        source, rel_path, Path(path_str), config, REGISTRY
    )
    return {
        "summary": summary.to_dict(),
        "diagnostics": [_diag_to_dict(d) for d in diags],
    }


def analyze_files(
    files: Sequence[Path],
    config: LintConfig,
    registry: RuleRegistry = REGISTRY,
    workers: int = 0,
    cache: Optional[SummaryCache] = None,
) -> Tuple[ProjectContext, List[Diagnostic], ProjectStats]:
    """Pass 1 over ``files``: summaries plus per-file rule diagnostics.

    ``workers`` follows the repo convention (0 = serial); parallel runs use
    the default registry, so callers passing a custom registry are run
    serially regardless.
    """
    if workers < 0:
        raise ValueError("workers must be non-negative")
    stats = ProjectStats(files=len(files))
    salt = SummaryCache.salt(config, registry) if cache is not None else ""
    modules: Dict[str, ModuleSummary] = {}
    file_diags: List[Diagnostic] = []

    pending: List[Tuple[Path, str, Optional[str]]] = []
    for path in files:
        rel = _relativize(path, config.root)
        key: Optional[str] = None
        if cache is not None:
            key = cache.key_for(rel, path.read_bytes(), salt)
            payload = cache.load(key)
            if payload is not None:
                summary = ModuleSummary.from_dict(payload["summary"])
                modules[rel] = summary
                file_diags.extend(
                    _diag_from_dict(d) for d in payload["diagnostics"]
                )
                continue
        pending.append((path, rel, key))

    stats.parsed = len(pending)
    if cache is not None:
        stats.cache_hits = cache.hits
        stats.cache_misses = cache.misses

    results: List[Tuple[str, Optional[str], Dict[str, Any]]] = []
    if workers >= 1 and registry is REGISTRY and len(pending) > 1:
        payload = config.to_payload()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (rel, key, pool.submit(_analyze_file_task, str(path), rel,
                                       payload))
                for path, rel, key in pending
            ]
            for rel, key, future in futures:
                results.append((rel, key, future.result()))
    else:
        for path, rel, key in pending:
            source = path.read_text(encoding="utf-8")
            summary, diags = _analyze_source(source, rel, path, config,
                                             registry)
            results.append((rel, key, {
                "summary": summary.to_dict(),
                "diagnostics": [_diag_to_dict(d) for d in diags],
            }))

    for rel, key, payload in results:
        modules[rel] = ModuleSummary.from_dict(payload["summary"])
        file_diags.extend(_diag_from_dict(d) for d in payload["diagnostics"])
        if cache is not None and key is not None:
            cache.store(key, payload)

    project = ProjectContext(config, modules)
    return project, sorted(file_diags, key=Diagnostic.sort_key), stats


def run_project_rules(
    project: ProjectContext,
    config: LintConfig,
    registry: RuleRegistry = REGISTRY,
) -> List[Diagnostic]:
    """Pass 2: cross-module rules, warn-demoted and suppression-filtered."""
    found: List[Diagnostic] = []
    for rule in registry.project_rules(config):
        found.extend(rule.check_project(project))
    found = apply_warn(found, config)
    kept: List[Diagnostic] = []
    for diag in found:
        summary = project.modules.get(diag.path)
        table = summary.suppression_table() if summary is not None else {}
        if not is_suppressed(diag, table):
            kept.append(diag)
    return sorted(kept, key=Diagnostic.sort_key)


def lint_repository(
    config: LintConfig,
    paths: Optional[Iterable[Path]] = None,
    registry: RuleRegistry = REGISTRY,
    workers: int = 0,
    cache_dir: Optional[Path] = None,
    use_cache: bool = True,
) -> Tuple[List[Diagnostic], ProjectContext, ProjectStats]:
    """One whole-program lint: both passes over the configured tree."""
    targets = (
        list(paths) if paths is not None
        else [config.root / p for p in config.paths]
    )
    files = collect_files(targets, config)
    cache: Optional[SummaryCache] = None
    if use_cache:
        root = cache_dir if cache_dir is not None else config.cache_path()
        if root is not None:
            cache = SummaryCache(root)
    project, file_diags, stats = analyze_files(
        files, config, registry=registry, workers=workers, cache=cache
    )
    project_diags = run_project_rules(project, config, registry=registry)
    diagnostics = sorted(file_diags + project_diags, key=Diagnostic.sort_key)
    if config.path_rules:
        diagnostics = [
            d for d in diagnostics
            if not config.is_disabled_for(d.path, d.code)
        ]
    return diagnostics, project, stats
