"""Shared AST helpers for the rule modules and the project pass.

The central primitive is *import-aware name resolution*: ``np.random.rand``
resolves to ``numpy.random.rand`` given ``import numpy as np``, so rules
match on canonical dotted module paths instead of guessing from surface
spellings.

This lives outside the :mod:`repro.lint.rules` package so that
:mod:`repro.lint.project` can use it without triggering rule registration
(the rules package imports project back — a cycle otherwise).
:mod:`repro.lint.rules.common` re-exports everything for the rule modules.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

#: Wire widths of the packet header fields the paper's methodology models
#: (mirrors ``_COLUMNS`` in repro.telescope.packet).
FIELD_BITS: Dict[str, int] = {
    "src_ip": 32,
    "dst_ip": 32,
    "seq": 32,
    "src_port": 16,
    "dst_port": 16,
    "ip_id": 16,
    "window": 16,
    "ttl": 8,
    "flags": 8,
}

#: PacketBatch column attribute names (integer columns plus ``time``).
BATCH_COLUMNS = frozenset(FIELD_BITS) | {"time"}


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names bound by imports to canonical dotted module paths."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname:
                    aliases[item.asname] = item.name
                else:
                    # ``import a.b`` binds the top-level name ``a``.
                    top = item.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay project-local
            for item in node.names:
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of an expression, following import aliases."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    if head in aliases:
        head = aliases[head]
    return f"{head}.{rest}" if rest else head


def int_literal(node: ast.AST) -> Optional[int]:
    """Value of an integer literal, handling unary minus; else ``None``."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = int_literal(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


def annotation_text(node: Optional[ast.AST]) -> str:
    """Source text of an annotation ('' when absent)."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # string annotations
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""
