"""Rule engine: registry, file contexts, suppressions, tree walking.

The engine is deliberately small: a rule is an object with a ``code`` and a
``check(ctx)`` generator; the engine parses each file once, hands every rule
the same :class:`FileContext`, filters findings through inline suppression
comments, and returns sorted diagnostics.  Baseline handling lives in
:mod:`repro.lint.baseline`; path/config resolution in
:mod:`repro.lint.config`.

Two rule families share the registry:

* **file rules** (:class:`Rule`) see one :class:`FileContext` at a time —
  the per-file syntactic pass;
* **project rules** (:class:`ProjectRule`) see the whole-program
  :class:`~repro.lint.project.ProjectContext` built by
  :mod:`repro.lint.project` — cross-module invariants (RPR006–RPR009) that
  no single file can witness.

Inline suppressions use the comment syntax::

    something_noisy()  # repro-lint: disable=RPR001
    other(), thing()   # repro-lint: disable=RPR003,RPR004
    legacy_line()      # repro-lint: disable

A bare ``disable`` silences every rule on that line.  Suppressions are
line-scoped on purpose — block scopes rot.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity

#: Matches ``# repro-lint: disable`` with an optional ``=CODE[,CODE...]``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+?))?\s*(?:#|$)"
)

_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path  #: absolute path on disk
    rel_path: str  #: posix path relative to the lint root (used in output)
    source: str
    tree: ast.AST
    config: LintConfig
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)

    def matches_suffix(self, suffixes: Sequence[str]) -> bool:
        """True when the file's relative path ends with any of ``suffixes``."""
        return any(self.rel_path.endswith(sfx) for sfx in suffixes)


class Rule:
    """Base class for lint rules.

    Subclasses set ``code`` / ``name`` / ``description`` /
    ``default_severity`` and implement :meth:`check` as a generator of
    :class:`Diagnostic`.  Use :meth:`diag` to stamp findings consistently.
    """

    code: str = "RPR000"
    name: str = "abstract"
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: FileContext, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            severity=self.default_severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Subclasses implement :meth:`check_project` over the
    :class:`~repro.lint.project.ProjectContext`; :meth:`check` is unused
    (project rules never run in the per-file pass).  :meth:`project_diag`
    stamps findings from module summaries, which carry relative paths and
    line numbers but no live AST.
    """

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(self, project) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def project_diag(
        self,
        rel_path: str,
        line: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        return Diagnostic(
            path=rel_path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            severity=severity or self.default_severity,
        )


class RuleRegistry:
    """Ordered collection of rule instances, keyed by code."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule_cls: type) -> type:
        """Class decorator: instantiate and index the rule."""
        rule = rule_cls()
        if not _CODE_RE.match(rule.code):
            raise ValueError(f"bad rule code {rule.code!r} on {rule_cls.__name__}")
        if rule.code in self._rules:
            raise ValueError(f"duplicate rule code {rule.code}")
        self._rules[rule.code] = rule
        return rule_cls

    def rules(self) -> List[Rule]:
        return [self._rules[code] for code in sorted(self._rules)]

    def get(self, code: str) -> Rule:
        return self._rules[code]

    def enabled(self, config: LintConfig) -> List[Rule]:
        """Rules that survive ``disable`` plus the flake8-style
        ``select``/``ignore`` prefix filters."""
        rules = [r for r in self.rules() if r.code not in config.disable]
        if config.select:
            rules = [
                r for r in rules
                if any(r.code.startswith(p) for p in config.select)
            ]
        if config.ignore:
            rules = [
                r for r in rules
                if not any(r.code.startswith(p) for p in config.ignore)
            ]
        return rules

    def file_rules(self, config: LintConfig) -> List[Rule]:
        """Enabled per-file rules (the pass-2a syntactic walk)."""
        return [r for r in self.enabled(config) if not isinstance(r, ProjectRule)]

    def project_rules(self, config: LintConfig) -> List["ProjectRule"]:
        """Enabled whole-program rules (the pass-2b cross-module walk)."""
        return [r for r in self.enabled(config) if isinstance(r, ProjectRule)]


#: The default registry; rule modules register into it at import time.
REGISTRY = RuleRegistry()


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed codes (``None`` = all codes)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[i] = None
        else:
            parsed = {c.strip() for c in codes.split(",") if c.strip()}
            existing = out.get(i, set())
            out[i] = None if existing is None else (existing or set()) | parsed
    return out


def is_suppressed(
    diag: Diagnostic, suppressions: Dict[int, Optional[Set[str]]]
) -> bool:
    if diag.line not in suppressions:
        return False
    codes = suppressions[diag.line]
    return codes is None or diag.code in codes


def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    registry: RuleRegistry = REGISTRY,
    path: Optional[Path] = None,
) -> List[Diagnostic]:
    """Lint one in-memory source blob (the unit the tests drive)."""
    config = config or LintConfig()
    tree = ast.parse(source, filename=rel_path)
    ctx = FileContext(
        path=path or Path(rel_path),
        rel_path=rel_path,
        source=source,
        tree=tree,
        config=config,
    )
    found: List[Diagnostic] = []
    for rule in registry.file_rules(config):
        found.extend(rule.check(ctx))
    found = apply_warn(found, config)
    suppressions = parse_suppressions(ctx.lines)
    kept = [d for d in found if not is_suppressed(d, suppressions)]
    return sorted(kept, key=Diagnostic.sort_key)


def apply_warn(
    diags: Iterable[Diagnostic], config: LintConfig
) -> List[Diagnostic]:
    """Demote codes listed in ``config.warn`` to warning severity."""
    warn_codes = set(config.warn)
    out: List[Diagnostic] = []
    for diag in diags:
        if diag.code in warn_codes and diag.severity is Severity.ERROR:
            diag = Diagnostic(
                path=diag.path,
                line=diag.line,
                col=diag.col,
                code=diag.code,
                message=diag.message,
                severity=Severity.WARNING,
            )
        out.append(diag)
    return out


def lint_file(
    path: Path,
    config: Optional[LintConfig] = None,
    registry: RuleRegistry = REGISTRY,
) -> List[Diagnostic]:
    """Lint one file on disk."""
    config = config or LintConfig()
    rel = _relativize(path, config.root)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, rel, config=config, registry=registry, path=path)


def lint_paths(
    paths: Iterable[Path],
    config: Optional[LintConfig] = None,
    registry: RuleRegistry = REGISTRY,
) -> List[Diagnostic]:
    """Lint files and directory trees; returns all diagnostics, sorted."""
    config = config or LintConfig()
    diags: List[Diagnostic] = []
    for file_path in collect_files(paths, config):
        diags.extend(lint_file(file_path, config=config, registry=registry))
    return sorted(diags, key=Diagnostic.sort_key)


def collect_files(paths: Iterable[Path], config: LintConfig) -> List[Path]:
    """Expand directories into sorted ``*.py`` files, applying excludes."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for cand in candidates:
            rel = _relativize(cand, config.root)
            if not config.is_excluded(rel):
                out.append(cand)
    return out


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
