"""Baseline file handling — grandfathered findings.

The baseline is a committed JSON document listing findings that predate the
linter (or are accepted for a documented reason).  A finding matches a
baseline entry on ``(path, code, line)``; matched findings are reported as
"baselined" and do not affect the exit status.  Regenerate with
``python -m repro.lint --write-baseline`` after intentional churn.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic

_VERSION = 1


@dataclass
class Baseline:
    """Set of grandfathered finding keys."""

    entries: Set[Tuple[str, str, int]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in "
                f"{path} (this linter reads baseline version {_VERSION})"
            )
        entries = set()
        for item in data.get("entries", []):
            entries.add((str(item["path"]), str(item["code"]), int(item["line"])))
        return cls(entries=entries)

    @classmethod
    def from_diagnostics(cls, diags: Iterable[Diagnostic]) -> "Baseline":
        return cls(entries={d.baseline_key() for d in diags})

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "comment": (
                "Grandfathered repro-lint findings. Regenerate with "
                "`python -m repro.lint --write-baseline` only after reviewing "
                "that every entry is an accepted, documented exception."
            ),
            "entries": [
                {"path": p, "code": c, "line": n}
                for (p, c, n) in sorted(self.entries)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(
        self, diags: Iterable[Diagnostic]
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split into (new, baselined) lists, preserving order."""
        new: List[Diagnostic] = []
        known: List[Diagnostic] = []
        for diag in diags:
            (known if diag.baseline_key() in self.entries else new).append(diag)
        return new, known

    def stale_entries(
        self, diags: Iterable[Diagnostic]
    ) -> List[Tuple[str, str, int]]:
        """Baselined keys no longer matched by any current finding.

        A stale entry means the grandfathered violation was fixed (or
        moved): keeping it would let a *new* finding on the same line slip
        through silently, so ``--update-baseline`` prunes these and fails.
        """
        live = {d.baseline_key() for d in diags}
        return sorted(self.entries - live)

    def pruned(self, diags: Iterable[Diagnostic]) -> "Baseline":
        """A copy without the entries :meth:`stale_entries` reports."""
        live = {d.baseline_key() for d in diags}
        return Baseline(entries=self.entries & live)
