"""RPR010–RPR014: dtype/width/unit typeflow rules (pass 3).

These rules consume the solved interprocedural
:class:`~repro.lint.typeflow.TypeflowAnalysis` — abstract values (dtype,
unit tag, provenance column, significant-bit bound) inferred for every
tracked expression — and audit the recorded cast/arithmetic/compare/
accumulation/persistence events against it:

* **RPR010 narrowing-cast** — an ``astype``/``ascontiguousarray``/scalar
  constructor that can truncate a tracked value (uint64→uint32 on a
  packed key, float64→float32 on timestamps).  Casts whose source is
  *proven* to fit (``(key >> 32).astype(uint32)``) pass.
* **RPR011 overflow-risk arithmetic** — add/mul/shift whose inferred
  value-bit bound exceeds the promoted dtype's capacity.  Arithmetic
  inside ``with np.errstate(...)`` has declared wraparound intent and is
  skipped.
* **RPR012 unit-mixing** — adding/subtracting/comparing quantities whose
  unit tags disagree (timestamp seconds vs. window indices, ports vs.
  ip-ints).
* **RPR013 persisted-dtype drift** — the declared in-memory column table
  and the serialised layout disagree (names, widths, kinds, or missing
  explicit little-endian markers), or a ``savez`` sink receives a column
  whose inferred dtype drifted from the declared one.
* **RPR014 float-accumulation** — float64 timestamps summed into a
  float32 or Python-float accumulator on a streaming path.

All five respect inline suppressions, the baseline, ``--select`` /
``--ignore`` and path-scoped rule sets like every other rule.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, ProjectRule
from repro.lint.project import ModuleSummary, ProjectContext
from repro.lint.typeflow import (
    DTYPE_BITS,
    COLUMN_TYPES,
    OVERFLOW_OPS,
    AbstractValue,
    TypeEvent,
    TypeflowAnalysis,
    TypeflowFunction,
    describe,
    int_capacity,
    parse_dtype,
    promote_dtype,
)

_INT_KINDS = ("uint", "int")


def _is_int(dtype: Optional[str]) -> bool:
    return dtype is not None and dtype.startswith(_INT_KINDS)


def _is_float(dtype: Optional[str]) -> bool:
    return dtype is not None and dtype.startswith("float")


class _TypeflowRule(ProjectRule):
    """Common driver: solve once, visit the recorded events in a stable
    (function-name, event-order) sequence so diagnostics are byte-identical
    at any worker count."""

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        analysis = project.typeflow_analysis()
        for fn, event in analysis.iter_events():
            yield from self.check_event(analysis, fn, event)

    def check_event(
        self, tf: TypeflowAnalysis, fn: TypeflowFunction, event: TypeEvent
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError


@REGISTRY.register
class NarrowingCastRule(_TypeflowRule):
    code = "RPR010"
    name = "narrowing-cast"
    description = (
        "a cast narrows a value derived from a tracked PacketBatch column "
        "(possible truncation of packed keys or timestamps)"
    )

    def check_event(
        self, tf: TypeflowAnalysis, fn: TypeflowFunction, event: TypeEvent
    ) -> Iterator[Diagnostic]:
        if event.kind != "cast" or event.wrap:
            return
        data = event.data
        if data.get("direct_col"):
            return  # RPR003 owns the syntactic batch.col.astype(...) shape
        target: Optional[str] = data.get("dtype")
        if target is None:
            return
        src_expr = data.get("src", ["u"])
        value = tf.eval(fn.fqname, src_expr)
        if not (value.tracked() or tf.involves_tracked(fn.fqname, src_expr)):
            return
        width = DTYPE_BITS[target]
        if _is_int(target):
            if value.bits is not None and value.bits <= width:
                return  # proven to fit, e.g. (key >> 32).astype(uint32)
            src_width = value.width()
            if value.bits is None and (src_width is None or src_width <= width):
                return
            if _is_float(value.dtype):
                return  # float->int is a rounding choice, not a truncation
        elif target == "float32":
            if value.dtype != "float64":
                return
        else:
            return
        yield self.project_diag(
            fn.rel_path, event.lineno, event.col,
            f"cast to {target} can truncate a tracked value "
            f"({describe(value)}) in '{event.text}'; widen the target "
            "dtype or mask/shift the value into range first",
        )


@REGISTRY.register
class OverflowArithmeticRule(_TypeflowRule):
    code = "RPR011"
    name = "overflow-arithmetic"
    description = (
        "add/mul/shift on a tracked integer value whose inferred bit "
        "width can exceed the result dtype (silent wraparound)"
    )

    def check_event(
        self, tf: TypeflowAnalysis, fn: TypeflowFunction, event: TypeEvent
    ) -> Iterator[Diagnostic]:
        if event.kind != "binop" or event.wrap:
            return
        data = event.data
        op: str = data["op"]
        if op not in OVERFLOW_OPS:
            return
        left, right = data["l"], data["r"]
        lv = tf.eval(fn.fqname, left)
        rv = tf.eval(fn.fqname, right)
        # Gate: the operands derive from a tracked column/unit, or the
        # author is doing explicit numpy integer arithmetic (a packed key)
        # — generic Python-int arithmetic cannot wrap and is ignored.
        tracked = (
            tf.involves_tracked(fn.fqname, left)
            or tf.involves_tracked(fn.fqname, right)
            or _is_int(lv.dtype)
        )
        if not tracked:
            return
        dtype = promote_dtype(lv, rv)
        if not _is_int(dtype):
            return
        raw = TypeflowAnalysis.raw_bits(op, lv, rv, right)
        if raw is None:
            return
        capacity = int_capacity(dtype)
        if raw <= capacity:
            return
        yield self.project_diag(
            fn.rel_path, event.lineno, event.col,
            f"'{op}' result needs up to {raw} bits but {dtype} holds "
            f"{capacity}; '{event.text}' can wrap silently — widen the "
            "operands, mask the inputs, or put the statement under "
            "np.errstate(over=...) to declare intentional wraparound",
        )


@REGISTRY.register
class UnitMixingRule(_TypeflowRule):
    code = "RPR012"
    name = "unit-mixing"
    description = (
        "quantities with incompatible unit tags (seconds, packets, bytes, "
        "ip-int, port, window-index) are added or compared"
    )

    _OPS = ("add", "sub")

    def check_event(
        self, tf: TypeflowAnalysis, fn: TypeflowFunction, event: TypeEvent
    ) -> Iterator[Diagnostic]:
        if event.kind == "binop":
            if event.data["op"] not in self._OPS:
                return
            verb = f"'{event.data['op']}'"
        elif event.kind == "compare":
            verb = "comparison"
        else:
            return
        left = tf.eval(fn.fqname, event.data["l"])
        right = tf.eval(fn.fqname, event.data["r"])
        if left.unit is None or right.unit is None or left.unit == right.unit:
            return
        yield self.project_diag(
            fn.rel_path, event.lineno, event.col,
            f"{verb} mixes incompatible units: {describe(left)} vs "
            f"{describe(right)} in '{event.text}'; convert one side "
            "explicitly before combining them",
        )


@REGISTRY.register
class PersistedDtypeDriftRule(_TypeflowRule):
    code = "RPR013"
    name = "persisted-dtype-drift"
    description = (
        "a dtype reaching a persistence sink (TraceWriter/savez layout) "
        "disagrees with the declared column schema, or the serialised "
        "layout drifts from the in-memory one (names, widths, endianness)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        yield from self._check_layout_pairs(project)
        yield from super().check_project(project)

    # -- declared vs serialised layout tables -------------------------------

    def _check_layout_pairs(
        self, project: ProjectContext
    ) -> Iterator[Diagnostic]:
        for spec in project.config.dtype_layouts:
            parsed = _parse_layout_spec(spec)
            if parsed is None:
                continue
            decl_path, decl_name, ser_path, ser_name = parsed
            decl_mod = project.module_by_suffix(decl_path)
            ser_mod = project.module_by_suffix(ser_path)
            if decl_mod is None or ser_mod is None:
                continue
            decl = decl_mod.layouts.get(decl_name)
            ser = ser_mod.layouts.get(ser_name)
            if decl is None or ser is None:
                continue
            yield from self._compare_layouts(
                decl_name, decl, ser_name, ser, ser_mod
            )

    def _compare_layouts(
        self,
        decl_name: str,
        decl: Dict[str, Any],
        ser_name: str,
        ser: Dict[str, Any],
        ser_mod: ModuleSummary,
    ) -> Iterator[Diagnostic]:
        lineno = int(ser["lineno"])
        decl_pairs: List[List[str]] = decl["pairs"]
        ser_pairs: List[List[str]] = ser["pairs"]
        decl_fields = [p[0] for p in decl_pairs]
        ser_fields = [p[0] for p in ser_pairs]
        if decl_fields != ser_fields:
            yield self.project_diag(
                ser_mod.rel_path, lineno, 0,
                f"serialised layout {ser_name} columns {ser_fields} do not "
                f"match declared {decl_name} columns {decl_fields}",
            )
            return
        for (field_name, decl_spelling), (_, ser_spelling) in zip(
            decl_pairs, ser_pairs
        ):
            decl_dtype, _ = parse_dtype(decl_spelling)
            ser_dtype, endian = parse_dtype(ser_spelling)
            if decl_dtype is None or ser_dtype is None:
                continue
            if decl_dtype != ser_dtype:
                yield self.project_diag(
                    ser_mod.rel_path, lineno, 0,
                    f"column '{field_name}' is declared {decl_dtype} in "
                    f"{decl_name} but serialised as {ser_dtype} "
                    f"({ser_spelling!r}) in {ser_name}",
                )
            elif DTYPE_BITS.get(ser_dtype, 8) > 8 and endian != "<":
                yield self.project_diag(
                    ser_mod.rel_path, lineno, 0,
                    f"column '{field_name}' in {ser_name} spells its dtype "
                    f"as {ser_spelling!r}; multi-byte serialised columns "
                    "must be explicit little-endian ('<' prefix) so traces "
                    "are portable across hosts",
                )

    # -- dtype drift at savez sinks -----------------------------------------

    def check_event(
        self, tf: TypeflowAnalysis, fn: TypeflowFunction, event: TypeEvent
    ) -> Iterator[Diagnostic]:
        if event.kind != "sink":
            return
        value = tf.eval(fn.fqname, event.data["value"])
        if value.origin is None or value.dtype is None:
            return
        declared, _ = COLUMN_TYPES[value.origin]
        if value.dtype == declared:
            return
        yield self.project_diag(
            fn.rel_path, event.lineno, event.col,
            f"savez field '{event.data['name']}' persists column "
            f"'{value.origin}' as {value.dtype} but the declared column "
            f"dtype is {declared}; persist the declared dtype or rename "
            "the field to mark the transformation",
        )


@REGISTRY.register
class FloatAccumulationRule(_TypeflowRule):
    code = "RPR014"
    name = "float-accumulation"
    description = (
        "float64 timestamps accumulate into a float32 or Python-float "
        "accumulator on a streaming path (precision loss at trace scale)"
    )

    def check_event(
        self, tf: TypeflowAnalysis, fn: TypeflowFunction, event: TypeEvent
    ) -> Iterator[Diagnostic]:
        if event.kind != "accum":
            return
        data = event.data
        value = tf.eval(fn.fqname, data["value"])
        time_like = value.origin == "time" or value.unit == "seconds"
        if not (time_like and (value.dtype in (None, "float64"))):
            return
        how: str = data["how"]
        if how == "npsum":
            if data.get("acc_dtype") == "float32":
                yield self.project_diag(
                    fn.rel_path, event.lineno, event.col,
                    f"np.sum over float64 timestamps ({describe(value)}) "
                    f"with dtype=float32 in '{event.text}' loses precision "
                    "at trace scale; accumulate in float64",
                )
            return
        if how == "pysum":
            yield self.project_diag(
                fn.rel_path, event.lineno, event.col,
                f"builtin sum() accumulates float64 timestamps "
                f"({describe(value)}) one element at a time in "
                f"'{event.text}'; use np.sum (pairwise) on the array",
            )
            return
        if how == "aug" and event.loop:
            target = tf.eval(fn.fqname, data["target"])
            if target.dtype == "float32":
                yield self.project_diag(
                    fn.rel_path, event.lineno, event.col,
                    f"float32 accumulator absorbs float64 timestamps "
                    f"({describe(value)}) in a loop at '{event.text}'; "
                    "initialise the accumulator as float64",
                )


def _parse_layout_spec(
    spec: str,
) -> Optional[Tuple[str, str, str, str]]:
    parts = spec.split(":")
    if len(parts) != 4:
        return None
    return parts[0], parts[1], parts[2], parts[3]


__all__ = [
    "NarrowingCastRule",
    "OverflowArithmeticRule",
    "UnitMixingRule",
    "PersistedDtypeDriftRule",
    "FloatAccumulationRule",
]
