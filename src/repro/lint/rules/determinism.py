"""RPR001 — determinism: no ambient randomness or wall-clock reads.

Every stochastic draw in the library must flow through the generators that
``repro._util.rng`` derives, so that adding a consumer never perturbs the
draws of existing ones (the property Table 1/Table 2 calibration rests on).
This rule flags the ways ambient nondeterminism sneaks in:

* the stdlib :mod:`random` module (import or call) — process-global state;
* legacy ``numpy.random.*`` module-level distributions and ``seed`` — the
  same global-state problem in numpy clothing;
* ``numpy.random.default_rng()`` *without* a seed — fresh OS entropy;
* wall-clock reads (``time.time``/``time.time_ns``/``time.monotonic``/
  ``time.perf_counter``, ``datetime.now``/``utcnow``/``today``) in library
  code.

Files listed in ``rng-exempt`` (default: ``_util/rng.py``) are skipped —
they *are* the plumbing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, FileContext, Rule
from repro.lint.rules.common import import_aliases, resolve

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random module-level names that are *not* global legacy state.
_NUMPY_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "RandomState",  # construction is RPR002's concern, not global state
}


@REGISTRY.register
class DeterminismRule(Rule):
    code = "RPR001"
    name = "determinism"
    description = (
        "ambient randomness (stdlib random, legacy np.random globals, "
        "unseeded default_rng) or wall-clock reads in library code"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.matches_suffix(ctx.config.rng_exempt):
            return
        aliases = import_aliases(ctx.tree)
        for node in ctx.walk():
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random" or item.name.startswith("random."):
                        yield self.diag(
                            ctx, node,
                            "stdlib `random` uses hidden process-global state; "
                            "draw from a generator built by repro._util.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.diag(
                        ctx, node,
                        "stdlib `random` uses hidden process-global state; "
                        "draw from a generator built by repro._util.rng",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, aliases)

    def _check_call(self, ctx, node: ast.Call, aliases) -> Iterator[Diagnostic]:
        target = resolve(node.func, aliases)
        if target is None:
            return
        if target == "random" or target.startswith("random."):
            yield self.diag(
                ctx, node,
                f"call into stdlib random ({target}) is nondeterministic "
                "across processes; use repro._util.rng generators",
            )
        elif target in _CLOCK_CALLS:
            yield self.diag(
                ctx, node,
                f"wall-clock read {target}() in library code breaks replay "
                "determinism; thread timestamps in as data",
            )
        elif target.startswith("numpy.random."):
            leaf = target.rsplit(".", 1)[1]
            if leaf == "default_rng" and not node.args and not node.keywords:
                yield self.diag(
                    ctx, node,
                    "numpy.random.default_rng() without a seed pulls OS "
                    "entropy; pass a seed or use as_generator/derive_rng",
                )
            elif leaf not in _NUMPY_RANDOM_OK:
                yield self.diag(
                    ctx, node,
                    f"legacy numpy.random.{leaf}() mutates the global numpy "
                    "stream; use Generator methods on a derived rng",
                )
