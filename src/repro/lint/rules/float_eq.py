"""RPR005 — float equality in analysis code.

The ``core/`` analyses reduce packet data to rates, fractions and scores;
comparing those with ``==``/``!=`` is order-of-operations roulette.  The
rule fires when either side of an equality *provably looks float*: a float
literal, a true division, or a call to a known float producer (``float``,
``np.mean``/``std``/``median``..., ``math.sqrt``/``log``..., or a
``.mean()``-style method).  Scope is limited to paths matching
``float-eq-paths`` (default: ``core/``) — generation code legitimately
compares exact float ticks it produced itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, FileContext, Rule
from repro.lint.rules.common import import_aliases, resolve

_FLOAT_CALLS = {
    "float",
    "numpy.mean", "numpy.average", "numpy.std", "numpy.var", "numpy.median",
    "numpy.quantile", "numpy.percentile", "numpy.sqrt", "numpy.log",
    "numpy.log2", "numpy.log10", "numpy.exp",
    "math.sqrt", "math.log", "math.log2", "math.log10", "math.exp",
    "math.fsum",
}

_FLOAT_METHODS = {"mean", "std", "var"}


@REGISTRY.register
class FloatEqualityRule(Rule):
    code = "RPR005"
    name = "float-equality"
    description = (
        "==/!= between float-typed expressions in analysis code; use "
        "math.isclose / np.isclose or an explicit tolerance"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not any(frag in ctx.rel_path for frag in ctx.config.float_eq_paths):
            return
        aliases = import_aliases(ctx.tree)
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                culprit = next(
                    (x for x in (left, right) if self._looks_float(x, aliases)),
                    None,
                )
                if culprit is not None:
                    yield self.diag(
                        ctx, culprit,
                        "float equality comparison in analysis code; use "
                        "math.isclose/np.isclose or compare with a tolerance",
                    )

    @staticmethod
    def _looks_float(node: ast.AST, aliases) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.Call):
            target = resolve(node.func, aliases)
            if target in _FLOAT_CALLS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FLOAT_METHODS
            ):
                return True
        return False
