"""RPR003 — header-field safety: literals fit their wire widths.

The packet model stores header fields at wire width (``uint16`` ports and
``ip_id``, ``uint8`` TTL/flags, ``uint32`` addresses/seq — see
``repro.telescope.packet._COLUMNS``).  An out-of-range literal silently
wraps once it reaches a numpy column, so it must be caught at the source:

* keyword arguments named after header fields (``ttl=300``,
  ``src_port=70000``) with out-of-range integer literals;
* literals handed to the validators (``check_port``/``check_ttl``/
  ``check_ip``/``check_header_field``) that can never pass;
* numpy scalar constructors (``np.uint8(256)``) whose literal exceeds the
  dtype;
* ``.astype`` casts that *narrow* a known packet column below its declared
  wire width (``batch.seq.astype(np.uint16)``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, FileContext, Rule
from repro.lint.rules.common import FIELD_BITS, import_aliases, int_literal, resolve

_NUMPY_INT_BITS = {
    "numpy.uint8": (0, 8),
    "numpy.uint16": (0, 16),
    "numpy.uint32": (0, 32),
    "numpy.uint64": (0, 64),
    "numpy.int8": (-(2 ** 7), 8),
    "numpy.int16": (-(2 ** 15), 16),
    "numpy.int32": (-(2 ** 31), 32),
    "numpy.int64": (-(2 ** 63), 64),
}

#: Validator name -> fixed bit width of its second argument (None = generic).
_VALIDATORS = {"check_port": 16, "check_ttl": 8, "check_ip": 32}


@REGISTRY.register
class HeaderFieldRule(Rule):
    code = "RPR003"
    name = "header-field-safety"
    description = (
        "integer literals out of wire range for packet header fields, "
        "numpy scalar overflow, or dtype-narrowing casts on packet columns"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        aliases = import_aliases(ctx.tree)
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_field_keywords(ctx, node)
            yield from self._check_validator_literal(ctx, node)
            yield from self._check_numpy_scalar(ctx, node, aliases)
            yield from self._check_narrowing_cast(ctx, node, aliases)

    def _check_field_keywords(self, ctx, node: ast.Call) -> Iterator[Diagnostic]:
        for kw in node.keywords:
            bits = FIELD_BITS.get(kw.arg or "")
            if bits is None:
                continue
            value = int_literal(kw.value)
            if value is not None and not 0 <= value < (1 << bits):
                yield self.diag(
                    ctx, kw.value,
                    f"literal {value} does not fit header field `{kw.arg}` "
                    f"({bits}-bit wire width); it would wrap in the column store",
                )

    def _check_validator_literal(self, ctx, node: ast.Call) -> Iterator[Diagnostic]:
        func_name = node.func.attr if isinstance(node.func, ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        if func_name in _VALIDATORS and len(node.args) >= 2:
            bits: Optional[int] = _VALIDATORS[func_name]
        elif func_name == "check_header_field" and len(node.args) >= 3:
            bits = int_literal(node.args[2])
        else:
            return
        value = int_literal(node.args[1])
        if bits is not None and bits <= 0:
            # A non-positive width is rejected by the validator itself at
            # runtime (tests exercise that path with literals); don't shift.
            return
        if value is not None and bits is not None and not 0 <= value < (1 << bits):
            yield self.diag(
                ctx, node,
                f"{func_name} is called with literal {value}, which can never "
                f"satisfy its {bits}-bit bound — dead validation or a typo",
            )

    def _check_numpy_scalar(self, ctx, node: ast.Call, aliases) -> Iterator[Diagnostic]:
        target = resolve(node.func, aliases)
        span = _NUMPY_INT_BITS.get(target or "")
        if span is None or len(node.args) != 1:
            return
        low, bits = span
        value = int_literal(node.args[0])
        high = (1 << bits) if low == 0 else (1 << (bits - 1))
        if value is not None and not low <= value < high:
            yield self.diag(
                ctx, node,
                f"{target}({value}) overflows the {bits}-bit dtype and wraps "
                "silently",
            )

    def _check_narrowing_cast(self, ctx, node: ast.Call, aliases) -> Iterator[Diagnostic]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
            return
        base = func.value
        if not isinstance(base, ast.Attribute):
            return
        declared = FIELD_BITS.get(base.attr)
        if declared is None or not node.args:
            return
        target = resolve(node.args[0], aliases)
        span = _NUMPY_INT_BITS.get(target or "")
        if span is None:
            return
        _, bits = span
        if bits < declared:
            yield self.diag(
                ctx, node,
                f"column `{base.attr}` is declared {declared}-bit; casting to "
                f"{target} truncates header values",
            )
