"""RPR008: persisted-schema drift against the committed manifest.

Three stores persist field sets to disk (``CaptureCache`` capture
metadata, ``CheckpointStore`` / ``IncrementalScanIdentifier.snapshot``
arrays, ``TraceWriter``'s ``_COLUMN_ORDER``), each guarded by a version
constant that is part of the on-disk key.  The silent failure mode is
editing the field set without bumping the constant: old artefacts then
load as if compatible and resume/cache hits go quietly wrong.

The rule fingerprints (blake2b) the field set at every configured
``schema-sites`` entry and compares it against the committed manifest
(``lint-schema.json``):

* fields drifted, version constant unchanged → **error** (bump it);
* fields drifted *and* version bumped → **warning** (manifest stale; run
  ``repro-lint --update-schema-manifest`` to re-commit the new shape);
* site missing from the manifest → **error** (run the updater once).

Each site spec is ``"<site path>:<qualname>:<version path>:<constant>"``;
relative paths never contain ``:`` so the split is unambiguous.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import REGISTRY, ProjectRule
from repro.lint.project import ProjectContext

SCHEMA_MANIFEST_VERSION = 1


def parse_site_spec(spec: str) -> Tuple[str, str, str, str]:
    """Split ``site_path:qualname:version_path:constant``."""
    parts = spec.split(":")
    if len(parts) != 4 or not all(parts):
        raise ValueError(
            f"bad schema-sites entry {spec!r}: expected "
            '"<site path>:<qualname>:<version path>:<constant>"'
        )
    return parts[0], parts[1], parts[2], parts[3]


def fingerprint_fields(fields: List[str]) -> str:
    digest = hashlib.blake2b(digest_size=8)
    digest.update(json.dumps(sorted(fields)).encode("utf-8"))
    return digest.hexdigest()


def load_manifest(path: Path) -> Optional[Dict[str, Any]]:
    """Read the manifest; ``None`` when absent.  Raises on bad versions."""
    if not path.is_file():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != SCHEMA_MANIFEST_VERSION:
        raise ValueError(
            f"unsupported schema manifest version {version!r} in {path} "
            f"(this linter writes version {SCHEMA_MANIFEST_VERSION})"
        )
    return data


def collect_sites(
    project: ProjectContext, config: LintConfig
) -> Dict[str, Dict[str, Any]]:
    """Resolve every configured site against the current tree."""
    sites: Dict[str, Dict[str, Any]] = {}
    for spec in config.schema_sites:
        site_path, qualname, ver_path, ver_name = parse_site_spec(spec)
        summary = project.module_by_suffix(site_path)
        if summary is None:
            continue
        entry = summary.schema_fields.get(qualname)
        if entry is None:
            continue
        ver_mod = project.module_by_suffix(ver_path)
        version = ver_mod.constants.get(ver_name) if ver_mod else None
        fields = sorted(set(entry["fields"]))
        sites[f"{site_path}:{qualname}"] = {
            "fields": fields,
            "fingerprint": fingerprint_fields(fields),
            "schema_version": version,
        }
    return sites


def write_manifest(path: Path, sites: Dict[str, Dict[str, Any]]) -> None:
    payload = {"version": SCHEMA_MANIFEST_VERSION, "sites": sites}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@REGISTRY.register
class SchemaDriftRule(ProjectRule):
    code = "RPR008"
    name = "schema-drift"
    description = (
        "persisted field sets must match the committed manifest unless the "
        "guarding *_SCHEMA_VERSION constant is bumped"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        cfg = project.config
        try:
            manifest = load_manifest(cfg.manifest_path())
        except (ValueError, json.JSONDecodeError) as exc:
            yield self.project_diag(
                cfg.schema_manifest, 1, 0, f"unreadable schema manifest: {exc}"
            )
            return
        recorded: Dict[str, Any] = (manifest or {}).get("sites", {})

        for spec in cfg.schema_sites:
            try:
                site_path, qualname, ver_path, ver_name = parse_site_spec(spec)
            except ValueError as exc:
                yield self.project_diag(cfg.schema_manifest, 1, 0, str(exc))
                continue
            summary = project.module_by_suffix(site_path)
            if summary is None:
                # Site module outside the linted path set (e.g. a partial
                # run over one subpackage) — nothing to compare.
                continue
            entry = summary.schema_fields.get(qualname)
            if entry is None:
                yield self.project_diag(
                    summary.rel_path, 1, 0,
                    f"schema site {qualname!r} not found in "
                    f"{summary.rel_path}; fix the schema-sites entry in "
                    "[tool.repro-lint] (or restore the persisted dict)",
                )
                continue
            ver_mod = project.module_by_suffix(ver_path)
            version = ver_mod.constants.get(ver_name) if ver_mod else None
            if version is None:
                yield self.project_diag(
                    summary.rel_path, entry["lineno"], 0,
                    f"version constant {ver_name} not found in {ver_path}; "
                    "persisted schemas must be guarded by a module-level "
                    "constant",
                )
                continue

            fields = sorted(set(entry["fields"]))
            fingerprint = fingerprint_fields(fields)
            site_id = f"{site_path}:{qualname}"
            rec = recorded.get(site_id)
            if rec is None:
                where = (
                    cfg.schema_manifest if manifest is not None
                    else f"missing {cfg.schema_manifest}"
                )
                yield self.project_diag(
                    summary.rel_path, entry["lineno"], 0,
                    f"persisted schema {qualname} ({len(fields)} fields) is "
                    f"not recorded in {where}; run "
                    "`repro-lint --update-schema-manifest` and commit the "
                    "result",
                )
                continue

            if rec.get("fingerprint") == fingerprint:
                if rec.get("schema_version") != version:
                    yield self.project_diag(
                        summary.rel_path, entry["lineno"], 0,
                        f"{ver_name} is now {version} but the manifest "
                        f"records {rec.get('schema_version')}; run "
                        "`repro-lint --update-schema-manifest` to refresh "
                        "it",
                        severity=Severity.WARNING,
                    )
                continue

            added = sorted(set(fields) - set(rec.get("fields", [])))
            removed = sorted(set(rec.get("fields", [])) - set(fields))
            delta = ", ".join(
                ([f"+{name}" for name in added] + [f"-{name}" for name in removed])
            )
            if rec.get("schema_version") == version:
                yield self.project_diag(
                    summary.rel_path, entry["lineno"], 0,
                    f"persisted schema {qualname} drifted ({delta}) but "
                    f"{ver_name} in {ver_path} is still {version}; bump the "
                    "constant so stale artefacts stop loading, then run "
                    "`repro-lint --update-schema-manifest`",
                )
            else:
                yield self.project_diag(
                    summary.rel_path, entry["lineno"], 0,
                    f"persisted schema {qualname} changed ({delta}) and "
                    f"{ver_name} was bumped to {version}; run "
                    "`repro-lint --update-schema-manifest` to commit the "
                    "new shape",
                    severity=Severity.WARNING,
                )
