"""RPR006: ``derive_rng`` key paths must be constant and collision-free.

``derive_rng(root, *tokens)`` names a child stream by its token path; the
whole parallel-fan-out determinism story (``simulate_years_parallel`` is
byte-identical at any worker count) rests on every call site deriving a
*distinct* path.  Two failure modes, both invisible per file:

* **ambiguous keys** — a call whose leading token is not a string/int
  literal (or that passes no tokens at all) cannot be told apart from any
  other dynamic call, so stream identity depends on runtime values the
  reader cannot audit;
* **colliding keys** — two call sites whose token tuples can unify (equal
  literals position-by-position, with dynamic tokens acting as wildcards)
  can derive the *same* key and therefore correlated streams.

Sites under ``rng-exempt`` paths (the RNG plumbing itself) are skipped.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, ProjectRule
from repro.lint.project import ModuleSummary, ProjectContext, RngSite


def _key_text(site: RngSite) -> str:
    parts = [
        tok if tok is not None else f"<{text}>"
        for tok, text in zip(site.tokens, site.token_texts)
    ]
    return "(" + ", ".join(parts) + ")"


def _is_ambiguous(site: RngSite) -> bool:
    return not site.tokens or site.tokens[0] is None


def _can_unify(a: RngSite, b: RngSite) -> bool:
    if len(a.tokens) != len(b.tokens):
        return False
    for tok_a, tok_b in zip(a.tokens, b.tokens):
        if tok_a is not None and tok_b is not None and tok_a != tok_b:
            return False
    return True


@REGISTRY.register
class RngKeyPathsRule(ProjectRule):
    code = "RPR006"
    name = "rng-key-paths"
    description = (
        "derive_rng call sites must use constant, pairwise-distinct key "
        "paths; ambiguous or unifiable keys derive correlated streams"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        cfg = project.config
        sites: List[Tuple[ModuleSummary, RngSite]] = []
        for summary in project.iter_modules():
            if any(summary.rel_path.endswith(sfx) for sfx in cfg.rng_exempt):
                continue
            for site in summary.rng_sites:
                sites.append((summary, site))

        unambiguous: List[Tuple[ModuleSummary, RngSite]] = []
        for summary, site in sites:
            if _is_ambiguous(site):
                shown = _key_text(site) if site.tokens else "no tokens"
                yield self.project_diag(
                    summary.rel_path, site.lineno, site.col,
                    f"derive_rng call in {site.func} has no constant leading "
                    f"key token ({shown}); start the key with a unique "
                    "string literal so the child stream is auditable",
                )
            else:
                unambiguous.append((summary, site))

        for i, (sum_a, site_a) in enumerate(unambiguous):
            for sum_b, site_b in unambiguous[i + 1:]:
                if not _can_unify(site_a, site_b):
                    continue
                yield self.project_diag(
                    sum_b.rel_path, site_b.lineno, site_b.col,
                    f"derive_rng key {_key_text(site_b)} in {site_b.func} "
                    f"can collide with the call at {sum_a.rel_path}:"
                    f"{site_a.lineno} ({_key_text(site_a)} in {site_a.func});"
                    " same-arity keys whose tokens unify derive correlated "
                    "streams — disambiguate the literal label",
                )
