"""RPR007: process-boundary purity for executor-submitted functions.

``simulate_years_parallel`` promises byte-identical results at any worker
count, which only holds if every function handed to a process pool is a
pure function of its arguments: no module-level mutable state (each worker
has its *own* copy, so writes silently diverge and reads see whatever the
fork captured) and no ambient randomness outside the ``derive_rng``
discipline.

The rule walks the conservative call graph from every ``pool.submit(f,
...)`` / ``pool.map(f, ...)`` site inside the configured
``executor-modules`` and flags any reachable project function that touches
a module-level mutable global (read or write) or calls into ambient
randomness (``random.*``, ``numpy.random.*``, ``os.urandom``,
``secrets.*``, ``uuid.uuid4``).  Diagnostics land on the submit site —
that is where the process boundary is crossed and where the fix (pass the
state in, or re-key with ``derive_rng``) belongs.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, ProjectRule
from repro.lint.project import ProjectContext


def _short_chain(chain: List[str]) -> str:
    return " -> ".join(name.rsplit(".", 1)[-1] for name in chain)


@REGISTRY.register
class ProcessSafetyRule(ProjectRule):
    code = "RPR007"
    name = "process-safety"
    description = (
        "functions submitted to executors in executor-modules must not "
        "reach module-level mutable state or non-derive_rng randomness"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        cfg = project.config
        for summary in project.iter_modules():
            if not any(
                summary.rel_path.endswith(sfx) for sfx in cfg.executor_modules
            ):
                continue
            for site in summary.submit_sites:
                entry = project.function(site.callee)
                if entry is None:
                    continue
                seen: Set[Tuple[str, str, str]] = set()
                chains = project.reachable(site.callee)
                for name in sorted(chains):
                    found = project.function(name)
                    if found is None:
                        continue
                    mod, fsum = found
                    mutable = set(mod.mutable_globals)
                    for gname, action, _lineno in fsum.global_uses:
                        if gname not in mutable and action != "write":
                            continue
                        key = ("global", name, gname)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.project_diag(
                            summary.rel_path, site.lineno, site.col,
                            f"{site.method}({site.callee_text}, ...) crosses "
                            "a process boundary but reaches module-level "
                            f"mutable state '{gname}' of {mod.module} "
                            f"(via {_short_chain(chains[name])}); workers "
                            "each fork their own copy, so pass the state in "
                            "as an argument instead",
                        )
                    for dotted, _lineno in fsum.ext_reads:
                        owner, _, attr = dotted.rpartition(".")
                        owner_mod = project.by_name.get(owner)
                        if owner_mod is None:
                            continue
                        if attr not in owner_mod.mutable_globals:
                            continue
                        key = ("ext", name, dotted)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.project_diag(
                            summary.rel_path, site.lineno, site.col,
                            f"{site.method}({site.callee_text}, ...) crosses "
                            "a process boundary but reads module-level "
                            f"mutable state {dotted} "
                            f"(via {_short_chain(chains[name])}); pass the "
                            "value in as an argument instead",
                        )
                    for target, _lineno in fsum.random_calls:
                        key = ("random", name, target)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield self.project_diag(
                            summary.rel_path, site.lineno, site.col,
                            f"{site.method}({site.callee_text}, ...) crosses "
                            "a process boundary but reaches ambient "
                            f"randomness {target} "
                            f"(via {_short_chain(chains[name])}); derive a "
                            "keyed child stream with derive_rng and pass it "
                            "in",
                        )
