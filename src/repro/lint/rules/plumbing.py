"""RPR002 — RNG plumbing: generators come from repro._util.rng.

Two failure modes:

* constructing generators directly (``np.random.default_rng(seed)``,
  ``Generator``/``RandomState``/``SeedSequence``) outside ``_util/rng.py`` —
  such streams bypass the central derivation, so their draws are not stable
  under stream-derivation reordering the way ``derive_rng`` children are;
* accepting the public ``RandomState`` union (``int | Generator | None``)
  and then drawing on the parameter directly — an ``int`` or ``None`` has no
  ``.integers``/``.random``; the parameter must be normalised with
  ``as_generator`` (or routed through ``derive_rng``/``spawn_rngs``) first.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, FileContext, Rule
from repro.lint.rules.common import annotation_text, import_aliases, resolve

_DIRECT_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
}

#: Methods that actually draw from (or fork) a Generator.
_DRAW_METHODS = {
    "random", "integers", "uniform", "normal", "lognormal", "exponential",
    "poisson", "binomial", "geometric", "gamma", "beta", "choice", "shuffle",
    "permutation", "permuted", "standard_normal", "standard_exponential",
    "standard_gamma", "bytes", "spawn", "multivariate_normal", "pareto",
    "weibull", "zipf", "dirichlet", "multinomial", "hypergeometric",
}

_NORMALISERS = {"as_generator", "derive_rng", "spawn_rngs"}


@REGISTRY.register
class RngPlumbingRule(Rule):
    code = "RPR002"
    name = "rng-plumbing"
    description = (
        "generators constructed outside repro._util.rng, or RandomState "
        "parameters drawn from without as_generator normalisation"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.matches_suffix(ctx.config.rng_exempt):
            return
        aliases = import_aliases(ctx.tree)
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                target = resolve(node.func, aliases)
                if target in _DIRECT_CONSTRUCTORS:
                    leaf = target.rsplit(".", 1)[1]
                    yield self.diag(
                        ctx, node,
                        f"direct numpy.random.{leaf}(...) construction; derive "
                        "streams via repro._util.rng (as_generator/derive_rng/"
                        "spawn_rngs) so draws stay stable as consumers are added",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx, func: ast.AST) -> Iterator[Diagnostic]:
        state_params = self._randomstate_params(func)
        if not state_params:
            return
        normalised = self._normalised_names(func)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in state_params
                and base.id not in normalised
                and node.func.attr in _DRAW_METHODS
            ):
                yield self.diag(
                    ctx, node,
                    f"parameter `{base.id}` is a RandomState (may be an int or "
                    f"None) but `.{node.func.attr}` is drawn from it directly; "
                    "normalise with as_generator(...) first",
                )

    @staticmethod
    def _randomstate_params(func) -> Set[str]:
        params = set()
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if "RandomState" in annotation_text(arg.annotation):
                params.add(arg.arg)
        return params

    @staticmethod
    def _normalised_names(func) -> Set[str]:
        """Parameter names that are rebound via a normaliser in the body,
        e.g. ``rng = as_generator(rng)``."""
        rebound: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _NORMALISERS
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        rebound.add(target.id)
        return rebound
