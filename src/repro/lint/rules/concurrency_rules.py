"""RPR015–RPR019: lockset / lock-order / blocking concurrency rules (pass 4).

These rules consume the solved whole-program
:class:`~repro.lint.concurrency.ConcurrencyAnalysis` — entry locksets
(must/may), the transitive acquisition closure, thread entry points and
per-attribute inferred guards — and audit the recorded events:

* **RPR015 unguarded-shared-state** — an attribute of a lock-owning class
  has writes under an inferred guard, yet is also read or written on a
  path that provably holds none of it (Eraser's lockset discipline with
  an initialisation-phase refinement), or is written without any guard
  from a thread entry point (``threading.Thread`` target, registered
  callback, socketserver ``do_*`` handler).
* **RPR016 lock-order-inversion** — the global lock-acquisition graph
  (edges ``A → B`` when ``B`` is acquired while ``A`` may be held,
  through the call graph) contains a cycle, or a non-reentrant lock is
  re-acquired while already held.
* **RPR017 blocking-call-under-lock** — a call matching the configurable
  ``blocking-calls`` blocklist (``Future.result/cancel``,
  ``Executor.shutdown``, ``Thread.join``, file/socket I/O,
  ``time.sleep``) executes while a lock may be held — the PR 9
  ``cancel()`` bug class, where ``Future.cancel()`` blocked on done
  callbacks with the queue lock held.
* **RPR018 callback-reentrancy** — a callable registered via
  ``add_done_callback`` or ``signal.signal`` re-acquires a non-reentrant
  lock that may already be held at the registration site; a settled
  ``Future`` runs its callbacks *synchronously on the registering
  thread*, so the callback deadlocks against its own caller — the other
  PR 9 bug class (``JobQueue``'s lock had to become an ``RLock``).
* **RPR019 atomicity-split** — check-then-act on guarded state: a value
  read under a lock is written back under a *later, separate*
  acquisition of the same lock without re-validation, so the invariant
  checked in the first scope may no longer hold in the second.

Suppressions must state the protecting invariant, e.g.::

    future.result()  # repro-lint: disable=RPR017 — future is settled here

All five respect inline suppressions, the baseline, ``--select`` /
``--ignore`` and path-scoped rule sets like every other rule, and solve
in sorted order so diagnostics are byte-identical at any ``--workers``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.concurrency import (
    ConcurrencyAnalysis,
    ConcurrencyFunction,
    match_blocking,
    short_lock,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, ProjectRule
from repro.lint.project import ProjectContext

#: Methods that run before the object escapes its constructor.
_CONSTRUCTOR_METHODS = ("__init__", "__new__", "__del__", "__post_init__")


def _short_fn(fqname: str) -> str:
    parts = fqname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else fqname


class _ConcurrencyRule(ProjectRule):
    """Common driver: solve the concurrency facts once (memoised on the
    project context) and visit them in sorted function order."""

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        analysis = project.concurrency_analysis()
        yield from self.check_concurrency(project, analysis)

    def check_concurrency(
        self, project: ProjectContext, analysis: ConcurrencyAnalysis
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError


def _class_accesses(
    analysis: ConcurrencyAnalysis, cls: str
) -> Dict[str, List[Tuple[ConcurrencyFunction, Dict[str, Any]]]]:
    """Per-attribute access events across a class's non-constructor,
    non-init-phase methods (deferred accesses excluded: a lambda body
    may run synchronously under the enclosing locks, so its empty
    lockset would be a false witness)."""
    lock_attrs = analysis.lock_attrs(cls)
    out: Dict[str, List[Tuple[ConcurrencyFunction, Dict[str, Any]]]] = {}
    for fn in analysis.iter_functions():
        if fn.owner != cls:
            continue
        if fn.leaf in _CONSTRUCTOR_METHODS or fn.fqname in analysis.init_only:
            continue
        for event in fn.events:
            if event["k"] != "access" or event["deferred"]:
                continue
            if event["attr"] in lock_attrs:
                continue
            out.setdefault(event["attr"], []).append((fn, event))
    return out


@REGISTRY.register
class UnguardedSharedStateRule(_ConcurrencyRule):
    code = "RPR015"
    name = "unguarded-shared-state"
    description = (
        "an attribute of a lock-owning class is accessed both under its "
        "inferred guard and on a lock-free path (data race)"
    )

    def check_concurrency(
        self, project: ProjectContext, analysis: ConcurrencyAnalysis
    ) -> Iterator[Diagnostic]:
        guards = analysis.attr_guards()
        for cls in sorted(analysis.class_bases):
            if not analysis.class_locks(cls):
                continue
            accesses = _class_accesses(analysis, cls)
            for attr in sorted(accesses):
                events = accesses[attr]
                guard = guards.get((cls, attr), set())
                guarded_writes = [
                    (fn, ev) for fn, ev in events
                    if ev["mode"] == "write" and analysis.held_must(fn, ev)
                ]
                seen: Set[Tuple[int, int]] = set()
                if guard and guarded_writes:
                    wfn, wev = guarded_writes[0]
                    witness = f"{wfn.rel_path}:{wev['lineno']}"
                    glabel = ", ".join(
                        short_lock(lock) for lock in sorted(guard)
                    )
                    for fn, ev in events:
                        if analysis.held_must(fn, ev) & guard:
                            continue
                        site = (ev["lineno"], ev["col"])
                        if site in seen:
                            continue
                        seen.add(site)
                        verb = ("written" if ev["mode"] == "write"
                                else "read")
                        yield self.project_diag(
                            fn.rel_path, ev["lineno"], ev["col"],
                            f"attribute '{attr}' of '{_short_fn(cls)}' is "
                            f"guarded by {glabel} (written under it at "
                            f"{witness}) but {verb} in "
                            f"'{_short_fn(fn.fqname)}' without holding it; "
                            f"acquire {glabel} or suppress stating the "
                            f"protecting invariant",
                        )
                    continue
                # No inferred guard: a write from a thread entry point
                # still races against every other accessor.
                accessors = {fn.fqname for fn, _ in events}
                if len(accessors) < 2:
                    continue
                for fn, ev in events:
                    if ev["mode"] != "write":
                        continue
                    if fn.fqname not in analysis.thread_entries:
                        continue
                    if analysis.held_must(fn, ev):
                        continue
                    site = (ev["lineno"], ev["col"])
                    if site in seen:
                        continue
                    seen.add(site)
                    yield self.project_diag(
                        fn.rel_path, ev["lineno"], ev["col"],
                        f"attribute '{attr}' of lock-owning class "
                        f"'{_short_fn(cls)}' is written from thread entry "
                        f"point '{_short_fn(fn.fqname)}' without any lock "
                        f"while other methods also touch it; guard the "
                        f"write or suppress stating the protecting "
                        f"invariant",
                    )


@REGISTRY.register
class LockOrderInversionRule(_ConcurrencyRule):
    code = "RPR016"
    name = "lock-order-inversion"
    description = (
        "two locks are acquired in opposite orders on different paths "
        "(deadlock), or a non-reentrant lock is re-acquired while held"
    )

    def check_concurrency(
        self, project: ProjectContext, analysis: ConcurrencyAnalysis
    ) -> Iterator[Diagnostic]:
        edges: Dict[Tuple[str, str], Tuple[str, int, int, str]] = {}
        for fn in analysis.iter_functions():
            for event in fn.events:
                if event["k"] != "acquire" or event["deferred"]:
                    continue
                lock = event["lock"]
                if lock not in analysis.locks:
                    continue
                held_before = {
                    pair[0] for pair in event.get("held", [])
                    if pair[0] in analysis.locks
                }
                may_held = held_before | analysis.entry_may.get(
                    fn.fqname, set()
                )
                for prior in sorted(may_held):
                    if prior == lock:
                        if analysis.kind(lock) != "lock":
                            continue
                        if lock in held_before:
                            how = "already held in this function"
                        else:
                            chain = analysis.entry_chain(fn.fqname, lock)
                            how = ("may already be held by a caller (" +
                                   " <- ".join(_short_fn(f)
                                               for f in chain) + ")")
                        yield self.project_diag(
                            fn.rel_path, event["lineno"], event["col"],
                            f"non-reentrant lock {short_lock(lock)} is "
                            f"re-acquired while {how}; this deadlocks — "
                            f"make it an RLock or restructure so the lock "
                            f"is taken once",
                        )
                        continue
                    edges.setdefault(
                        (prior, lock),
                        (fn.rel_path, event["lineno"], event["col"],
                         fn.fqname),
                    )
        yield from self._cycles(edges)

    def _cycles(
        self, edges: Dict[Tuple[str, str], Tuple[str, int, int, str]]
    ) -> Iterator[Diagnostic]:
        graph: Dict[str, Set[str]] = {}
        for (a, b) in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for component in _sccs(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            internal = sorted(
                (a, b) for (a, b) in edges
                if a in component and b in component
            )
            spots = []
            for a, b in internal:
                rel, line, _, _ = edges[(a, b)]
                spots.append(
                    f"{short_lock(a)} -> {short_lock(b)} at {rel}:{line}"
                )
            rel, line, col, _ = min(edges[e] for e in internal)
            names = ", ".join(short_lock(m) for m in members)
            yield self.project_diag(
                rel, line, col,
                f"lock-order inversion among {names}: the acquisition "
                f"graph has a cycle ({'; '.join(spots)}); impose one "
                f"global acquisition order",
            )


def _sccs(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's strongly-connected components, iterative, sorted input."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    out: List[Set[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (root, iter(sorted(graph[root])))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                out.append(component)
    return out


@REGISTRY.register
class BlockingCallUnderLockRule(_ConcurrencyRule):
    code = "RPR017"
    name = "blocking-call-under-lock"
    description = (
        "a call from the blocking-calls blocklist (Future.result/cancel, "
        "Executor.shutdown, I/O, time.sleep) runs while a lock may be held"
    )

    def check_concurrency(
        self, project: ProjectContext, analysis: ConcurrencyAnalysis
    ) -> Iterator[Diagnostic]:
        blocking: Sequence[str] = list(project.config.blocking_calls)
        for fn in analysis.iter_functions():
            for event in fn.events:
                if event["k"] != "call":
                    continue
                held = analysis.held_may(fn, event)
                if not held:
                    continue
                pattern = match_blocking(event, blocking, analysis.functions)
                if pattern is None:
                    continue
                local = {
                    pair[0] for pair in event.get("held", [])
                    if pair[0] in analysis.locks
                }
                parts = []
                for lock in sorted(held):
                    if lock in local:
                        parts.append(f"{short_lock(lock)} (held here)")
                    else:
                        chain = analysis.entry_chain(fn.fqname, lock)
                        parts.append(
                            f"{short_lock(lock)} (held on entry via "
                            + " <- ".join(_short_fn(f) for f in chain)
                            + ")"
                        )
                yield self.project_diag(
                    fn.rel_path, event["lineno"], event["col"],
                    f"'{event['text']}' matches blocking-call pattern "
                    f"'{pattern}' while {'; '.join(parts)}; every other "
                    f"thread stalls behind this call — release the lock "
                    f"around it, or suppress stating the invariant that "
                    f"makes it non-blocking",
                )


@REGISTRY.register
class CallbackReentrancyRule(_ConcurrencyRule):
    code = "RPR018"
    name = "callback-reentrancy"
    description = (
        "a callback registered while a non-reentrant lock may be held "
        "re-acquires that lock (settled futures fire synchronously)"
    )

    def check_concurrency(
        self, project: ProjectContext, analysis: ConcurrencyAnalysis
    ) -> Iterator[Diagnostic]:
        for fn in analysis.iter_functions():
            for event in fn.events:
                if event["k"] != "register":
                    continue
                held = analysis.held_may(fn, event)
                if not held:
                    continue
                target = event.get("target")
                if target is None or target not in analysis.functions:
                    continue
                for lock in sorted(analysis.acquires(target) & held):
                    if analysis.kind(lock) != "lock":
                        continue
                    if event["via"] == "signal":
                        how = (
                            "a signal handler can preempt the holder on "
                            "the same thread"
                        )
                    else:
                        how = (
                            "a settled Future runs done callbacks "
                            "synchronously on the registering thread"
                        )
                    yield self.project_diag(
                        fn.rel_path, event["lineno"], event["col"],
                        f"callback '{_short_fn(target)}' re-acquires "
                        f"non-reentrant lock {short_lock(lock)}, which may "
                        f"already be held at this registration site; "
                        f"{how}, so the callback deadlocks against its "
                        f"caller — make the lock an RLock or register "
                        f"outside the lock",
                    )


@REGISTRY.register
class AtomicitySplitRule(_ConcurrencyRule):
    code = "RPR019"
    name = "atomicity-split"
    description = (
        "guarded state is read under one lock acquisition and written "
        "under a later one without re-validation (check-then-act race)"
    )

    def check_concurrency(
        self, project: ProjectContext, analysis: ConcurrencyAnalysis
    ) -> Iterator[Diagnostic]:
        guards = analysis.attr_guards()
        for fn in analysis.iter_functions():
            if fn.owner is None:
                continue
            if (fn.leaf in _CONSTRUCTOR_METHODS
                    or fn.fqname in analysis.init_only):
                continue
            reads: Dict[str, List[Tuple[Set[Tuple[str, str]], int]]] = {}
            for event in fn.events:
                if event["k"] != "access" or event["deferred"]:
                    continue
                attr = event["attr"]
                scoped = analysis.held_scoped(fn, event)
                if event["mode"] == "read":
                    reads.setdefault(attr, []).append(
                        (scoped, event["lineno"])
                    )
                    continue
                guard = guards.get((fn.owner, attr), set())
                for lock, scope in sorted(scoped):
                    if lock not in guard:
                        continue
                    prior = [
                        line
                        for held, line in reads.get(attr, [])
                        if any(l == lock and s != scope for l, s in held)
                    ]
                    revalidated = any(
                        any(l == lock and s == scope for l, s in held)
                        for held, _ in reads.get(attr, [])
                    )
                    if prior and not revalidated:
                        yield self.project_diag(
                            fn.rel_path, event["lineno"], event["col"],
                            f"check-then-act on '{attr}' in "
                            f"'{_short_fn(fn.fqname)}': read under "
                            f"{short_lock(lock)} at line {prior[0]}, the "
                            f"lock was released, and written here under a "
                            f"separate acquisition without re-reading; "
                            f"hold the lock across the whole sequence or "
                            f"re-validate the state in the second scope",
                        )
                        break
