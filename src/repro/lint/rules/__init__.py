"""Rule modules; importing this package registers every rule into
:data:`repro.lint.engine.REGISTRY`."""

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    batch_flow,
    concurrency_rules,
    determinism,
    float_eq,
    header_fields,
    immutability,
    plumbing,
    process_safety,
    rng_keys,
    schema_drift,
    typeflow_rules,
)

__all__ = [
    "determinism",
    "plumbing",
    "header_fields",
    "immutability",
    "float_eq",
    "rng_keys",
    "process_safety",
    "schema_drift",
    "batch_flow",
    "typeflow_rules",
    "concurrency_rules",
]
