"""Rule modules; importing this package registers every rule into
:data:`repro.lint.engine.REGISTRY`."""

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    determinism,
    float_eq,
    header_fields,
    immutability,
    plumbing,
)

__all__ = [
    "determinism",
    "plumbing",
    "header_fields",
    "immutability",
    "float_eq",
]
