"""Shared AST helpers for the rule modules.

The implementation lives in :mod:`repro.lint._ast` (outside this package,
so the project pass can import it without triggering rule registration);
this module re-exports the public names the rule modules use.
"""

from repro.lint._ast import (  # noqa: F401
    BATCH_COLUMNS,
    FIELD_BITS,
    annotation_text,
    dotted_name,
    import_aliases,
    int_literal,
    resolve,
)

__all__ = [
    "BATCH_COLUMNS",
    "FIELD_BITS",
    "annotation_text",
    "dotted_name",
    "import_aliases",
    "int_literal",
    "resolve",
]
