"""RPR009: interprocedural ``PacketBatch`` column mutation.

RPR004 catches in-place writes to batch columns inside one file; it is
blind to a column *escaping* — ``helper(batch.src_ip)`` where ``helper``
(possibly in another module, possibly several calls deep) mutates the
array it received.  ``PacketBatch`` hands out non-writeable views at
runtime, but code paths that convert or copy defensively can still
launder a writeable alias, and the failure is a corrupted shared capture.

Pass 1 records every call that passes a ``<name>.<column>`` attribute
(column ∈ the wire-format field set) positionally to a resolvable project
function, plus per-function in-place parameter mutations and
whole-parameter forwarding.  This rule closes mutation over the
forwarding graph (fixpoint) and flags call sites whose column argument
lands on a mutated parameter.  Files under ``immutability-exempt`` (the
``PacketBatch`` definition site) are skipped.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, ProjectRule
from repro.lint.project import ProjectContext, target_param_index


@REGISTRY.register
class BatchColumnFlowRule(ProjectRule):
    code = "RPR009"
    name = "batch-column-flow"
    description = (
        "PacketBatch columns must not be passed to functions that mutate "
        "the received array in place (directly or via forwarding)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Diagnostic]:
        cfg = project.config
        mutated = project.mutated_param_table()
        for summary in project.iter_modules():
            if any(
                summary.rel_path.endswith(sfx)
                for sfx in cfg.immutability_exempt
            ):
                continue
            for arg in summary.column_args:
                entry = project.function(arg.callee)
                if entry is None:
                    continue
                _, fsum = entry
                idx = target_param_index(fsum, arg.arg_index)
                if idx not in mutated.get(arg.callee, set()):
                    continue
                param = (
                    fsum.params[idx] if idx < len(fsum.params) else f"#{idx}"
                )
                yield self.project_diag(
                    summary.rel_path, arg.lineno, arg.col,
                    f"PacketBatch column '{arg.column}' ({arg.arg_text}) is "
                    f"passed to {arg.callee}, which mutates parameter "
                    f"'{param}' in place; copy the column first "
                    "(np.array(col)) or make the callee pure",
                )
