"""RPR004 — batch immutability: no in-place writes to PacketBatch columns.

``PacketBatch`` is documented (and, since this rule landed, runtime-
enforced) as immutable: every transformation returns a new batch.  This
rule catches the static shapes of in-place mutation:

* subscript stores / augmented stores into a column attribute
  (``batch.ttl[mask] = 0``, ``batch.flags[i] |= ACK``);
* any store into ``._cols`` (rebinding or subscript), outside the defining
  module (``immutability-exempt``, default ``telescope/packet.py``);
* in-place mutator calls on a column attribute (``batch.time.sort()``,
  ``batch.seq.fill(0)``, ``setflags``...).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import REGISTRY, FileContext, Rule
from repro.lint.rules.common import BATCH_COLUMNS

_MUTATOR_METHODS = {
    "sort", "fill", "partition", "put", "resize", "setflags", "byteswap",
}


@REGISTRY.register
class BatchImmutabilityRule(Rule):
    code = "RPR004"
    name = "batch-immutability"
    description = (
        "in-place mutation of PacketBatch columns or its _cols store; "
        "transformations must return new batches"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        exempt = ctx.matches_suffix(ctx.config.immutability_exempt)
        for node in ctx.walk():
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    yield from self._check_store(ctx, node, target, exempt)
            elif isinstance(node, ast.Call):
                yield from self._check_mutator_call(ctx, node, exempt)

    def _check_store(self, ctx, stmt, target, exempt: bool) -> Iterator[Diagnostic]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_store(ctx, stmt, element, exempt)
            return
        if isinstance(target, ast.Attribute) and target.attr == "_cols":
            if not exempt:
                yield self.diag(
                    ctx, stmt,
                    "rebinding `._cols` outside the PacketBatch definition "
                    "breaks the immutability invariant",
                )
            return
        if isinstance(target, ast.Subscript):
            if self._mentions_cols(target.value):
                yield self.diag(
                    ctx, stmt,
                    "subscript store into `._cols` mutates a PacketBatch in "
                    "place; build a new batch instead",
                )
            else:
                column = self._column_attr(target.value)
                if column is not None:
                    yield self.diag(
                        ctx, stmt,
                        f"in-place write to batch column `.{column}`; "
                        "PacketBatch transformations must return new batches",
                    )

    def _check_mutator_call(self, ctx, node: ast.Call, exempt: bool) -> Iterator[Diagnostic]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS):
            return
        column = self._column_attr(func.value)
        if column is None and not (self._mentions_cols(func.value) and not exempt):
            return
        where = f"column `.{column}`" if column else "`._cols` contents"
        yield self.diag(
            ctx, node,
            f"`.{func.attr}()` mutates {where} in place; use the copying "
            "equivalent (np.sort, full-array expressions) on a new batch",
        )

    @staticmethod
    def _column_attr(node: ast.AST) -> Optional[str]:
        """Column name when ``node`` is ``<expr>.<column>`` (or a subscript
        of it, e.g. ``x._cols['ttl']``)."""
        if isinstance(node, ast.Attribute) and node.attr in BATCH_COLUMNS:
            return node.attr
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Attribute) and base.attr == "_cols":
                key = node.slice
                if isinstance(key, ast.Constant) and key.value in BATCH_COLUMNS:
                    return str(key.value)
        return None

    @staticmethod
    def _mentions_cols(node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Attribute) and sub.attr == "_cols"
            for sub in ast.walk(node)
        )
