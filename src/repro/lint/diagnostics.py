"""Diagnostic records emitted by lint rules.

A :class:`Diagnostic` pins a finding to a file/line/column, carries the rule
code (``RPR001``…) and a human-readable message, and knows how to render
itself for terminals and how to reduce itself to the stable key used by the
baseline (path + code + line — columns are deliberately excluded so that
intra-line edits do not invalidate a grandfathered finding).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class Severity(enum.Enum):
    """How seriously a finding counts toward the exit status.

    ``ERROR`` findings fail the run; ``WARNING`` findings are reported but do
    not affect the exit code.  Rules declare a default severity and the
    ``warn`` list in ``[tool.repro-lint]`` can demote codes per project.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, what rule, what is wrong."""

    path: str  #: posix-style path relative to the lint root
    line: int  #: 1-based line number
    col: int  #: 0-based column offset (ast convention)
    code: str  #: rule code, e.g. ``RPR001``
    message: str
    severity: Severity = Severity.ERROR

    def baseline_key(self) -> Tuple[str, str, int]:
        """The identity used for baseline matching."""
        return (self.path, self.code, self.line)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """``path:line:col: CODE [severity] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )
