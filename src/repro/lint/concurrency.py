"""Concurrency pass (pass 4): lockset, lock-order, and blocking analysis.

PR 9 turned the reproduction into a threaded HTTP service and hit two
concurrency bugs by hand: ``JobQueue``'s lock had to become reentrant
because a settled :class:`~concurrent.futures.Future` runs
``add_done_callback`` callbacks synchronously, and ``cancel()`` had to
release the lock around ``Future.cancel()`` (which blocks on the done
callbacks).  This module makes that bug class machine-checked, in the
spirit of Eraser-style lockset race detection and RacerD's compositional
reasoning, on top of the existing two-pass summary architecture:

* :class:`ConcurrencyExtractor` runs once per function during pass 1 and
  emits a JSON-serialisable event list — lock acquisitions (``with
  self._lock:`` scopes, with the locks already held at that point),
  ``self``-attribute reads/writes, project calls (flagged *deferred* when
  they sit inside a lambda or nested ``def``, i.e. run later on an
  arbitrary thread), callback registrations (``add_done_callback``,
  ``signal.signal``) and thread spawns.  Lock objects themselves
  (``self._lock = threading.Lock()``, module-level ``LOCK =
  threading.Lock()``) and class bases are indexed on the
  :class:`~repro.lint.project.ModuleSummary`.  Everything is cached with
  the summary, so warm runs never re-parse.

* :class:`ConcurrencyAnalysis` stitches the summaries into whole-program
  facts, solved to a fixpoint in sorted function order so diagnostics are
  byte-identical at any ``--workers``:

  - **entry locksets** — *must* (intersection over non-deferred call
    sites: a ``_locked``-suffix helper only ever called under the lock
    inherits it) and *may* (union: any path that can hold the lock);
  - **acquisition closure** — locks a call may take, transitively;
  - **thread entries** — spawn targets, registered callbacks, signal
    handlers, and ``do_*`` methods of socketserver handler classes, all
    of which start with an empty lockset;
  - **initialisation phase** — methods reachable only from ``__init__``
    of their own class are excluded from race reporting (the object is
    not yet visible to other threads), Eraser's init-phase refinement;
  - **inferred guards** — per attribute of a lock-owning class, the
    intersection of locks held over its guarded accesses.

The RPR015–RPR019 rules in :mod:`repro.lint.rules.concurrency_rules`
evaluate these facts.  The vocabulary below (lock constructors, blocking
defaults, handler bases) is fingerprinted into the summary-cache salt:
editing it invalidates every cached summary.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Container,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint._ast import resolve

#: Bump on any change to the extraction or solving semantics.
CONCURRENCY_VERSION = 1

#: Canonical constructors whose result is a lock, with its kind.
#: ``Condition``/``Semaphore`` are treated as non-reentrant: re-acquiring
#: them on the same thread blocks, which is what RPR018 cares about.
LOCK_CONSTRUCTORS: Dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
}

#: Constructors that spawn a thread; their ``target=`` runs lock-free.
THREAD_CONSTRUCTORS: Tuple[str, ...] = ("threading.Thread", "threading.Timer")

#: Base classes whose ``do_*``/``handle`` methods are called per-request
#: on server threads (thread entry points with an empty lockset).
HANDLER_BASES: Tuple[str, ...] = (
    "BaseHTTPRequestHandler",
    "SimpleHTTPRequestHandler",
    "StreamRequestHandler",
    "DatagramRequestHandler",
    "BaseRequestHandler",
)

#: Default RPR017 blocklist (overridable via ``[tool.repro-lint]
#: blocking-calls``).  ``*.leaf`` matches any attribute call with that
#: leaf name on a non-literal receiver; a plain dotted name matches the
#: resolved callee exactly; a bare name matches a builtin call.
DEFAULT_BLOCKING_CALLS: Tuple[str, ...] = (
    "*.result",
    "*.cancel",
    "*.shutdown",
    "*.join",
    "*.wait",
    "*.acquire",
    "*.read_text",
    "*.write_text",
    "*.read_bytes",
    "*.write_bytes",
    "*.recv",
    "*.sendall",
    "*.connect",
    "*.accept",
    "time.sleep",
    "subprocess.run",
    "subprocess.check_call",
    "subprocess.check_output",
    "open",
)

#: Attribute-call leaves that mutate the receiver in place — a call like
#: ``self._jobs.pop(k)`` is a *write* of ``_jobs`` for lockset purposes.
MUTATOR_LEAVES: Set[str] = {
    "append", "extend", "insert", "clear", "update", "pop", "popitem",
    "setdefault", "remove", "discard", "add", "sort", "reverse",
    "appendleft", "extendleft", "fill", "put", "resize",
}

#: Methods that run in single-threaded construction context.
_CONSTRUCTOR_METHODS: Tuple[str, ...] = (
    "__init__", "__new__", "__del__", "__post_init__",
)

#: Scope id of locks held on function entry (vs. a local ``with`` scope).
ENTRY_SCOPE = "entry"

_TEXT_CAP = 80


def concurrency_fingerprint() -> str:
    """Content fingerprint of the concurrency vocabulary (part of the
    cache salt — editing the lock/blocking/handler tables re-analyses
    every file)."""
    material = {
        "version": CONCURRENCY_VERSION,
        "locks": LOCK_CONSTRUCTORS,
        "threads": list(THREAD_CONSTRUCTORS),
        "handlers": list(HANDLER_BASES),
        "blocking": list(DEFAULT_BLOCKING_CALLS),
        "mutators": sorted(MUTATOR_LEAVES),
        "constructors": list(_CONSTRUCTOR_METHODS),
    }
    digest = hashlib.blake2b(digest_size=8)
    digest.update(json.dumps(material, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def lock_kind(value: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Kind ('lock'/'rlock') when ``value`` constructs a known lock."""
    if not isinstance(value, ast.Call):
        return None
    target = resolve(value.func, aliases)
    if target is None:
        return None
    return LOCK_CONSTRUCTORS.get(target)


def short_lock(canon: str) -> str:
    """Human-sized spelling of a canonical lock id: last two components."""
    parts = canon.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else canon


def _text(node: ast.AST) -> str:
    try:
        rendered = ast.unparse(node)
    except Exception:  # pragma: no cover - malformed expression
        return "<expr>"
    return rendered if len(rendered) <= _TEXT_CAP else rendered[:_TEXT_CAP - 1] + "…"


# ---------------------------------------------------------------------------
# pass 1: per-function event extraction
# ---------------------------------------------------------------------------


@dataclass
class FunctionConcurrency:
    """Serialisable concurrency record of one function.

    ``events`` is an ordered list of dicts.  Common fields: ``k`` (kind),
    ``lineno``/``col``, ``held`` (``[lock, scope]`` pairs live at the
    event — local ``with`` scopes only; entry locks are solved in pass 2)
    and ``deferred`` (the event sits inside a lambda/nested ``def`` and
    runs later, on an arbitrary thread, with no caller locks).  Per kind:

    - ``acquire``: ``lock`` (canonical id), ``scope`` (syntactic scope id);
    - ``access``: ``attr`` (a ``self`` attribute), ``mode`` (read/write);
    - ``call``: ``callee`` (resolved dotted name or None), ``leaf``
      (attribute/bare name), ``recv`` (receiver shape: self/name/attr/
      call/const/bare/other), ``text``;
    - ``register``: ``target`` (resolved callback or None), ``via``
      (add_done_callback/signal), ``text``;
    - ``spawn``: ``target`` (resolved thread target or None), ``text``.
    """

    events: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"events": self.events}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionConcurrency":
        return cls(events=[dict(e) for e in data.get("events", [])])


class ConcurrencyExtractor:
    """Single recursive walk of one function body, tracking held locks."""

    def __init__(
        self,
        module: str,
        klass: Optional[str],
        aliases: Dict[str, str],
        toplevel_defs: Container[str],
        resolver: Callable[[ast.Call], Optional[str]],
    ) -> None:
        self._module = module
        self._klass = klass
        self._aliases = aliases
        self._toplevel = toplevel_defs
        self._resolver = resolver
        self._events: List[Dict[str, Any]] = []
        self._held: List[Tuple[str, str]] = []
        self._deferred = 0

    def extract(self, func: ast.AST) -> FunctionConcurrency:
        body = getattr(func, "body", [])
        for stmt in body:
            self._visit(stmt)
        return FunctionConcurrency(events=self._events)

    # -- event plumbing -----------------------------------------------------

    def _event(self, node: ast.AST, kind: str, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "k": kind,
            "lineno": getattr(node, "lineno", 1),
            "col": getattr(node, "col_offset", 0),
            "held": [[lock, scope] for lock, scope in self._held],
            "deferred": bool(self._deferred),
        }
        record.update(fields)
        self._events.append(record)

    def _access(self, node: ast.AST, attr: str, mode: str) -> None:
        if self._klass is None:
            return
        self._event(node, "access", attr=attr, mode=mode)

    # -- shapes -------------------------------------------------------------

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        """Attribute name when ``node`` is ``self.X``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _lock_ref(self, expr: ast.AST) -> Optional[str]:
        """Canonical lock id when ``expr`` names a lockable object.

        ``self._lock`` in class ``C`` of module ``M`` → ``M.C._lock``;
        a bare module-level name → ``M.NAME``.  Pass 2 filters the
        result against the global lock-definition table, so shapes that
        merely look lock-like resolve to nothing downstream.
        """
        if isinstance(expr, ast.Name):
            return f"{self._module}.{expr.id}"
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and self._klass is not None
        ):
            return f"{self._module}.{self._klass}.{expr.attr}"
        return None

    # -- the walk -----------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._visit_deferred(node.body)
            return
        if isinstance(node, ast.Lambda):
            self._visit_deferred([node.body])
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return
        if isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None:
                mode = (
                    "write"
                    if isinstance(node.ctx, (ast.Store, ast.Del))
                    else "read"
                )
                self._access(node, attr, mode)
                return
            self._visit(node.value)
            return
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            attr = self._self_attr(node.value)
            if attr is not None:
                # self._jobs[k] = v mutates _jobs, not merely reads it.
                self._access(node.value, attr, "write")
                self._visit(node.slice)
                return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_deferred(self, body: Sequence[ast.AST]) -> None:
        """Lambda/nested-def bodies run later: no caller locks are held,
        and their calls must not contribute to entry-lockset meets."""
        saved = self._held
        self._held = []
        self._deferred += 1
        for child in body:
            self._visit(child)
        self._deferred -= 1
        self._held = saved

    def _visit_with(self, node: ast.AST) -> None:
        items = getattr(node, "items", [])
        pushed = 0
        for item in items:
            ref = self._lock_ref(item.context_expr)
            if ref is not None:
                ctx = item.context_expr
                scope = f"{getattr(ctx, 'lineno', 0)}:{getattr(ctx, 'col_offset', 0)}"
                self._event(ctx, "acquire", lock=ref, scope=scope)
                self._held.append((ref, scope))
                pushed += 1
            else:
                self._visit(item.context_expr)
            if item.optional_vars is not None:
                self._visit(item.optional_vars)
        for stmt in getattr(node, "body", []):
            self._visit(stmt)
        if pushed:
            del self._held[-pushed:]

    def _visit_call(self, node: ast.Call) -> None:
        resolved = self._resolver(node)
        func = node.func
        leaf: Optional[str] = None
        recv: Optional[str] = None
        if isinstance(func, ast.Attribute):
            leaf = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                recv = "self" if base.id == "self" else "name"
            elif isinstance(base, ast.Constant):
                recv = "const"
            elif isinstance(base, ast.Attribute):
                recv = "attr"
            elif isinstance(base, ast.Call):
                recv = "call"
            else:
                recv = "other"
        elif isinstance(func, ast.Name):
            leaf = func.id
            recv = "bare"

        if leaf == "add_done_callback" and recv is not None and node.args:
            for target in self._callable_targets(node.args[0]) or [None]:
                self._event(node, "register", via="add_done_callback",
                            target=target, text=_text(node))
        elif resolved == "signal.signal" and len(node.args) >= 2:
            for target in self._callable_targets(node.args[1]) or [None]:
                self._event(node, "register", via="signal",
                            target=target, text=_text(node))
        elif resolved in THREAD_CONSTRUCTORS:
            tnode = next(
                (kw.value for kw in node.keywords if kw.arg == "target"), None
            )
            targets = (
                self._callable_targets(tnode) if tnode is not None else []
            )
            for target in targets or [None]:
                self._event(node, "spawn", target=target, text=_text(node))
        elif resolved is not None or leaf is not None:
            self._event(node, "call", callee=resolved, leaf=leaf, recv=recv,
                        text=_text(node))

        # Recurse: the callee attribute itself is *not* an attribute
        # access (calling self.m() does not race on 'm'), but a method
        # call on a self attribute reads — or, for mutator leaves,
        # writes — that attribute: self._jobs.pop(k).
        if isinstance(func, ast.Attribute):
            base = func.value
            base_attr = self._self_attr(base)
            if base_attr is not None:
                mode = "write" if func.attr in MUTATOR_LEAVES else "read"
                self._access(base, base_attr, mode)
            elif not isinstance(base, ast.Name):
                self._visit(base)
        elif not isinstance(func, ast.Name):
            self._visit(func)
        for arg in node.args:
            self._visit(arg)
        for kw in node.keywords:
            self._visit(kw.value)

    def _callable_targets(self, node: ast.AST) -> List[str]:
        """Resolved callables a callback argument may invoke."""
        if isinstance(node, ast.Name):
            if node.id in self._toplevel:
                return [f"{self._module}.{node.id}"]
            dotted = self._aliases.get(node.id)
            return [dotted] if dotted is not None else []
        if isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None and self._klass is not None:
                return [f"{self._module}.{self._klass}.{attr}"]
            dotted = resolve(node, self._aliases)
            return [dotted] if dotted is not None else []
        if isinstance(node, ast.Lambda):
            targets: Set[str] = set()
            for call in ast.walk(node.body):
                if isinstance(call, ast.Call):
                    dotted = self._resolver(call)
                    if dotted is not None:
                        targets.add(dotted)
            return sorted(targets)
        if isinstance(node, ast.Call):
            dotted = resolve(node.func, self._aliases)
            if dotted in ("functools.partial",) and node.args:
                return self._callable_targets(node.args[0])
        return []


# ---------------------------------------------------------------------------
# pass 2: the whole-program solver
# ---------------------------------------------------------------------------


@dataclass
class LockInfo:
    """One lock definition site."""

    canon: str  #: canonical id: module[.Class].attr
    kind: str  #: 'lock' (non-reentrant) or 'rlock'
    rel_path: str
    lineno: int


@dataclass
class ConcurrencyFunction:
    """Solver-side view of one summarised function."""

    fqname: str
    module: str
    qualname: str
    rel_path: str
    #: fq name of the owning class (module.Class) for methods, else None
    owner: Optional[str]
    events: List[Dict[str, Any]]

    @property
    def leaf(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


class ConcurrencyAnalysis:
    """Fixpoint facts over every function's concurrency events.

    All iteration orders are sorted, so two runs over the same summaries —
    at any worker count — produce identical facts and, downstream,
    byte-identical diagnostics.
    """

    def __init__(
        self,
        functions: Dict[str, ConcurrencyFunction],
        locks: Dict[str, LockInfo],
        class_bases: Dict[str, List[str]],
    ) -> None:
        self.functions = functions
        self.locks = locks
        self.class_bases = class_bases
        #: callee -> [(caller fq, call event)] over non-deferred edges
        self._callers: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        #: callee -> caller fqs over *all* call edges (deferred included)
        self._all_callers: Dict[str, Set[str]] = {}
        self.thread_entries: Set[str] = set()
        self.entry_must: Dict[str, Set[str]] = {}
        self.entry_may: Dict[str, Set[str]] = {}
        self._witness: Dict[Tuple[str, str], str] = {}
        self._acquires: Dict[str, Set[str]] = {}
        self.init_only: Set[str] = set()
        self._guards: Optional[Dict[Tuple[str, str], Set[str]]] = None
        self._solved = False

    # -- solving ------------------------------------------------------------

    def solve(self) -> None:
        if self._solved:
            return
        self._solved = True
        self._build_edges()
        self._find_thread_entries()
        self._solve_entry_must()
        self._solve_entry_may()
        self._solve_acquires()
        self._find_init_only()

    def _held_locks(self, event: Dict[str, Any]) -> Set[str]:
        """Locally-held known locks at an event."""
        return {
            pair[0] for pair in event.get("held", []) if pair[0] in self.locks
        }

    def _build_edges(self) -> None:
        for name in sorted(self.functions):
            fn = self.functions[name]
            for event in fn.events:
                if event["k"] != "call":
                    continue
                callee = event.get("callee")
                if callee is None or callee not in self.functions:
                    continue
                self._all_callers.setdefault(callee, set()).add(name)
                if not event["deferred"]:
                    self._callers.setdefault(callee, []).append((name, event))

    def _find_thread_entries(self) -> None:
        handler_classes = {
            cls
            for cls, bases in self.class_bases.items()
            if any(b.rsplit(".", 1)[-1] in HANDLER_BASES for b in bases)
        }
        for name in sorted(self.functions):
            fn = self.functions[name]
            if fn.owner in handler_classes and (
                fn.leaf.startswith("do_") or fn.leaf == "handle"
            ):
                self.thread_entries.add(name)
            for event in fn.events:
                if event["k"] in ("spawn", "register"):
                    target = event.get("target")
                    if target is not None and target in self.functions:
                        self.thread_entries.add(target)

    def _solve_entry_must(self) -> None:
        """Intersection fixpoint: locks held on *every* path into a
        function.  Thread entries and uncalled functions start empty;
        everything else starts ⊤ (None) and only shrinks."""
        state: Dict[str, Optional[Set[str]]] = {}
        for name in self.functions:
            if name in self.thread_entries or name not in self._callers:
                state[name] = set()
            else:
                state[name] = None
        changed = True
        while changed:
            changed = False
            for name in sorted(self.functions):
                if name in self.thread_entries or name not in self._callers:
                    continue
                meet: Optional[Set[str]] = None
                for caller, event in self._callers[name]:
                    caller_entry = state[caller]
                    if caller_entry is None:
                        continue  # unresolved this round; ⊤ is meet-identity
                    contrib = caller_entry | self._held_locks(event)
                    meet = set(contrib) if meet is None else meet & contrib
                if meet is not None and meet != state[name]:
                    state[name] = meet
                    changed = True
        self.entry_must = {
            name: (entry if entry is not None else set())
            for name, entry in state.items()
        }

    def _solve_entry_may(self) -> None:
        """Union fixpoint: locks held on *some* path into a function,
        with a witness caller per (function, lock) for chain messages."""
        self.entry_may = {name: set() for name in self.functions}
        changed = True
        while changed:
            changed = False
            for name in sorted(self.functions):
                for caller, event in self._callers.get(name, []):
                    contrib = self.entry_may[caller] | self._held_locks(event)
                    fresh = contrib - self.entry_may[name]
                    if fresh:
                        self.entry_may[name] |= fresh
                        changed = True
                        for lock in sorted(fresh):
                            self._witness.setdefault((name, lock), caller)

    def _solve_acquires(self) -> None:
        """Union fixpoint: locks a call to each function may acquire,
        directly or transitively (synchronous callees only)."""
        self._acquires = {}
        for name in sorted(self.functions):
            fn = self.functions[name]
            self._acquires[name] = {
                event["lock"]
                for event in fn.events
                if event["k"] == "acquire"
                and not event["deferred"]
                and event["lock"] in self.locks
            }
        changed = True
        while changed:
            changed = False
            for name in sorted(self.functions):
                fn = self.functions[name]
                mine = self._acquires[name]
                for event in fn.events:
                    if event["k"] != "call" or event["deferred"]:
                        continue
                    callee = event.get("callee")
                    if callee is None or callee not in self._acquires:
                        continue
                    fresh = self._acquires[callee] - mine
                    if fresh:
                        mine |= fresh
                        changed = True

    def _find_init_only(self) -> None:
        """Methods reachable only from their class's ``__init__`` run in
        single-threaded construction context (Eraser's init phase)."""
        by_class: Dict[str, List[str]] = {}
        for name, fn in self.functions.items():
            if fn.owner is not None:
                by_class.setdefault(fn.owner, []).append(name)
        for cls in sorted(by_class):
            methods = set(by_class[cls])
            init_name = f"{cls}.__init__"
            candidates = {
                m
                for m in methods
                if self.functions[m].leaf not in _CONSTRUCTOR_METHODS
                and m not in self.thread_entries
                and self._all_callers.get(m)
            }
            changed = True
            while changed:
                changed = False
                for m in sorted(candidates):
                    callers = self._all_callers.get(m, set())
                    ok = callers and all(
                        c == init_name or (c in candidates and c != m)
                        for c in callers
                    )
                    if not ok:
                        candidates.discard(m)
                        changed = True
            self.init_only |= candidates

    # -- queries ------------------------------------------------------------

    def iter_functions(self) -> Iterator[ConcurrencyFunction]:
        for name in sorted(self.functions):
            yield self.functions[name]

    def kind(self, lock: str) -> str:
        return self.locks[lock].kind

    def held_must(self, fn: ConcurrencyFunction,
                  event: Dict[str, Any]) -> Set[str]:
        """Locks guaranteed held at an event (entry ∪ local scopes)."""
        if event["deferred"]:
            return set()
        return self.entry_must.get(fn.fqname, set()) | self._held_locks(event)

    def held_may(self, fn: ConcurrencyFunction,
                 event: Dict[str, Any]) -> Set[str]:
        """Locks possibly held at an event."""
        if event["deferred"]:
            return set()
        return self.entry_may.get(fn.fqname, set()) | self._held_locks(event)

    def held_scoped(self, fn: ConcurrencyFunction,
                    event: Dict[str, Any]) -> Set[Tuple[str, str]]:
        """Must-held locks with their syntactic acquisition scope;
        entry locks carry the pseudo-scope :data:`ENTRY_SCOPE`."""
        if event["deferred"]:
            return set()
        scoped = {
            (pair[0], pair[1])
            for pair in event.get("held", [])
            if pair[0] in self.locks
        }
        local = {lock for lock, _ in scoped}
        for lock in self.entry_must.get(fn.fqname, set()):
            if lock not in local:
                scoped.add((lock, ENTRY_SCOPE))
        return scoped

    def acquires(self, fqname: str) -> Set[str]:
        return self._acquires.get(fqname, set())

    def entry_chain(self, fqname: str, lock: str) -> List[str]:
        """Witness caller chain by which ``lock`` may be held on entry."""
        chain: List[str] = [fqname]
        seen = {fqname}
        node = fqname
        while True:
            caller = self._witness.get((node, lock))
            if caller is None or caller in seen:
                return chain
            chain.append(caller)
            seen.add(caller)
            node = caller

    def attr_guards(self) -> Dict[Tuple[str, str], Set[str]]:
        """Inferred guard per (class fq, attribute): the intersection of
        must-held locks over every access that holds at least one."""
        if self._guards is not None:
            return self._guards
        guards: Dict[Tuple[str, str], Set[str]] = {}
        for fn in self.iter_functions():
            if fn.owner is None:
                continue
            for event in fn.events:
                if event["k"] != "access":
                    continue
                held = self.held_must(fn, event)
                if not held:
                    continue
                key = (fn.owner, event["attr"])
                if key in guards:
                    guards[key] &= held
                else:
                    guards[key] = set(held)
        self._guards = guards
        return guards

    def class_locks(self, cls: str) -> Set[str]:
        """Locks owned by a class (canonical ids ``{cls}.{attr}``)."""
        return {
            canon for canon in self.locks if canon.rsplit(".", 1)[0] == cls
        }

    def lock_attrs(self, cls: str) -> Set[str]:
        """Attribute names under which a class stores its locks."""
        return {canon.rsplit(".", 1)[-1] for canon in self.class_locks(cls)}


def match_blocking(
    event: Dict[str, Any],
    blocking: Sequence[str],
    project_functions: Container[str],
) -> Optional[str]:
    """First blocklist pattern matching a call event, else None.

    ``*.leaf`` patterns never match calls resolved to project functions —
    the may-entry propagation already analyses those bodies directly, and
    a project method named ``cancel`` is not ``Future.cancel``.
    """
    callee = event.get("callee")
    leaf = event.get("leaf")
    recv = event.get("recv")
    for pattern in blocking:
        if pattern.startswith("*."):
            if (
                leaf == pattern[2:]
                and recv not in ("const", "bare")
                and (callee is None or callee not in project_functions)
            ):
                return pattern
        elif callee == pattern or (recv == "bare" and leaf == pattern):
            return pattern
    return None
