"""repro.lint — AST-based domain-invariant linter for this codebase.

The rules encode the invariants the reproduction's calibration rests on
(see docs/architecture.md, "Static analysis & invariants"):

========  ====================  ===============================================
Code      Name                  Invariant
========  ====================  ===============================================
RPR001    determinism           no ambient randomness / wall-clock reads
RPR002    rng-plumbing          generators derive from repro._util.rng
RPR003    header-field-safety   literals fit packet-header wire widths
RPR004    batch-immutability    no in-place PacketBatch column mutation
RPR005    float-equality        no ==/!= on floats in core/ analysis code
========  ====================  ===============================================

Run ``python -m repro.lint`` (or the ``repro-lint`` console script);
configure via ``[tool.repro-lint]`` in pyproject.toml; silence single lines
with ``# repro-lint: disable=RPR00x``; grandfather findings in
``lint-baseline.json``.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import (
    REGISTRY,
    FileContext,
    Rule,
    RuleRegistry,
    lint_file,
    lint_paths,
    lint_source,
)

# Importing the rules package registers the rule set.
import repro.lint.rules  # noqa: E402,F401

__all__ = [
    "Baseline",
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "REGISTRY",
    "Rule",
    "RuleRegistry",
    "Severity",
    "find_pyproject",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
]
