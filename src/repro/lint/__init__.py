"""repro.lint — AST-based domain-invariant linter for this codebase.

The rules encode the invariants the reproduction's calibration rests on
(see docs/lint.md for the full catalog with examples, and
docs/architecture.md, "Static analysis & invariants"):

========  ====================  ===============================================
Code      Name                  Invariant
========  ====================  ===============================================
RPR001    determinism           no ambient randomness / wall-clock reads
RPR002    rng-plumbing          generators derive from repro._util.rng
RPR003    header-field-safety   literals fit packet-header wire widths
RPR004    batch-immutability    no in-place PacketBatch column mutation
RPR005    float-equality        no ==/!= on floats in core/ analysis code
RPR006    rng-key-paths         derive_rng keys constant and collision-free
RPR007    process-safety        executor-submitted functions stay pure
RPR008    schema-drift          persisted fields match the schema manifest
RPR009    batch-column-flow     no interprocedural batch-column mutation
RPR010    narrowing-cast        casts never truncate tracked column values
RPR011    overflow-arithmetic   packed-key arithmetic fits its dtype
RPR012    unit-mixing           seconds/packets/bytes/... never mix silently
RPR013    persisted-dtype-drift serialised layouts match declared columns
RPR014    float-accumulation    timestamps accumulate in float64
RPR015    unguarded-shared-state guarded attributes never read/written bare
RPR016    lock-order-inversion  the lock-acquisition graph stays acyclic
RPR017    blocking-call-under-lock no blocking calls while a lock is held
RPR018    callback-reentrancy   callbacks never re-enter a held Lock
RPR019    atomicity-split       no check-then-act across lock scopes
========  ====================  ===============================================

RPR001–005 are per-file syntactic rules; RPR006–009 are whole-program
rules that run over the :class:`~repro.lint.project.ProjectContext` built
by the analyzer in :mod:`repro.lint.project` (per-file summaries are
content-addressed-cached and parsed in parallel under ``--workers``);
RPR010–014 are the third pass — interprocedural dtype/width/unit abstract
interpretation in :mod:`repro.lint.typeflow`, running purely over the
cached summaries; RPR015–019 are the fourth pass — lockset, lock-order
and blocking-under-lock analysis in :mod:`repro.lint.concurrency` over
the threaded serve layer (``repro-lint --explain RPR0NN`` prints any
rule's catalog entry).

Run ``python -m repro.lint`` (or the ``repro-lint`` console script);
configure via ``[tool.repro-lint]`` in pyproject.toml (path-scoped rule
sets via ``[tool.repro-lint.paths]``); scope runs with ``--select`` /
``--ignore``; silence single lines with ``# repro-lint: disable=RPR00x``;
grandfather findings in ``lint-baseline.json``; commit persisted-schema
fingerprints to ``lint-schema.json`` via ``--update-schema-manifest``.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import (
    REGISTRY,
    FileContext,
    ProjectRule,
    Rule,
    RuleRegistry,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.project import (
    ModuleSummary,
    ProjectContext,
    ProjectStats,
    SummaryCache,
    analyze_files,
    lint_repository,
    run_project_rules,
    summarize_source,
)
from repro.lint.typeflow import (
    AbstractValue,
    TypeflowAnalysis,
    lattice_fingerprint,
)

# Importing the rules package registers the rule set.
import repro.lint.rules  # noqa: E402,F401

__all__ = [
    "AbstractValue",
    "TypeflowAnalysis",
    "lattice_fingerprint",
    "Baseline",
    "Diagnostic",
    "FileContext",
    "LintConfig",
    "ModuleSummary",
    "ProjectContext",
    "ProjectRule",
    "ProjectStats",
    "REGISTRY",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SummaryCache",
    "analyze_files",
    "find_pyproject",
    "lint_file",
    "lint_paths",
    "lint_repository",
    "lint_source",
    "load_config",
    "run_project_rules",
    "summarize_source",
]
