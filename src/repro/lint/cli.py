"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

One invocation runs both passes — the per-file syntactic rules and the
whole-program project rules (RPR006–RPR009) over a
:class:`~repro.lint.project.ProjectContext` — with per-file summaries
content-addressed-cached and parsed in parallel under ``--workers``.

Exit status: 0 — clean (no unbaselined error-severity findings);
1 — findings (or, under ``--update-baseline``, stale entries pruned);
2 — usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.catalog import explain
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import REGISTRY
from repro.lint.project import ProjectStats, lint_repository
from repro.lint.rules.schema_drift import collect_sites, write_manifest
from repro.lint.sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--config", type=Path, default=None,
        help="pyproject.toml to read [tool.repro-lint] from "
             "(default: nearest pyproject above the first path)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: from config, lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="prune baseline entries no longer matched by any finding; "
             "exits 1 when entries were pruned (stale baseline) or new "
             "error findings remain",
    )
    parser.add_argument(
        "--update-schema-manifest", action="store_true",
        help="re-fingerprint the configured schema-sites and rewrite the "
             "schema manifest (lint-schema.json), then exit",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule-code prefixes to run exclusively "
             "(flake8 semantics, e.g. --select RPR01 for the typeflow "
             "family); overrides [tool.repro-lint] select",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule-code prefixes to skip (applied after "
             "--select); overrides [tool.repro-lint] ignore",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the formatted report to FILE (a text summary still "
             "goes to stdout, and the exit code is unaffected)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parse/summarise files with N worker processes "
             "(0 = serial; default: [tool.repro-lint] workers)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="summary-cache directory (default: [tool.repro-lint] cache, "
             ".repro-lint-cache under the lint root)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-file summary cache for this run",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a per-rule findings summary and cache statistics",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="CODES",
        help="print the catalog entry (doc paragraph + example) for the "
             "given comma-separated rule codes and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in REGISTRY.rules():
            print(f"{rule.code}  {rule.name:22s} {rule.description}")
        return EXIT_CLEAN

    if args.explain is not None:
        try:
            codes = _parse_codes(args.explain, "--explain")
        except ValueError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        entries = []
        for code in codes:
            entry = explain(code)
            if entry is None:
                print(f"repro-lint: error: unknown rule code: {code}",
                      file=sys.stderr)
                return EXIT_USAGE
            entries.append(entry)
        print("\n\n".join(entries))
        return EXIT_CLEAN

    try:
        config = _resolve_config(args)
        if args.select is not None:
            config.select = _parse_codes(args.select, "--select")
        if args.ignore is not None:
            config.ignore = _parse_codes(args.ignore, "--ignore")
        targets = _resolve_targets(args, config)
        workers = (
            args.workers if args.workers is not None
            else config.default_workers()
        )
        if workers < 0:
            raise ValueError("--workers must be non-negative")
        diagnostics, project, stats = lint_repository(
            config,
            paths=targets,
            workers=workers,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except SyntaxError as exc:
        print(f"repro-lint: error: cannot parse source: {exc}",
              file=sys.stderr)
        return EXIT_USAGE

    if args.update_schema_manifest:
        sites = collect_sites(project, config)
        write_manifest(config.manifest_path(), sites)
        print(
            f"wrote {len(sites)} schema site(s) to {config.manifest_path()}"
        )
        return EXIT_CLEAN

    baseline_path = args.baseline or config.baseline_path()
    if args.write_baseline:
        Baseline.from_diagnostics(diagnostics).save(baseline_path)
        print(f"wrote {len(diagnostics)} finding(s) to {baseline_path}")
        return EXIT_CLEAN

    try:
        baseline = (
            Baseline() if args.no_baseline else Baseline.load(baseline_path)
        )
    except ValueError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.update_baseline:
        stale = baseline.stale_entries(diagnostics)
        pruned = baseline.pruned(diagnostics)
        pruned.save(baseline_path)
        for path, code, line in stale:
            print(f"pruned stale baseline entry: {path}:{line} {code}")
        new, _ = pruned.partition(diagnostics)
        errors = [d for d in new if d.severity is Severity.ERROR]
        print(
            f"baseline updated: {len(pruned.entries)} entr(y/ies) kept, "
            f"{len(stale)} pruned, {len(errors)} unbaselined error(s) remain"
        )
        return EXIT_FINDINGS if stale or errors else EXIT_CLEAN

    new, known = baseline.partition(diagnostics)
    files = stats.files

    payload: Optional[str] = None
    if args.format == "sarif":
        payload = render_sarif(new, REGISTRY)
    elif args.format == "json":
        payload = json.dumps(
            {
                "findings": [
                    {**d.__dict__, "severity": d.severity.value} for d in new
                ],
                "baselined": len(known),
                "files": files,
                "cache": {
                    "hits": stats.cache_hits,
                    "misses": stats.cache_misses,
                },
            },
            indent=2, default=str,
        )

    summary = (
        f"{len(new)} finding(s) ({len(known)} baselined) "
        f"across {files} file(s)"
    )
    if args.output is not None and payload is not None:
        args.output.write_text(payload + "\n", encoding="utf-8")
        print(f"wrote {args.format} report to {args.output}")
        print(summary if new or known else f"clean: {summary}")
    elif payload is not None:
        print(payload)
    else:
        for diag in new:
            print(diag.render())
        print(summary if new or known else f"clean: {summary}")
    if args.statistics:
        _print_statistics(new, stats)

    errors = [d for d in new if d.severity is Severity.ERROR]
    return EXIT_FINDINGS if errors else EXIT_CLEAN


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.config is not None:
        if not args.config.is_file():
            raise FileNotFoundError(f"config file not found: {args.config}")
        return load_config(args.config)
    anchor = Path(args.paths[0]) if args.paths else Path.cwd()
    return load_config(find_pyproject(anchor))


def _parse_codes(raw: str, flag: str) -> List[str]:
    codes = [c.strip() for c in raw.split(",") if c.strip()]
    if not codes:
        raise ValueError(f"{flag} requires at least one rule-code prefix")
    for code in codes:
        if not code.startswith("RPR"):
            raise ValueError(
                f"{flag}: rule-code prefixes start with 'RPR', got {code!r}"
            )
    return codes


def _resolve_targets(args: argparse.Namespace, config: LintConfig) -> List[Path]:
    if args.paths:
        return [Path(p) for p in args.paths]
    return [config.root / p for p in config.paths]


def _print_statistics(
    diags: Sequence[Diagnostic], stats: Optional[ProjectStats] = None
) -> None:
    counts: dict = {}
    for diag in diags:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    for code in sorted(counts):
        rule = REGISTRY.get(code)
        print(f"  {code} ({rule.name}): {counts[code]}")
    if stats is not None:
        print(
            f"  cache: {stats.cache_hits} hit(s), {stats.cache_misses} "
            f"miss(es); parsed {stats.parsed}/{stats.files} file(s)"
        )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
