"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 — clean (no unbaselined error-severity findings);
1 — findings; 2 — usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.engine import REGISTRY, collect_files, lint_file

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Domain-invariant static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--config", type=Path, default=None,
        help="pyproject.toml to read [tool.repro-lint] from "
             "(default: nearest pyproject above the first path)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: from config, lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a per-rule findings summary",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in REGISTRY.rules():
            print(f"{rule.code}  {rule.name:22s} {rule.description}")
        return EXIT_CLEAN

    try:
        config = _resolve_config(args)
        targets = _resolve_targets(args, config)
        files = collect_files(targets, config)
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    diagnostics: List[Diagnostic] = []
    for file_path in files:
        try:
            diagnostics.extend(lint_file(file_path, config=config))
        except SyntaxError as exc:
            print(f"repro-lint: error: cannot parse {file_path}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
    diagnostics.sort(key=Diagnostic.sort_key)

    baseline_path = args.baseline or config.baseline_path()
    if args.write_baseline:
        Baseline.from_diagnostics(diagnostics).save(baseline_path)
        print(f"wrote {len(diagnostics)} finding(s) to {baseline_path}")
        return EXIT_CLEAN

    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    new, known = baseline.partition(diagnostics)

    if args.format == "json":
        print(json.dumps(
            {
                "findings": [d.__dict__ | {"severity": d.severity.value} for d in new],
                "baselined": len(known),
                "files": len(files),
            },
            indent=2, default=str,
        ))
    else:
        for diag in new:
            print(diag.render())
        if args.statistics:
            _print_statistics(new)
        summary = (
            f"{len(new)} finding(s) ({len(known)} baselined) "
            f"across {len(files)} file(s)"
        )
        print(summary if new or known else f"clean: {summary}")

    errors = [d for d in new if d.severity is Severity.ERROR]
    return EXIT_FINDINGS if errors else EXIT_CLEAN


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.config is not None:
        if not args.config.is_file():
            raise FileNotFoundError(f"config file not found: {args.config}")
        return load_config(args.config)
    anchor = Path(args.paths[0]) if args.paths else Path.cwd()
    return load_config(find_pyproject(anchor))


def _resolve_targets(args: argparse.Namespace, config: LintConfig) -> List[Path]:
    if args.paths:
        return [Path(p) for p in args.paths]
    return [config.root / p for p in config.paths]


def _print_statistics(diags: Sequence[Diagnostic]) -> None:
    counts: dict = {}
    for diag in diags:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    for code in sorted(counts):
        rule = REGISTRY.get(code)
        print(f"  {code} ({rule.name}): {counts[code]}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
