"""Rule catalog for ``repro-lint --explain RPR0NN``.

One entry per registered rule: the doc paragraph from docs/lint.md and a
minimal triggering example, so a suppression review never requires
opening the docs.  A test asserts the catalog covers exactly the
registered rule set — adding a rule without a catalog entry fails CI.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class RuleDoc:
    """Catalog entry: what the rule enforces and a minimal trigger."""

    code: str
    name: str
    summary: str
    example: str


def _doc(code: str, name: str, summary: str, example: str) -> RuleDoc:
    return RuleDoc(
        code=code,
        name=name,
        summary=textwrap.dedent(summary).strip(),
        example=textwrap.dedent(example).strip("\n"),
    )


CATALOG: Dict[str, RuleDoc] = {
    doc.code: doc
    for doc in (
        _doc(
            "RPR001", "determinism",
            """
            No ambient nondeterminism in library code: wall-clock reads
            (time.time, datetime.now), ambient randomness (random.*,
            numpy.random without an explicit Generator), or iteration
            over unordered sets where order reaches output.  Every run
            of an analysis must be byte-reproducible from its seed.
            """,
            """
            import time
            started = time.time()          # RPR001
            """,
        ),
        _doc(
            "RPR002", "rng-plumbing",
            """
            Random generators derive from repro._util.rng
            (as_generator / derive_rng / spawn_rngs) instead of direct
            numpy.random.default_rng construction, so adding a consumer
            never shifts the draws any existing consumer sees.
            """,
            """
            import numpy as np
            g = np.random.default_rng(0)   # RPR002 — use derive_rng
            """,
        ),
        _doc(
            "RPR003", "header-field-safety",
            """
            Integer literals assigned to packet-header fields fit the
            field's wire width (ttl is 8-bit, ports 16-bit, ...), numpy
            scalar constructors don't overflow their dtype, and astype
            casts on packet columns don't narrow.  Out-of-range values
            wrap silently in the column store.
            """,
            """
            batch = make_batch(ttl=300)    # RPR003 — ttl is 8-bit
            """,
        ),
        _doc(
            "RPR004", "batch-immutability",
            """
            PacketBatch columns are never mutated in place
            (batch.col[i] = x, batch.col += y, np.sort(batch.col) with
            out=).  Batches are shared between analyses; mutation in one
            corrupts every other reader.
            """,
            """
            batch.ts[0] = 0.0              # RPR004
            """,
        ),
        _doc(
            "RPR005", "float-equality",
            """
            No == / != between floats in core/ analysis code — rates,
            fractions and timestamps accumulate rounding error; compare
            with a tolerance or on the underlying integers.
            """,
            """
            if rate == 0.1:                # RPR005
                ...
            """,
        ),
        _doc(
            "RPR006", "rng-key-paths",
            """
            Whole-program: derive_rng key strings are compile-time
            constants and globally collision-free.  Two call sites
            sharing a key silently share a stream, correlating draws
            that the paper's methodology assumes independent.
            """,
            """
            # module_a.py: derive_rng(rng, "scan")
            # module_b.py: derive_rng(rng, "scan")   # RPR006 — collision
            """,
        ),
        _doc(
            "RPR007", "process-safety",
            """
            Whole-program: functions submitted to executors stay pure —
            no writes to module globals, closed-over mutable state, or
            instance attributes reachable from the parent process.  A
            fork/spawn boundary makes such writes silently diverge.
            """,
            """
            counter = 0
            def task(x):
                global counter
                counter += 1               # RPR007 — lost across spawn
            pool.submit(task, 1)
            """,
        ),
        _doc(
            "RPR008", "schema-drift",
            """
            Whole-program: persisted document fields match the committed
            schema manifest (lint-schema.json).  Renaming or adding a
            persisted key without bumping the schema version makes old
            captures unreadable or silently misread.
            """,
            """
            doc = {"schema": 3, "new_field": x}   # RPR008 until the
            # manifest is regenerated via --update-schema-manifest
            """,
        ),
        _doc(
            "RPR009", "batch-column-flow",
            """
            Whole-program: no interprocedural PacketBatch column
            mutation — a helper that receives a batch (possibly through
            several calls) must not mutate its columns, even though the
            mutation site alone looks innocent.
            """,
            """
            def normalise(col):
                col /= col.max()           # RPR009 when col is a
            normalise(batch.ts)            # batch column
            """,
        ),
        _doc(
            "RPR010", "narrowing-cast",
            """
            Typeflow: a cast narrower than the inferred dtype/width of
            the tracked column value flowing into it can truncate —
            e.g. packed 64-bit keys cast to int32.
            """,
            """
            key = pack_key(saddr, dport)   # inferred u64
            small = key.astype(np.int32)   # RPR010
            """,
        ),
        _doc(
            "RPR011", "overflow-arithmetic",
            """
            Typeflow: arithmetic on packed-key integers stays within the
            dtype's range — shifting or multiplying an already-wide
            value can exceed 64 bits and wrap.
            """,
            """
            key = (saddr << 48) | seq      # RPR011 if saddr is u32
            """,
        ),
        _doc(
            "RPR012", "unit-mixing",
            """
            Typeflow: quantities carrying different units (seconds,
            packets, bytes, addresses) never combine arithmetically
            without an explicit conversion — pps + bytes is meaningless
            even though both are int64.
            """,
            """
            total = duration_s + n_packets # RPR012
            """,
        ),
        _doc(
            "RPR013", "persisted-dtype-drift",
            """
            Typeflow: serialised column layouts match their declared
            dtypes — writing a float64 column through a struct format
            declared f4 quietly halves precision on disk.
            """,
            """
            np.asarray(ts, dtype="f4").tofile(f)  # RPR013 — ts is f8
            """,
        ),
        _doc(
            "RPR014", "float-accumulation",
            """
            Typeflow: timestamp accumulation happens in float64 —
            summing float32 epoch seconds loses sub-second precision
            after ~2^24, which breaks inter-arrival analyses.
            """,
            """
            acc = np.float32(0.0)
            acc += batch.ts[i]             # RPR014
            """,
        ),
        _doc(
            "RPR015", "unguarded-shared-state",
            """
            Concurrency (lockset): an attribute of a lock-owning class
            is written under an inferred guard on some paths yet read or
            written bare on others, or mutated without any lock from a
            thread entry point (Thread target, done callback,
            socketserver handler).  The guard is the intersection of
            must-held locksets over guarded accesses (Eraser-style),
            with methods reachable only from __init__ exempt
            (single-threaded initialisation phase).  Suppressions must
            state the invariant that makes the bare access safe.
            """,
            """
            class Q:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.done = 0
                def bump(self):
                    with self._lock:
                        self.done += 1
                def peek(self):
                    return self.done       # RPR015 — bare read
            """,
        ),
        _doc(
            "RPR016", "lock-order-inversion",
            """
            Concurrency (lock-order): the global lock-acquisition graph
            — an edge A -> B whenever B is acquired while A may be held,
            tracked through the call graph — must stay acyclic, and a
            non-reentrant lock must never be re-acquired while already
            held.  Any cycle is a deadlock waiting for the right
            interleaving; fix by imposing one global acquisition order.
            """,
            """
            def ab(self):
                with self._a:
                    with self._b: ...
            def ba(self):
                with self._b:
                    with self._a: ...      # RPR016 — cycle a <-> b
            """,
        ),
        _doc(
            "RPR017", "blocking-call-under-lock",
            """
            Concurrency: a call matching the configurable
            blocking-calls blocklist (Future.result/cancel,
            Executor.shutdown, Thread.join, file/socket I/O, time.sleep,
            ...) is reached — directly or through the call graph — while
            a lock may be held.  Every other thread then stalls behind
            the blocked holder; this is the PR 9 cancel() bug class,
            where Future.cancel() blocked on done callbacks with the
            queue lock held.  Suppress only with the invariant that
            makes the call non-blocking (e.g. the future has settled).
            """,
            """
            def cancel(self, fut):
                with self._lock:
                    fut.cancel()           # RPR017 — may run callbacks
            """,
        ),
        _doc(
            "RPR018", "callback-reentrancy",
            """
            Concurrency: a callable registered via add_done_callback or
            signal.signal re-acquires a non-reentrant threading.Lock
            that may already be held at the registration site.  A
            settled Future runs its callbacks synchronously on the
            registering thread, so the callback deadlocks against its
            own caller — the PR 9 bug that forced JobQueue's lock to
            become an RLock.  Fix by making the lock reentrant or
            registering outside the lock.
            """,
            """
            def start(self):
                with self._lock:           # plain Lock
                    fut = pool.submit(work)
                    fut.add_done_callback(self._on_done)  # RPR018
            def _on_done(self, fut):
                with self._lock: ...
            """,
        ),
        _doc(
            "RPR019", "atomicity-split",
            """
            Concurrency: check-then-act on guarded state across separate
            lock scopes — a value read under one acquisition is written
            back under a later acquisition of the same lock without
            re-reading it, so the invariant validated in the first scope
            may no longer hold when the write lands.  Hold the lock
            across the whole sequence or re-validate in the second
            scope.
            """,
            """
            with self._lock:
                n = self.count
            recompute(n)
            with self._lock:
                self.count = n + 1         # RPR019 — stale n
            """,
        ),
    )
}


def explain(code: str) -> Optional[str]:
    """Render one rule's catalog entry, or None for an unknown code."""
    doc = CATALOG.get(code)
    if doc is None:
        return None
    example = textwrap.indent(doc.example, "    ")
    return f"{doc.code} — {doc.name}\n\n{doc.summary}\n\nExample:\n{example}"
