"""Configuration for the linter, read from ``[tool.repro-lint]``.

Python 3.11+ parses the pyproject with :mod:`tomllib`; on 3.9/3.10 (which the
CI matrix still covers and where no TOML parser is guaranteed to be
installed) a deliberately minimal fallback parser handles the subset of TOML
this table actually uses: string scalars and (possibly multi-line) arrays of
strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.lint.concurrency import DEFAULT_BLOCKING_CALLS

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    _toml = None

SECTION = "repro-lint"

#: Paths (suffix-matched against the posix relative path) where the
#: determinism and plumbing rules do not apply — the RNG plumbing itself.
DEFAULT_RNG_EXEMPT = ("_util/rng.py",)

#: Paths where ``self._cols`` may legitimately be bound — the PacketBatch
#: definition site.
DEFAULT_IMMUTABILITY_EXEMPT = ("telescope/packet.py",)

#: Substrings of the relative path where the float-equality rule applies
#: (the paper's analysis code, per the invariant in docs/architecture.md).
DEFAULT_FLOAT_EQ_PATHS = ("core/",)

#: Modules (suffix-matched) whose executor submissions RPR007 audits.
DEFAULT_EXECUTOR_MODULES = ("exec/parallel.py",)

#: Persisted-schema sites for RPR008, each
#: ``"<site path>:<site qualname>:<version path>:<version constant>"``
#: (relative paths contain ``/`` never ``:``, so the colon split is safe).
DEFAULT_SCHEMA_SITES = (
    "exec/cache.py:CaptureCache.store.meta"
    ":exec/cache.py:CACHE_SCHEMA_VERSION",
    "stream/incremental.py:IncrementalScanIdentifier.snapshot"
    ":stream/checkpoint.py:STREAM_SCHEMA_VERSION",
    "telescope/trace.py:_COLUMN_ORDER:telescope/trace.py:MAGIC",
)

#: Declared/serialised dtype-layout pairs for RPR013, each
#: ``"<decl path>:<DECL_NAME>:<serialised path>:<SER_NAME>"``; the
#: serialised side must spell explicit little-endian struct codes.
DEFAULT_DTYPE_LAYOUTS = (
    "telescope/packet.py:_COLUMNS:telescope/trace.py:_COLUMN_ORDER",
)


@dataclass
class LintConfig:
    """Resolved linter settings."""

    root: Path = field(default_factory=Path.cwd)
    paths: List[str] = field(default_factory=lambda: ["src/repro"])
    exclude: List[str] = field(default_factory=list)
    baseline: str = "lint-baseline.json"
    disable: List[str] = field(default_factory=list)
    warn: List[str] = field(default_factory=list)
    #: flake8-style rule filters: run only codes matching a ``select``
    #: prefix, then drop codes matching an ``ignore`` prefix.
    select: List[str] = field(default_factory=list)
    ignore: List[str] = field(default_factory=list)
    #: per-path-prefix disabled rule-code prefixes, from the
    #: ``[tool.repro-lint.paths]`` block (keys double as lint targets).
    path_rules: Dict[str, List[str]] = field(default_factory=dict)
    rng_exempt: List[str] = field(default_factory=lambda: list(DEFAULT_RNG_EXEMPT))
    immutability_exempt: List[str] = field(
        default_factory=lambda: list(DEFAULT_IMMUTABILITY_EXEMPT)
    )
    float_eq_paths: List[str] = field(
        default_factory=lambda: list(DEFAULT_FLOAT_EQ_PATHS)
    )
    #: project-pass knobs — TOML values are strings per the fallback parser,
    #: so ``workers`` stays a string here and is int()-ed at the use site.
    workers: str = "0"
    cache: str = ".repro-lint-cache"
    schema_manifest: str = "lint-schema.json"
    schema_sites: List[str] = field(
        default_factory=lambda: list(DEFAULT_SCHEMA_SITES)
    )
    executor_modules: List[str] = field(
        default_factory=lambda: list(DEFAULT_EXECUTOR_MODULES)
    )
    dtype_layouts: List[str] = field(
        default_factory=lambda: list(DEFAULT_DTYPE_LAYOUTS)
    )
    #: RPR017 blocklist: ``*.leaf`` patterns (attribute calls by leaf name
    #: on non-literal receivers, project functions excluded), resolved
    #: dotted callees, or bare builtin names.
    blocking_calls: List[str] = field(
        default_factory=lambda: list(DEFAULT_BLOCKING_CALLS)
    )

    def baseline_path(self) -> Path:
        return self.root / self.baseline

    def cache_path(self) -> Optional[Path]:
        """Summary-cache directory; ``cache = ""`` disables caching."""
        if not self.cache:
            return None
        return self.root / self.cache

    def manifest_path(self) -> Path:
        return self.root / self.schema_manifest

    def default_workers(self) -> int:
        try:
            return int(self.workers)
        except ValueError:
            raise ValueError(
                f"[tool.{SECTION}].workers must be an integer string, "
                f"got {self.workers!r}"
            )

    def is_excluded(self, rel_path: str) -> bool:
        from fnmatch import fnmatch

        return any(fnmatch(rel_path, pat) for pat in self.exclude)

    def is_disabled_for(self, rel_path: str, code: str) -> bool:
        """True when a path-scoped rule set silences ``code`` under the
        longest matching ``[tool.repro-lint.paths]`` prefix."""
        best: Optional[str] = None
        for prefix in self.path_rules:
            if rel_path.startswith(prefix.rstrip("/") + "/") or rel_path == prefix:
                if best is None or len(prefix) > len(best):
                    best = prefix
        if best is None:
            return False
        return any(code.startswith(p) for p in self.path_rules[best])

    def to_payload(self, include_root: bool = True) -> Dict[str, object]:
        """JSON-serialisable form (for worker processes and cache keys)."""
        payload: Dict[str, object] = {}
        for attr in _KEY_MAP.values():
            value = getattr(self, attr)
            if isinstance(value, list):
                payload[attr] = list(value)
            elif isinstance(value, dict):
                payload[attr] = {k: list(v) for k, v in value.items()}
            else:
                payload[attr] = value
        if include_root:
            payload["root"] = str(self.root)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "LintConfig":
        cfg = cls()
        for attr in _KEY_MAP.values():
            if attr in payload:
                value = payload[attr]
                if isinstance(value, list):
                    value = list(value)
                elif isinstance(value, dict):
                    value = {k: list(v) for k, v in value.items()}
                setattr(cfg, attr, value)
        if "root" in payload:
            cfg.root = Path(str(payload["root"]))
        return cfg


_KEY_MAP = {
    "paths": "paths",
    "exclude": "exclude",
    "baseline": "baseline",
    "disable": "disable",
    "warn": "warn",
    "select": "select",
    "ignore": "ignore",
    "path-rules": "path_rules",
    "rng-exempt": "rng_exempt",
    "immutability-exempt": "immutability_exempt",
    "float-eq-paths": "float_eq_paths",
    "workers": "workers",
    "cache": "cache",
    "schema-manifest": "schema_manifest",
    "schema-sites": "schema_sites",
    "executor-modules": "executor_modules",
    "dtype-layouts": "dtype_layouts",
    "blocking-calls": "blocking_calls",
}


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Build a :class:`LintConfig` from a pyproject file (or defaults)."""
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    table = _read_tool_table(pyproject)
    cfg = LintConfig(root=pyproject.parent.resolve())
    for raw_key, value in table.items():
        attr = _KEY_MAP.get(raw_key, _KEY_MAP.get(raw_key.replace("_", "-")))
        if attr is None:
            raise ValueError(f"[tool.{SECTION}]: unknown key {raw_key!r}")
        if raw_key == "paths" and isinstance(value, dict):
            # ``[tool.repro-lint.paths]`` block: keys are lint targets,
            # values are rule-code prefixes disabled under that prefix.
            rules: Dict[str, List[str]] = {}
            for prefix, codes in value.items():
                if not isinstance(codes, list) or not all(
                    isinstance(c, str) for c in codes
                ):
                    raise ValueError(
                        f"[tool.{SECTION}.paths].{prefix!r} must be a "
                        "string array of rule-code prefixes"
                    )
                rules[prefix] = list(codes)
            cfg.paths = list(rules)
            cfg.path_rules = rules
            continue
        current = getattr(cfg, attr)
        if isinstance(current, dict):
            raise ValueError(
                f"[tool.{SECTION}].{raw_key} must be set via the "
                f"[tool.{SECTION}.paths] block"
            )
        if isinstance(current, list):
            if not isinstance(value, list) or not all(
                isinstance(v, str) for v in value
            ):
                raise ValueError(f"[tool.{SECTION}].{raw_key} must be a string array")
            setattr(cfg, attr, list(value))
        else:
            if not isinstance(value, str):
                raise ValueError(f"[tool.{SECTION}].{raw_key} must be a string")
            setattr(cfg, attr, value)
    return cfg


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk upward from ``start`` looking for a pyproject.toml."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _read_tool_table(pyproject: Path) -> Dict[str, object]:
    text = pyproject.read_text(encoding="utf-8")
    if _toml is not None:
        data = _toml.loads(text)
        tool = data.get("tool", {})
        table = tool.get(SECTION, {})
        if not isinstance(table, dict):
            raise ValueError(f"[tool.{SECTION}] must be a table")
        return table
    return _fallback_parse(text)


def _fallback_parse(text: str) -> Dict[str, object]:
    """Parse the ``[tool.repro-lint]`` table (and its ``.<sub>`` subtables,
    e.g. ``[tool.repro-lint.paths]``) from minimal TOML."""
    table: Dict[str, object] = {}
    target: Optional[Dict[str, object]] = None  # None = outside our tables
    pending_key: Optional[str] = None
    pending_chunks: List[str] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending_key is not None and target is not None:
            pending_chunks.append(line)
            joined = " ".join(pending_chunks)
            if _array_closed(joined):
                target[pending_key] = _parse_array(joined)
                pending_key, pending_chunks = None, []
            continue
        if line.startswith("["):
            if line == f"[tool.{SECTION}]":
                target = table
            elif line.startswith(f"[tool.{SECTION}."):
                sub = line[len(f"[tool.{SECTION}."):].rstrip("]")
                nested: Dict[str, object] = {}
                table[sub] = nested
                target = nested
            else:
                target = None
            continue
        if target is None or not line or line.startswith("#"):
            continue
        match = re.match(
            r'^("(?:[^"]*)"|[A-Za-z0-9_-]+)\s*=\s*(.*)$', line
        )
        if not match:
            raise ValueError(f"[tool.{SECTION}]: cannot parse line {raw_line!r}")
        key, value = match.group(1), match.group(2).strip()
        if key.startswith('"') and key.endswith('"'):
            key = key[1:-1]
        if value.startswith("["):
            if _array_closed(value):
                target[key] = _parse_array(value)
            else:
                pending_key, pending_chunks = key, [value]
        else:
            target[key] = _parse_string(value)
    if pending_key is not None:
        raise ValueError(f"[tool.{SECTION}].{pending_key}: unterminated array")
    return table


def _array_closed(chunk: str) -> bool:
    return _strip_comment(chunk).rstrip().endswith("]")


def _strip_comment(chunk: str) -> str:
    out: List[str] = []
    in_string = False
    for ch in chunk:
        if ch == '"':
            in_string = not in_string
        if ch == "#" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _parse_string(value: str) -> str:
    value = _strip_comment(value).strip()
    if len(value) >= 2 and value[0] == value[-1] and value[0] in "\"'":
        return value[1:-1]
    raise ValueError(f"expected a quoted string, got {value!r}")


def _parse_array(value: str) -> List[str]:
    value = _strip_comment(value).strip()
    inner = value[1:-1].strip()
    if not inner:
        return []
    items: List[str] = []
    for part in inner.split(","):
        part = part.strip()
        if not part:
            continue
        items.append(_parse_string(part))
    return items
