"""Typeflow pass (pass 3): interprocedural dtype/width/unit inference.

The paper's measurement rests on exact wire-level semantics — ``uint32``
IPs, ``uint16`` ports, ``float64`` epoch timestamps — and those columns
now move through many hands (packed sort keys in ``identify_scans``,
per-source tallies in ``repro.stream``, fixed little-endian layouts in
``.rtrace``/checkpoint stores).  This module performs abstract
interpretation over the pass-1 summaries to infer, for every tracked
expression, an :class:`AbstractValue`:

* **dtype** — canonical numpy dtype (width + signedness + float/int);
* **unit** — what the number *means*: ``seconds``, ``packets``,
  ``bytes``, ``ip-int``, ``port``, ``window-index``;
* **origin** — which ``PacketBatch`` column the value derived from;
* **bits** — a conservative upper bound on the significant value bits
  (for overflow and cast-safety reasoning: ``x >> 32`` of a 64-bit
  quantity needs at most 32 bits, so ``.astype(uint32)`` is proven safe).

Everything is summary-driven: :class:`TypeflowExtractor` runs once per
function during pass 1 and emits a JSON-serialisable :class:`FunctionTypeflow`
(an expression IR whose leaves are parameters, batch columns, literals and
project calls, plus cast/arithmetic/compare/accumulation/sink events), so
the content-addressed summary cache covers typeflow and warm runs re-parse
nothing.  :class:`TypeflowAnalysis` then joins call-site argument values
into callee parameters and return expressions into call results until
fixpoint — the same interprocedural discipline as the RPR009 mutation
closure — and the RPR010–RPR014 rules evaluate the recorded events
against the solved environment.

The lattice definition (unit vocabulary, column seeds, dtype tables) is
fingerprinted into the summary-cache salt: editing it invalidates every
cached summary.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint._ast import resolve

#: Bump on any change to the extraction or evaluation semantics.
TYPEFLOW_VERSION = 1

# ---------------------------------------------------------------------------
# the lattice: dtypes, units, column seeds
# ---------------------------------------------------------------------------

#: Canonical integer/float dtypes with their widths in bits.
DTYPE_BITS: Dict[str, int] = {
    "uint8": 8, "uint16": 16, "uint32": 32, "uint64": 64,
    "int8": 8, "int16": 16, "int32": 32, "int64": 64,
    "float32": 32, "float64": 64,
    "bool": 1,
}

#: The unit vocabulary of the packet pipeline.
UNITS: Tuple[str, ...] = (
    "seconds", "packets", "bytes", "ip-int", "port", "window-index",
)

#: Semantic value bounds implied by a unit tag regardless of storage dtype:
#: an IPv4 address is < 2**32 and a port < 2**16 *by definition*, so a
#: value tagged with one of these units needs at most this many bits.
UNIT_VALUE_BITS: Dict[str, int] = {
    "ip-int": 32,
    "port": 16,
}

#: Column name -> (canonical dtype, unit tag).  Mirrors
#: ``repro.telescope.packet._COLUMNS`` plus the semantic unit of each
#: column; this is the seed of the whole analysis.
COLUMN_TYPES: Dict[str, Tuple[str, Optional[str]]] = {
    "time": ("float64", "seconds"),
    "src_ip": ("uint32", "ip-int"),
    "dst_ip": ("uint32", "ip-int"),
    "src_port": ("uint16", "port"),
    "dst_port": ("uint16", "port"),
    "ip_id": ("uint16", None),
    "seq": ("uint32", None),
    "ttl": ("uint8", None),
    "window": ("uint16", None),
    "flags": ("uint8", None),
}

#: Parameter/variable name suffixes that imply a unit when interprocedural
#: propagation has nothing better (documented in docs/lint.md).
NAME_UNIT_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_seconds", "seconds"),
    ("_window_index", "window-index"),
    ("_widx", "window-index"),
    ("_bytes", "bytes"),
    ("_packets", "packets"),
    ("_pkts", "packets"),
    ("_port", "port"),
    ("_ip", "ip-int"),
    ("_ts", "seconds"),
    ("_s", "seconds"),
)

#: numpy dtype spellings (dotted names and struct-style strings) mapped to
#: canonical dtypes; struct strings also carry explicit endianness.
_DTYPE_NAMES: Dict[str, str] = {
    "numpy.uint8": "uint8", "numpy.uint16": "uint16",
    "numpy.uint32": "uint32", "numpy.uint64": "uint64",
    "numpy.int8": "int8", "numpy.int16": "int16",
    "numpy.int32": "int32", "numpy.int64": "int64",
    "numpy.float32": "float32", "numpy.float64": "float64",
    "numpy.single": "float32", "numpy.double": "float64",
    "numpy.intp": "int64", "numpy.int_": "int64",
    "numpy.bool_": "bool",
}

_STRUCT_CODES: Dict[str, str] = {
    "u1": "uint8", "u2": "uint16", "u4": "uint32", "u8": "uint64",
    "i1": "int8", "i2": "int16", "i4": "int32", "i8": "int64",
    "f4": "float32", "f8": "float64",
    "b1": "bool",
}


def lattice_fingerprint() -> str:
    """Content fingerprint of the lattice definition (part of the cache
    salt — editing the unit vocabulary or column seeds re-analyses all)."""
    material = {
        "version": TYPEFLOW_VERSION,
        "units": list(UNITS),
        "unit_bits": UNIT_VALUE_BITS,
        "columns": {k: list(v) for k, v in COLUMN_TYPES.items()},
        "suffixes": [list(p) for p in NAME_UNIT_SUFFIXES],
        "dtypes": DTYPE_BITS,
    }
    digest = hashlib.blake2b(digest_size=8)
    digest.update(json.dumps(material, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def parse_dtype(text: Optional[str]) -> Tuple[Optional[str], Optional[str]]:
    """Canonical (dtype, endianness) for a dtype spelling.

    ``numpy.uint32`` → ``("uint32", None)``; ``"<u4"`` → ``("uint32", "<")``;
    ``"u4"`` → ``("uint32", None)``; unknown spellings → ``(None, None)``.
    """
    if not text:
        return None, None
    if text in _DTYPE_NAMES:
        return _DTYPE_NAMES[text], None
    if text in DTYPE_BITS:
        return text, None
    endian: Optional[str] = None
    body = text
    if body and body[0] in "<>=|":
        endian = body[0]
        body = body[1:]
    return _STRUCT_CODES.get(body), endian


def _dtype_kind(dtype: str) -> str:
    if dtype.startswith("float"):
        return "float"
    if dtype.startswith("uint"):
        return "uint"
    if dtype == "bool":
        return "bool"
    return "int"


def int_capacity(dtype: str) -> int:
    """Magnitude bits an integer dtype can represent (sign bit excluded)."""
    width = DTYPE_BITS[dtype]
    return width - 1 if _dtype_kind(dtype) == "int" else width


# ---------------------------------------------------------------------------
# abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbstractValue:
    """One point of the typeflow lattice.

    ``None`` fields mean *unknown* (top); :data:`BOTTOM` means *no
    information yet* (used only inside the fixpoint — joining anything
    with bottom yields the other value).
    """

    dtype: Optional[str] = None
    unit: Optional[str] = None
    origin: Optional[str] = None  #: provenance PacketBatch column
    bits: Optional[int] = None  #: upper bound on significant value bits
    is_bottom: bool = False

    def tracked(self) -> bool:
        return self.origin is not None or self.unit is not None

    def width(self) -> Optional[int]:
        return DTYPE_BITS.get(self.dtype) if self.dtype else None


UNKNOWN = AbstractValue()
BOTTOM = AbstractValue(is_bottom=True)


def _is_int_dtype(dtype: str) -> bool:
    return _dtype_kind(dtype) in ("uint", "int")


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound; disagreement collapses a field to unknown."""
    if a.is_bottom:
        return b
    if b.is_bottom:
        return a
    bits: Optional[int]
    if a.bits is None or b.bits is None:
        bits = None
    else:
        bits = max(a.bits, b.bits)
    return AbstractValue(
        dtype=a.dtype if a.dtype == b.dtype else None,
        unit=a.unit if a.unit == b.unit else None,
        origin=a.origin if a.origin == b.origin else None,
        bits=bits,
    )


def promote_dtype(a: AbstractValue, b: AbstractValue) -> Optional[str]:
    """Conservative numpy-style result dtype of a binary operation.

    A weak literal (``dtype is None`` with known ``bits``) adapts to the
    other operand, matching numpy scalar promotion for in-range Python
    ints.
    """
    if a.is_bottom or b.is_bottom:
        return None
    if a.dtype is None and a.bits is not None and b.dtype is not None:
        return b.dtype
    if b.dtype is None and b.bits is not None and a.dtype is not None:
        return a.dtype
    if a.dtype is None or b.dtype is None:
        return None
    ka, kb = _dtype_kind(a.dtype), _dtype_kind(b.dtype)
    wa = DTYPE_BITS[a.dtype]
    wb = DTYPE_BITS[b.dtype]
    if "float" in (ka, kb):
        return "float64" if max(wa, wb) > 32 or "float64" in (a.dtype, b.dtype) else "float32"
    if ka == kb:
        return a.dtype if wa >= wb else b.dtype
    # signed/unsigned mix: numpy widens to a signed type (or float64 for
    # uint64/int64); width reasoning only needs the capacity, so report
    # the wider kind-mixed width as signed.
    width = max(wa, wb)
    return None if width >= 64 else f"int{min(width * 2, 64)}"


# ---------------------------------------------------------------------------
# the expression IR (JSON-serialisable nested lists)
# ---------------------------------------------------------------------------

# Encodings:
#   ["u"]                              unknown
#   ["c", dtype, bits, unit, value]    constant (value: exact int or None)
#   ["p", index]                       parameter of the enclosing function
#   ["col", name]                      PacketBatch column load
#   ["call", dotted, [args...]]        call to a resolvable function
#   ["cast", dtype, inner]             dtype cast (None dtype = dynamic)
#   ["bin", op, left, right]           arithmetic/bitwise operation

Expr = List[Any]

_UNKNOWN_EXPR: Expr = ["u"]

_BIN_OPS: Dict[type, str] = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul", ast.Div: "div",
    ast.FloorDiv: "floordiv", ast.Mod: "mod", ast.Pow: "pow",
    ast.LShift: "shl", ast.RShift: "shr",
    ast.BitOr: "or", ast.BitAnd: "and", ast.BitXor: "xor",
}

#: Ops RPR011 audits for overflow risk.
OVERFLOW_OPS = ("add", "mul", "shl")

#: Ops that combine two quantities additively (unit compatibility applies).
_ADDITIVE_OPS = ("add", "sub")

_MAX_DEPTH = 10
_MAX_EVENTS = 400

#: numpy constructors that cast their first argument.
_CAST_CALLS = {
    "numpy.asarray", "numpy.ascontiguousarray", "numpy.array",
    "numpy.asfortranarray", "numpy.frombuffer",
}

_SAVEZ_CALLS = {"numpy.savez", "numpy.savez_compressed"}

_SUM_CALLS = {"numpy.sum", "numpy.nansum", "numpy.cumsum"}


def expr_is_const(expr: Expr) -> bool:
    return bool(expr) and expr[0] == "c"


def _const_int_value(expr: Expr) -> Optional[int]:
    if expr_is_const(expr) and isinstance(expr[4], int):
        return expr[4]
    return None


def iter_leaves(expr: Expr) -> Iterator[Expr]:
    """Yield the param/col/call leaves of an expression tree."""
    kind = expr[0] if expr else "u"
    if kind in ("p", "col"):
        yield expr
    elif kind == "call":
        yield expr
        for arg in expr[2]:
            yield from iter_leaves(arg)
    elif kind == "cast":
        yield from iter_leaves(expr[2])
    elif kind == "bin":
        yield from iter_leaves(expr[2])
        yield from iter_leaves(expr[3])


# ---------------------------------------------------------------------------
# per-function typeflow records
# ---------------------------------------------------------------------------


@dataclass
class TypeCall:
    """A call site with abstract argument expressions (param seeding)."""

    callee: str
    args: List[Expr]
    lineno: int

    def to_list(self) -> List[Any]:
        return [self.callee, self.args, self.lineno]

    @classmethod
    def from_list(cls, data: Sequence[Any]) -> "TypeCall":
        return cls(callee=data[0], args=list(data[1]), lineno=int(data[2]))


@dataclass
class TypeEvent:
    """One recorded site the RPR010–RPR014 rules may flag.

    ``kind`` ∈ {``cast``, ``binop``, ``compare``, ``accum``, ``sink``};
    ``data`` holds the kind-specific payload (expression trees, target
    dtypes, flags).  ``wrap`` is True inside a ``with np.errstate(...)``
    block — arithmetic there has declared its wraparound intent.
    """

    kind: str
    lineno: int
    col: int
    text: str
    data: Dict[str, Any] = field(default_factory=dict)
    wrap: bool = False
    loop: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "lineno": self.lineno, "col": self.col,
                "text": self.text, "data": self.data, "wrap": self.wrap,
                "loop": self.loop}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TypeEvent":
        return cls(kind=data["kind"], lineno=int(data["lineno"]),
                   col=int(data["col"]), text=data["text"],
                   data=dict(data["data"]), wrap=bool(data["wrap"]),
                   loop=bool(data["loop"]))


@dataclass
class FunctionTypeflow:
    """The serialisable typeflow facts of one function."""

    events: List[TypeEvent] = field(default_factory=list)
    returns: List[Expr] = field(default_factory=list)
    calls: List[TypeCall] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [e.to_dict() for e in self.events],
            "returns": self.returns,
            "calls": [c.to_list() for c in self.calls],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionTypeflow":
        return cls(
            events=[TypeEvent.from_dict(e) for e in data["events"]],
            returns=[list(r) for r in data["returns"]],
            calls=[TypeCall.from_list(c) for c in data["calls"]],
        )


# ---------------------------------------------------------------------------
# extraction (pass 1, per function)
# ---------------------------------------------------------------------------


def _short_text(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - malformed expression
        return "<expr>"
    return text if len(text) <= 72 else text[:69] + "..."


class TypeflowExtractor:
    """Builds a :class:`FunctionTypeflow` for one function body.

    Locals are tracked in statement order (a use reads the latest
    binding); branch-local rebinding is approximated by last-wins, which
    is fine for a linter that only ever *under*-claims.
    """

    def __init__(
        self,
        params: Sequence[str],
        aliases: Dict[str, str],
        resolve_call: Callable[[ast.Call], Optional[str]],
    ):
        self.params = list(params)
        self.param_index = {name: i for i, name in enumerate(params)}
        self.aliases = aliases
        self.resolve_call = resolve_call
        self.env: Dict[str, Expr] = {}
        self.out = FunctionTypeflow()
        self._loop_depth = 0
        self._wrap_depth = 0

    # -- public entry --------------------------------------------------------

    def extract(self, func: ast.AST) -> FunctionTypeflow:
        body = getattr(func, "body", [])
        self._block(body)
        return self.out

    # -- statements ----------------------------------------------------------

    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.out.returns.append(self._expr(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.For):
            self._expr(stmt.iter)
            # Iterating an array yields elements of the same scalar type.
            self._bind(stmt.target, self._expr(stmt.iter))
            self._loop_depth += 1
            self._block(stmt.body)
            self._loop_depth -= 1
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._loop_depth += 1
            self._block(stmt.body)
            self._loop_depth -= 1
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            wraps = any(self._is_errstate(item.context_expr)
                        for item in stmt.items)
            for item in stmt.items:
                self._expr(item.context_expr)
            if wraps:
                self._wrap_depth += 1
            self._block(stmt.body)
            if wraps:
                self._wrap_depth -= 1
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested defs are summarised separately
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _bind(self, target: ast.expr, value: Expr) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, _UNKNOWN_EXPR)

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        op = _BIN_OPS.get(type(stmt.op))
        value = self._expr(stmt.value)
        old = _UNKNOWN_EXPR
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if name in self.param_index:
                old = ["p", self.param_index[name]]
            else:
                old = self.env.get(name, _UNKNOWN_EXPR)
        if op == "add":
            self._event("accum", stmt, data={
                "how": "aug", "target": old, "value": value,
                "acc_dtype": None,
            })
        if op is not None:
            combined: Expr = ["bin", op, old, value]
            self._record_binop(stmt, op, old, value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = combined

    def _is_errstate(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            return (resolve(node.func, self.aliases) or "").startswith(
                "numpy.errstate"
            )
        return False

    # -- expressions ---------------------------------------------------------

    def _expr(self, node: ast.expr, depth: int = 0) -> Expr:
        if depth > _MAX_DEPTH:
            return _UNKNOWN_EXPR
        if isinstance(node, ast.Constant):
            return self._const(node.value)
        if isinstance(node, ast.Name):
            if node.id in self.param_index:
                return ["p", self.param_index[node.id]]
            return self.env.get(node.id, _UNKNOWN_EXPR)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.Subscript):
            self._expr(node.slice, depth + 1)
            # Indexing/slicing preserves the element type.
            return self._expr(node.value, depth + 1)
        if isinstance(node, ast.BinOp):
            return self._binop(node, depth)
        if isinstance(node, ast.UnaryOp):
            inner = self._expr(node.operand, depth + 1)
            return inner if isinstance(node.op, (ast.USub, ast.UAdd)) else _UNKNOWN_EXPR
        if isinstance(node, ast.Compare):
            return self._compare(node, depth)
        if isinstance(node, ast.Call):
            return self._call(node, depth)
        if isinstance(node, ast.IfExp):
            self._expr(node.test, depth + 1)
            left = self._expr(node.body, depth + 1)
            self._expr(node.orelse, depth + 1)
            return left
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._expr(elt, depth + 1)
            return _UNKNOWN_EXPR
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._expr(key, depth + 1)
            for value in node.values:
                self._expr(value, depth + 1)
            return _UNKNOWN_EXPR
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            return _UNKNOWN_EXPR
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._expr(value, depth + 1)
            return _UNKNOWN_EXPR
        return _UNKNOWN_EXPR

    def _const(self, value: Any) -> Expr:
        # Literal ints are *weak* (dtype None): they adapt to the other
        # operand the way numpy scalar promotion does.
        if isinstance(value, bool):
            return ["c", "bool", 1, None, int(value)]
        if isinstance(value, int):
            bits = max(value.bit_length(), 1) if value >= 0 else None
            exact = value if -(2 ** 63) <= value < 2 ** 64 else None
            return ["c", None, bits, None, exact]
        if isinstance(value, float):
            return ["c", "float64", None, None, None]
        return _UNKNOWN_EXPR

    def _attribute(self, node: ast.Attribute) -> Expr:
        base = node.value
        receiver_ok = (
            (isinstance(base, ast.Name) and base.id not in self.aliases)
            or (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self")
        )
        if receiver_ok and node.attr in COLUMN_TYPES:
            return ["col", node.attr]
        if node.attr in ("size", "itemsize", "ndim"):
            return ["c", "int64", None, None, None]
        if node.attr == "nbytes":
            return ["c", "int64", None, "bytes", None]
        return _UNKNOWN_EXPR

    def _binop(self, node: ast.BinOp, depth: int) -> Expr:
        op = _BIN_OPS.get(type(node.op))
        left = self._expr(node.left, depth + 1)
        right = self._expr(node.right, depth + 1)
        if op is None:
            return _UNKNOWN_EXPR
        self._record_binop(node, op, left, right)
        return ["bin", op, left, right]

    def _record_binop(self, node: ast.AST, op: str,
                      left: Expr, right: Expr) -> None:
        if op not in OVERFLOW_OPS and op not in _ADDITIVE_OPS:
            return
        if expr_is_const(left) and expr_is_const(right):
            return
        self._event("binop", node, data={"op": op, "l": left, "r": right})

    def _compare(self, node: ast.Compare, depth: int) -> Expr:
        left = self._expr(node.left, depth + 1)
        for comparator in node.comparators:
            right = self._expr(comparator, depth + 1)
            if not (expr_is_const(left) and expr_is_const(right)):
                self._event("compare", node, data={"l": left, "r": right})
            left = right
        return ["c", "bool", 1, None, None]

    def _call(self, node: ast.Call, depth: int) -> Expr:
        func = node.func
        # x.astype(dtype)
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            src = self._expr(func.value, depth + 1)
            dtype = self._dtype_arg(node, 0)
            direct_col = (
                isinstance(func.value, ast.Attribute)
                and func.value.attr in COLUMN_TYPES
            )
            self._event("cast", node, data={
                "dtype": dtype, "src": src, "direct_col": direct_col,
            })
            for arg in node.args[1:]:
                self._expr(arg, depth + 1)
            return ["cast", dtype, src]

        resolved = resolve(func, self.aliases) if isinstance(
            func, (ast.Name, ast.Attribute)
        ) else None

        # numpy scalar constructors: np.uint64(32) and friends.
        if resolved in _DTYPE_NAMES:
            dtype = _DTYPE_NAMES[resolved]
            if len(node.args) == 1:
                inner = self._expr(node.args[0], depth + 1)
                exact = _const_int_value(inner)
                if exact is not None:
                    return ["c", dtype, max(exact.bit_length(), 1), None, exact]
                self._event("cast", node, data={
                    "dtype": dtype, "src": inner, "direct_col": False,
                })
                return ["cast", dtype, inner]
            return ["c", dtype, DTYPE_BITS.get(dtype), None, None]

        # np.asarray(x, dtype=...) and friends.
        if resolved in _CAST_CALLS and node.args:
            src = self._expr(node.args[0], depth + 1)
            dtype = self._dtype_kwarg(node) or self._dtype_arg(node, 1)
            if dtype is not None:
                self._event("cast", node, data={
                    "dtype": dtype, "src": src, "direct_col": False,
                })
                return ["cast", dtype, src]
            return src

        # Accumulating reductions.
        if resolved in _SUM_CALLS and node.args:
            src = self._expr(node.args[0], depth + 1)
            acc_dtype = self._dtype_kwarg(node)
            self._event("accum", node, data={
                "how": "npsum", "target": _UNKNOWN_EXPR, "value": src,
                "acc_dtype": acc_dtype,
            })
            return ["cast", acc_dtype, src] if acc_dtype else src
        if isinstance(func, ast.Name) and func.id == "sum" and node.args:
            src = self._expr(node.args[0], depth + 1)
            self._event("accum", node, data={
                "how": "pysum", "target": _UNKNOWN_EXPR, "value": src,
                "acc_dtype": None,
            })
            return src

        # Persistence sinks.
        if resolved in _SAVEZ_CALLS:
            for arg in node.args:
                self._expr(arg, depth + 1)
            for kw in node.keywords:
                value = self._expr(kw.value, depth + 1)
                if kw.arg is not None:
                    self._event("sink", node, data={
                        "sink": "savez", "name": kw.arg, "value": value,
                    })
            return _UNKNOWN_EXPR

        # Builtin numeric coercions produce Python numbers (arbitrary
        # precision — they cannot wrap), so keep provenance but no dtype.
        if isinstance(func, ast.Name) and func.id in ("int", "float") \
                and len(node.args) == 1:
            inner = self._expr(node.args[0], depth + 1)
            return ["cast", None, inner]
        if isinstance(func, ast.Name) and func.id == "len":
            for arg in node.args:
                self._expr(arg, depth + 1)
            return ["c", "int64", None, None, None]

        # Ordinary call: record for interprocedural propagation when the
        # callee resolves; arguments are always visited.
        args = [self._expr(arg, depth + 1) for arg in node.args]
        for kw in node.keywords:
            self._expr(kw.value, depth + 1)
        callee = self.resolve_call(node)
        if callee is not None:
            self.out.calls.append(TypeCall(
                callee=callee, args=args, lineno=node.lineno,
            ))
            return ["call", callee, args]
        return _UNKNOWN_EXPR

    def _dtype_arg(self, node: ast.Call, index: int) -> Optional[str]:
        if len(node.args) <= index:
            return self._dtype_kwarg(node)
        return self._dtype_of(node.args[index])

    def _dtype_kwarg(self, node: ast.Call) -> Optional[str]:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self._dtype_of(kw.value)
        return None

    def _dtype_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            canon, _ = parse_dtype(node.value)
            return canon
        dotted = resolve(node, self.aliases)
        if dotted is not None:
            canon, _ = parse_dtype(dotted)
            return canon
        return None

    def _event(self, kind: str, node: ast.AST,
               data: Dict[str, Any]) -> None:
        if len(self.out.events) >= _MAX_EVENTS:
            return
        self.out.events.append(TypeEvent(
            kind=kind,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            text=_short_text(node) if isinstance(node, ast.AST) else "",
            data=data,
            wrap=self._wrap_depth > 0,
            loop=self._loop_depth > 0,
        ))


# ---------------------------------------------------------------------------
# the interprocedural solver (pass 3)
# ---------------------------------------------------------------------------


@dataclass
class TypeflowFunction:
    """Solver-side view of one function."""

    fqname: str
    rel_path: str
    params: List[str]
    flow: FunctionTypeflow


class TypeflowAnalysis:
    """Whole-program fixpoint over the per-function typeflow records.

    Parameters start at bottom and absorb (join) the abstract value of
    every call-site argument; return values join every return expression.
    The lattice is finite, joins only move upward, so the iteration
    terminates; evaluation order does not affect the fixpoint, making
    diagnostics byte-identical at any ``--workers`` count.
    """

    _MAX_ROUNDS = 40

    def __init__(self, functions: Dict[str, TypeflowFunction]):
        self.functions = functions
        self.param_values: Dict[str, List[AbstractValue]] = {
            name: [BOTTOM] * len(fn.params)
            for name, fn in functions.items()
        }
        self.return_values: Dict[str, AbstractValue] = {
            name: BOTTOM for name in functions
        }
        self._solved = False

    # -- solving -------------------------------------------------------------

    def solve(self) -> None:
        if self._solved:
            return
        names = sorted(self.functions)
        for _ in range(self._MAX_ROUNDS):
            changed = False
            for name in names:
                fn = self.functions[name]
                for call in fn.flow.calls:
                    changed |= self._apply_call(name, call)
                ret = BOTTOM
                for expr in fn.flow.returns:
                    ret = join(ret, self.eval(name, expr))
                if ret != self.return_values[name]:
                    self.return_values[name] = join(
                        self.return_values[name], ret
                    )
                    changed = True
            if not changed:
                break
        self._solved = True

    def _apply_call(self, caller: str, call: TypeCall) -> bool:
        callee = self.functions.get(call.callee)
        if callee is None:
            return False
        shift = 1 if callee.params[:1] in (["self"], ["cls"]) else 0
        table = self.param_values[call.callee]
        changed = False
        for arg_idx, arg in enumerate(call.args):
            target = arg_idx + shift
            if target >= len(table):
                continue
            value = self.eval(caller, arg)
            joined = join(table[target], value)
            if joined != table[target]:
                table[target] = joined
                changed = True
        return changed

    # -- evaluation ----------------------------------------------------------

    def eval(self, fname: str, expr: Expr) -> AbstractValue:
        """Abstract value of ``expr`` in the (current) solved environment."""
        kind = expr[0] if expr else "u"
        if kind == "u":
            return UNKNOWN
        if kind == "c":
            return AbstractValue(dtype=expr[1], unit=expr[3], bits=expr[2])
        if kind == "p":
            return self._param_value(fname, expr[1])
        if kind == "col":
            dtype, unit = COLUMN_TYPES[expr[1]]
            return AbstractValue(dtype=dtype, unit=unit, origin=expr[1],
                                 bits=DTYPE_BITS[dtype])
        if kind == "call":
            value = self.return_values.get(expr[1], UNKNOWN)
            return UNKNOWN if value.is_bottom else value
        if kind == "cast":
            return self._eval_cast(fname, expr)
        if kind == "bin":
            return self._eval_bin(fname, expr)
        return UNKNOWN

    def _param_value(self, fname: str, index: int) -> AbstractValue:
        fn = self.functions.get(fname)
        table = self.param_values.get(fname)
        if fn is None or table is None or index >= len(table):
            return UNKNOWN
        value = table[index]
        if value.is_bottom:
            value = UNKNOWN
        if value.unit is None and index < len(fn.params):
            fallback = self._name_unit(fn.params[index])
            if fallback is not None:
                value = AbstractValue(dtype=value.dtype, unit=fallback,
                                      origin=value.origin, bits=value.bits)
        if value.bits is None and value.unit in UNIT_VALUE_BITS:
            value = AbstractValue(dtype=value.dtype, unit=value.unit,
                                  origin=value.origin,
                                  bits=UNIT_VALUE_BITS[value.unit])
        return value

    @staticmethod
    def _name_unit(name: str) -> Optional[str]:
        for suffix, unit in NAME_UNIT_SUFFIXES:
            if name.endswith(suffix):
                return unit
        return None

    def _eval_cast(self, fname: str, expr: Expr) -> AbstractValue:
        inner = self.eval(fname, expr[2])
        if inner.is_bottom:
            return BOTTOM
        dtype: Optional[str] = expr[1]
        if dtype is None:
            return AbstractValue(unit=inner.unit, origin=inner.origin,
                                 bits=inner.bits)
        cap = int_capacity(dtype)
        bits: Optional[int]
        if _dtype_kind(dtype) == "float":
            bits = None
        elif inner.bits is not None:
            bits = min(inner.bits, cap)
        else:
            bits = cap
        return AbstractValue(dtype=dtype, unit=inner.unit,
                             origin=inner.origin, bits=bits)

    def _eval_bin(self, fname: str, expr: Expr) -> AbstractValue:
        op = expr[1]
        left = self.eval(fname, expr[2])
        right = self.eval(fname, expr[3])
        if left.is_bottom or right.is_bottom:
            return BOTTOM
        dtype = promote_dtype(left, right)
        unit = self._unit_of(op, left, right)
        origin = self._origin_of(left, right)
        bits = self.raw_bits(op, left, right, expr[3])
        # The stored result is *physical*: whatever the mathematical bound,
        # an N-bit register holds at most N bits (RPR011 audits the raw
        # bound at the operation itself; downstream sees the wrapped value).
        if bits is not None and dtype is not None and _is_int_dtype(dtype):
            bits = min(bits, int_capacity(dtype))
        return AbstractValue(dtype=dtype, unit=unit, origin=origin, bits=bits)

    @staticmethod
    def _unit_of(op: str, left: AbstractValue,
                 right: AbstractValue) -> Optional[str]:
        if op in _ADDITIVE_OPS or op in ("mod",):
            if left.unit == right.unit:
                return left.unit
            # Unitless literals/offsets keep the tagged side's unit; a
            # genuine mismatch is flagged by RPR012 and collapses here.
            if left.unit is None:
                return right.unit
            if right.unit is None:
                return left.unit
            return None
        if op in ("and", "or", "xor", "shl", "shr"):
            return left.unit if right.unit is None else None
        return None

    @staticmethod
    def _origin_of(left: AbstractValue,
                   right: AbstractValue) -> Optional[str]:
        if left.origin == right.origin:
            return left.origin
        if left.origin is None:
            return right.origin
        if right.origin is None:
            return left.origin
        return None  # two different columns mixed — ambiguous provenance

    @staticmethod
    def raw_bits(op: str, left: AbstractValue, right: AbstractValue,
                 right_expr: Expr) -> Optional[int]:
        """Mathematical (uncapped) bit bound of ``left op right`` — what
        RPR011 compares against the result dtype's capacity."""
        lb, rb = left.bits, right.bits
        if op == "shl":
            shift = _const_int_value(right_expr)
            if lb is None or shift is None or shift < 0:
                return None
            return lb + shift
        if op == "shr":
            shift = _const_int_value(right_expr)
            if lb is None:
                return None
            return max(lb - shift, 0) if shift is not None and shift >= 0 else lb
        if op == "and":
            candidates = [b for b in (lb, rb) if b is not None]
            return min(candidates) if candidates else None
        if op in ("or", "xor"):
            if lb is None or rb is None:
                return None
            return max(lb, rb)
        if op == "add" or op == "sub":
            if lb is None or rb is None:
                return None
            return max(lb, rb) + 1
        if op == "mul":
            if lb is None or rb is None:
                return None
            return lb + rb
        if op in ("floordiv", "mod"):
            return lb
        return None

    # -- queries for the rules ----------------------------------------------

    def involves_tracked(self, fname: str, expr: Expr) -> bool:
        """True when any leaf of ``expr`` carries column provenance or a
        unit tag — the gate that keeps RPR011 off generic arithmetic."""
        for leaf in iter_leaves(expr):
            if leaf[0] == "col":
                return True
            if leaf[0] == "p":
                value = self._param_value(fname, leaf[1])
                if value.tracked():
                    return True
            if leaf[0] == "call":
                value = self.return_values.get(leaf[1], UNKNOWN)
                if not value.is_bottom and value.tracked():
                    return True
        return False

    def iter_events(self) -> Iterator[Tuple[TypeflowFunction, TypeEvent]]:
        for name in sorted(self.functions):
            fn = self.functions[name]
            for event in fn.flow.events:
                yield fn, event


def describe(value: AbstractValue) -> str:
    """Human-readable abstract value for diagnostics."""
    parts: List[str] = []
    if value.dtype:
        parts.append(value.dtype)
    if value.unit:
        parts.append(f"unit={value.unit}")
    if value.origin:
        parts.append(f"from column '{value.origin}'")
    if value.bits is not None:
        parts.append(f"<={value.bits} bits")
    return ", ".join(parts) if parts else "unknown"
