"""Reporting layer: table renderers and figure-series extraction."""

from repro.reporting.tables import (
    TABLE1_TOOLS,
    paper_report_to_json,
    render_paper_report,
    render_paper_report_json,
    render_report_doc,
    render_table1,
    render_table2,
)
from repro.reporting.export import (
    export_cdf,
    export_csv,
    export_json,
    export_year_summaries,
)
from repro.reporting.validation import (
    ClaimCheck,
    render_scorecard,
    validate_reproduction,
)
from repro.reporting.figures import (
    OrgCoverageRow,
    figure1_event_decay,
    figure2_volatility_cdfs,
    figure3_ports_per_ip,
    figure4_tool_mix_per_port,
    figure5_scanner_types_per_port,
    figure6_recurrence,
    figure7_speed_coverage,
    figure8_org_port_coverage,
)

__all__ = [
    "TABLE1_TOOLS",
    "paper_report_to_json",
    "render_paper_report",
    "render_paper_report_json",
    "render_report_doc",
    "render_table1",
    "render_table2",
    "ClaimCheck",
    "render_scorecard",
    "validate_reproduction",
    "export_cdf",
    "export_csv",
    "export_json",
    "export_year_summaries",
    "OrgCoverageRow",
    "figure1_event_decay",
    "figure2_volatility_cdfs",
    "figure3_ports_per_ip",
    "figure4_tool_mix_per_port",
    "figure5_scanner_types_per_port",
    "figure6_recurrence",
    "figure7_speed_coverage",
    "figure8_org_port_coverage",
]
