"""The reproduction scorecard.

`validate_reproduction` runs every headline claim of the paper against a set
of analysed periods and returns a structured pass/fail list — the
artifact-evaluation view of this repository in one call. The benchmark
suite checks the same ground in more depth; the scorecard is the quick,
self-contained summary (also exposed as ``repro-scan validate``).

Each check encodes a *shape* criterion (see EXPERIMENTS.md): direction of a
trend, an ordering, a bounded ratio — not absolute parity with the paper's
proprietary vantage point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro._util.fmt import format_table
from repro._util.stats import pearson_r
from repro.core.classification import capability_by_type, institutional_speed_ratio, type_shares
from repro.core.ecosystem import summarize_period
from repro.core.pipeline import PeriodAnalysis
from repro.core.ports_analysis import (
    port_pair_affinity,
    ports_per_source_summary,
    speed_ports_correlation,
)
from repro.core.speed import nmap_faster_than_masscan, speed_stats_by_tool
from repro.core.volatility import volatility_summary
from repro.enrichment.types import ScannerType
from repro.scanners.base import Tool


@dataclass(frozen=True)
class ClaimCheck:
    """One verified paper claim."""

    claim_id: str
    section: str
    description: str
    expected: str
    measured: str
    passed: bool


def _fmt(value: float, kind: str = "x") -> str:
    if kind == "%":
        return f"{value:.1%}"
    if kind == "x":
        return f"{value:.1f}x"
    return f"{value:.3g}"


def validate_reproduction(
    analyses: Mapping[int, PeriodAnalysis],
    sims: Optional[Mapping[int, object]] = None,
) -> List[ClaimCheck]:
    """Check the paper's headline claims on analysed periods.

    ``analyses`` should cover (at least) an early, a middle and a late study
    year; checks whose required years are missing are skipped. ``sims``
    (year → ``SimulationResult``) unlocks the volume-projection and
    SYN-share checks.
    """
    if not analyses:
        raise ValueError("no analyses to validate")
    checks: List[ClaimCheck] = []
    years = sorted(analyses)
    summaries = {y: summarize_period(analyses[y]) for y in years}

    def add(claim_id, section, description, expected, measured, passed):
        checks.append(ClaimCheck(claim_id, section, description, expected,
                                 measured, bool(passed)))

    # -- §4.1 growth ------------------------------------------------------
    if sims and len(years) >= 2 and years[0] <= 2016 and years[-1] >= 2023:
        first, last = years[0], years[-1]
        ppd = {
            y: len(analyses[y].study_batch) / analyses[y].days
            / sims[y].packet_scale
            for y in (first, last) if y in sims
        }
        if len(ppd) == 2:
            growth = ppd[last] / ppd[first]
            add("growth-packets", "§4.1",
                f"packet volume grows strongly {first}→{last}",
                "~30x over 2015–2024", _fmt(growth), 10 < growth < 80)
        spm = {
            y: summaries[y].scans_per_month / sims[y].scan_scale
            for y in (first, last) if y in sims
        }
        if len(spm) == 2:
            growth = spm[last] / spm[first]
            add("growth-scans", "§4.1",
                f"scan count grows strongly {first}→{last}",
                "~39x over 2015–2024", _fmt(growth), 10 < growth < 100)

    # -- §3.1 separation ----------------------------------------------------
    if sims:
        shares = [sims[y].syn_scan_share() for y in years if y in sims]
        if shares:
            mean_share = float(np.mean(shares))
            add("syn-share", "§3.1",
                "~98% of unsolicited TCP traffic is SYN scanning",
                "98%", _fmt(mean_share, "%"), 0.95 < mean_share < 0.999)

    # -- §4.4 volatility -----------------------------------------------------
    vol = volatility_summary(analyses[years[-1]])
    frac2x = vol["sources"].fraction_at_least_2x
    add("weekly-volatility", "§4.4",
        "a large share of /16s changes >=2x week-over-week",
        ">50%", _fmt(frac2x, "%"), frac2x > 0.35)

    # -- §5.1 single-port decline --------------------------------------------
    singles = {y: ports_per_source_summary(analyses[y].study_batch)
               .fraction_single_port for y in years}
    r, _ = pearson_r(list(singles), list(singles.values()))
    add("single-port-decline", "§5.1",
        "single-port sources decline across the decade (83%→65%)",
        "negative trend", f"r={r:.2f}", r < -0.5 if not np.isnan(r) else False)

    # -- §5.1 alias affinity ---------------------------------------------------
    affinities = {y: port_pair_affinity(analyses[y].study_scans, 80, 8080)
                  for y in years}
    usable = {y: v for y, v in affinities.items() if not np.isnan(v)}
    if len(usable) >= 2:
        first, last = min(usable), max(usable)
        add("alias-affinity", "§5.1",
            "80→8080 coupling grows (18%→87%)",
            "rising", f"{usable[first]:.0%}→{usable[last]:.0%}",
            usable[last] > usable[first])

    # -- §5.3 speed–ports correlation -----------------------------------------
    corr = np.mean([speed_ports_correlation(analyses[y].study_scans)[0]
                    for y in years])
    add("speed-ports-r", "§5.3",
        "scan speed correlates positively with ports targeted",
        "R=0.88", f"R={corr:.2f}", corr > 0.15)

    # -- §6.3 tool speeds --------------------------------------------------------
    mid = years[len(years) // 2]
    by_tool = speed_stats_by_tool(analyses[mid].study_scans)
    if Tool.ZMAP in by_tool and len(by_tool) >= 3:
        fastest = max(by_tool, key=lambda t: by_tool[t].median_pps)
        add("zmap-fastest", "§6.3", "ZMap scans are the fastest on average",
            "zmap", fastest.value, fastest == Tool.ZMAP)
    nmap_vs = nmap_faster_than_masscan(analyses[mid].study_scans)
    if nmap_vs is not None:
        add("nmap-beats-masscan", "§6.3",
            "NMap hosts outpace Masscan hosts in practice",
            "true", str(nmap_vs).lower(), nmap_vs)

    # -- §6.8 institutional dominance -------------------------------------------
    late = years[-1]
    # The speed ratio is an all-years statement; measure it where it is
    # best-conditioned (the median of the per-year ratios), since the 2024
    # sharding era raises the non-institutional mean.
    ratios = [institutional_speed_ratio(analyses[y]) for y in years]
    ratios = [r for r in ratios if not np.isnan(r)]
    ratio = float(np.median(ratios)) if ratios else float("nan")
    add("institutional-speed", "§6.8",
        "institutions scan far faster than the average scanner",
        "~92x", _fmt(ratio), ratio > 8)
    rows = {r.scanner_type: r for r in type_shares(analyses[late])}
    inst = rows[ScannerType.INSTITUTIONAL]
    add("institutional-share", "Table 2",
        "institutional: tiny source share, outsized packet share",
        "0.16% sources / 32.6% packets",
        f"{inst.sources:.2%} / {inst.packets:.1%}",
        inst.sources < 0.02 and inst.packets > 5 * inst.sources)
    caps = capability_by_type(analyses[late])
    if (ScannerType.INSTITUTIONAL in caps and ScannerType.RESIDENTIAL in caps):
        inst_cov = caps[ScannerType.INSTITUTIONAL].coverage.mean
        res_cov = caps[ScannerType.RESIDENTIAL].coverage.mean
        add("institutional-coverage", "Fig 7",
            "institutional coverage exceeds residential",
            "higher", f"{inst_cov:.3%} vs {res_cov:.3%}", inst_cov > res_cov)

    # -- §6.2 Mirai era -----------------------------------------------------------
    mirai_years = [y for y in years if 2017 <= y <= 2018]
    if mirai_years:
        share = summaries[mirai_years[0]].tool_shares_by_scans.get(Tool.MIRAI, 0)
        add("mirai-era", "§6.2",
            f"Mirai drives a large share of {mirai_years[0]} scans",
            ">25% (2017: 46.5%)", _fmt(share, "%"), share > 0.15)

    return checks


def render_scorecard(checks: Sequence[ClaimCheck]) -> str:
    """Plain-text scorecard with a pass/fail summary line."""
    if not checks:
        raise ValueError("no checks to render")
    rows = [
        [("PASS" if c.passed else "FAIL"), c.claim_id, c.section,
         c.expected, c.measured]
        for c in checks
    ]
    passed = sum(c.passed for c in checks)
    table = format_table(["", "claim", "section", "paper", "measured"], rows)
    return f"{table}\n\n{passed}/{len(checks)} claims reproduced"
