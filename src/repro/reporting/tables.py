"""Text renderers for the paper's tables."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro._util.fmt import format_count, format_percent, format_table
from repro.core.classification import TypeShares
from repro.core.ecosystem import YearSummary
from repro.core.report import PaperReport
from repro.core.volatility import METRICS
from repro.scanners.base import Tool

#: Row order of the Table 1 tool block.
TABLE1_TOOLS = (Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.ZMAP)


def render_table1(
    summaries: Mapping[int, YearSummary],
    scale_note: Optional[str] = None,
) -> str:
    """Render Table 1: volumes, top ports and tool shares per year.

    ``summaries`` maps year → :class:`YearSummary` (any subset of years).
    """
    if not summaries:
        raise ValueError("no summaries to render")
    years = sorted(summaries)
    headers = ["metric"] + [str(y) for y in years]
    rows: List[List[str]] = []

    rows.append(["Packets/day"] + [
        format_count(summaries[y].packets_per_day) for y in years
    ])
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_packets
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by packets #{rank + 1}"] + cells)
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_sources
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by sources #{rank + 1}"] + cells)
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_scans
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by scans #{rank + 1}"] + cells)
    rows.append(["Scans/month"] + [
        format_count(summaries[y].scans_per_month) for y in years
    ])
    for tool in TABLE1_TOOLS:
        rows.append([f"{tool.value} (by scans)"] + [
            format_percent(summaries[y].tool_shares_by_scans.get(tool, 0.0))
            for y in years
        ])

    table = format_table(headers, rows)
    if scale_note:
        table += f"\n\n{scale_note}"
    return table


def render_paper_report(report: PaperReport) -> str:
    """Render one period's :class:`~repro.core.report.PaperReport` as text.

    Floats are rendered with ``repr`` (shortest round-trip form) rather than
    rounded: the batch and streaming paths promise *exact* equality, so the
    rendering is deliberately sensitive enough that any divergence — even in
    the last bit of a mean — shows up in a plain ``diff`` of the two outputs.
    """
    lines: List[str] = [
        f"paper report  year={report.year}  days={report.days}",
        f"study packets: {report.packets}",
        f"study scans: {report.scans}",
        "",
        "trends (§4.2):",
        f"  classic port share (22/80/8080): {report.trends.classic_port_share!r}",
        f"  port entropy (bits): {report.trends.port_entropy!r}",
        f"  country entropy (bits): {report.trends.country_entropy!r}",
    ]
    conc = report.trends.concentration
    if conc is not None:
        lines += [
            f"  concentration: gini={conc.gini!r} "
            f"top1%={conc.top_1pct_share!r} top10%={conc.top_10pct_share!r} "
            f"share_for_80pct={conc.share_for_80pct!r}",
        ]
    intensity = report.trends.intensity
    if intensity is not None:
        lines += [
            f"  intensity: median_packets={intensity.median_packets!r} "
            f"mean_packets={intensity.mean_packets!r} "
            f"median_duration_s={intensity.median_duration_s!r} "
            f"mean_duration_s={intensity.mean_duration_s!r}",
        ]

    lines += ["", "volatility (§4.4, week-over-week /16 activity):"]
    headers = ["metric", "pairs", "stable", ">=2x", ">=3x"]
    rows = [
        [
            metric,
            str(summary.pairs),
            repr(summary.fraction_stable),
            repr(summary.fraction_at_least_2x),
            repr(summary.fraction_at_least_3x),
        ]
        for metric, summary in (
            (m, report.volatility[m]) for m in METRICS
        )
    ]
    lines += ["  " + line for line in format_table(headers, rows).splitlines()]

    rec = report.recurrence
    lines += [
        "",
        "recurrence (§6.6):",
        f"  sources: {rec.overall.sources}",
        f"  fraction recurring: {rec.overall.fraction_recurring!r}",
        f"  fraction >100 scans: {rec.overall.fraction_over_100_scans!r}",
        f"  downtime within a day: "
        f"{rec.overall.fraction_downtime_within_day!r}",
        f"  daily-mode fraction: {rec.overall.daily_mode_fraction!r}",
        f"  institutional daily scanners: {rec.institutional_daily}",
    ]
    for stype in sorted(rec.by_type, key=lambda t: t.value):
        stats = rec.by_type[stype]
        lines.append(
            f"  {stype.value}: sources={stats.sources} "
            f"recurring={stats.fraction_recurring!r} "
            f"over_100={stats.fraction_over_100_scans!r}"
        )

    churn = report.churn
    lines += [
        "",
        "churn (§4.2, distinct sources):",
        f"  distinct sources: {int(churn.curve[-1]) if churn.curve.size else 0}",
    ]
    if churn.fit is not None:
        lines += [
            f"  fitted population: {churn.fit.population!r}",
            f"  fitted lifetime (days): {churn.fit.lifetime_days!r}",
            f"  inflation factor: {churn.fit.inflation_factor!r}",
        ]
    return "\n".join(lines)


def _cdf_to_json(cdf) -> Dict[str, List[float]]:
    values, fractions = cdf
    return {
        "values": [float(v) for v in values],
        "cdf": [float(v) for v in fractions],
    }


def _recurrence_stats_to_json(stats) -> Dict[str, object]:
    return {
        "sources": int(stats.sources),
        "fraction_recurring": float(stats.fraction_recurring),
        "fraction_over_100_scans": float(stats.fraction_over_100_scans),
        "scan_count_cdf": _cdf_to_json(stats.scan_count_cdf),
        "downtime_cdf": _cdf_to_json(stats.downtime_cdf),
        "fraction_downtime_within_day": float(stats.fraction_downtime_within_day),
        "daily_mode_fraction": float(stats.daily_mode_fraction),
    }


def paper_report_to_json(report: PaperReport) -> Dict[str, Any]:
    """The machine-readable twin of :func:`render_paper_report`.

    Every scalar the text renderer prints appears here under a stable path,
    plus the CDF/curve series the text tables omit.  All numerics are
    coerced to native ``int``/``float`` so ``json.dumps`` emits the same
    shortest-round-trip representation the text path gets from ``repr`` —
    the byte-parity promise extends to JSON, and every float survives a
    JSON round-trip exactly.
    """
    conc = report.trends.concentration
    intensity = report.trends.intensity
    rec = report.recurrence
    churn = report.churn
    doc: Dict[str, Any] = {
        "year": int(report.year),
        "days": int(report.days),
        "packets": int(report.packets),
        "scans": int(report.scans),
        "trends": {
            "classic_port_share": float(report.trends.classic_port_share),
            "port_entropy": float(report.trends.port_entropy),
            "country_entropy": float(report.trends.country_entropy),
            "concentration": None if conc is None else {
                "scans": int(conc.scans),
                "gini": float(conc.gini),
                "top_1pct_share": float(conc.top_1pct_share),
                "top_10pct_share": float(conc.top_10pct_share),
                "share_for_80pct": float(conc.share_for_80pct),
            },
            "intensity": None if intensity is None else {
                "scans": int(intensity.scans),
                "median_packets": float(intensity.median_packets),
                "mean_packets": float(intensity.mean_packets),
                "median_duration_s": float(intensity.median_duration_s),
                "mean_duration_s": float(intensity.mean_duration_s),
            },
        },
        "volatility": {
            metric: {
                "metric": summary.metric,
                "pairs": int(summary.pairs),
                "fraction_stable": float(summary.fraction_stable),
                "fraction_at_least_2x": float(summary.fraction_at_least_2x),
                "fraction_at_least_3x": float(summary.fraction_at_least_3x),
                "cdf": _cdf_to_json(summary.cdf),
            }
            for metric, summary in sorted(report.volatility.items())
        },
        "recurrence": {
            "overall": _recurrence_stats_to_json(rec.overall),
            "by_type": {
                stype.value: _recurrence_stats_to_json(rec.by_type[stype])
                for stype in sorted(rec.by_type, key=lambda t: t.value)
            },
            "institutional_daily": int(rec.institutional_daily),
        },
        "churn": {
            "curve": [int(v) for v in churn.curve],
            "distinct_sources": (
                int(churn.curve[-1]) if churn.curve.size else 0
            ),
            "fit": None if churn.fit is None else {
                "population": float(churn.fit.population),
                "lifetime_days": float(churn.fit.lifetime_days),
                "observed_sources": int(churn.fit.observed_sources),
                "inflation_factor": float(churn.fit.inflation_factor),
                "residual": float(churn.fit.residual),
            },
        },
    }
    return doc


def render_report_doc(doc: Dict[str, Any]) -> str:
    """Canonical JSON text for a report document.

    One serialisation (sorted keys, two-space indent) shared by the CLI
    ``--json`` flags and the HTTP API, so `diff` works across transports.
    """
    return json.dumps(doc, sort_keys=True, indent=2)


def render_paper_report_json(report: PaperReport) -> str:
    """Render the paper report as canonical JSON text."""
    return render_report_doc(paper_report_to_json(report))


def render_table2(shares: Sequence[TypeShares]) -> str:
    """Render Table 2: per-scanner-type shares of sources, scans, packets."""
    if not shares:
        raise ValueError("no type shares to render")
    headers = ["Scanner type", "Sources", "Scans", "Packets"]
    rows = [
        [
            str(row.scanner_type).capitalize(),
            format_percent(row.sources, 2),
            format_percent(row.scans, 2),
            format_percent(row.packets, 2),
        ]
        for row in shares
    ]
    return format_table(headers, rows)
