"""Text renderers for the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro._util.fmt import format_count, format_percent, format_table
from repro.core.classification import TypeShares
from repro.core.ecosystem import YearSummary
from repro.core.report import PaperReport
from repro.core.volatility import METRICS
from repro.scanners.base import Tool

#: Row order of the Table 1 tool block.
TABLE1_TOOLS = (Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.ZMAP)


def render_table1(
    summaries: Mapping[int, YearSummary],
    scale_note: Optional[str] = None,
) -> str:
    """Render Table 1: volumes, top ports and tool shares per year.

    ``summaries`` maps year → :class:`YearSummary` (any subset of years).
    """
    if not summaries:
        raise ValueError("no summaries to render")
    years = sorted(summaries)
    headers = ["metric"] + [str(y) for y in years]
    rows: List[List[str]] = []

    rows.append(["Packets/day"] + [
        format_count(summaries[y].packets_per_day) for y in years
    ])
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_packets
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by packets #{rank + 1}"] + cells)
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_sources
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by sources #{rank + 1}"] + cells)
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_scans
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by scans #{rank + 1}"] + cells)
    rows.append(["Scans/month"] + [
        format_count(summaries[y].scans_per_month) for y in years
    ])
    for tool in TABLE1_TOOLS:
        rows.append([f"{tool.value} (by scans)"] + [
            format_percent(summaries[y].tool_shares_by_scans.get(tool, 0.0))
            for y in years
        ])

    table = format_table(headers, rows)
    if scale_note:
        table += f"\n\n{scale_note}"
    return table


def render_paper_report(report: PaperReport) -> str:
    """Render one period's :class:`~repro.core.report.PaperReport` as text.

    Floats are rendered with ``repr`` (shortest round-trip form) rather than
    rounded: the batch and streaming paths promise *exact* equality, so the
    rendering is deliberately sensitive enough that any divergence — even in
    the last bit of a mean — shows up in a plain ``diff`` of the two outputs.
    """
    lines: List[str] = [
        f"paper report  year={report.year}  days={report.days}",
        f"study packets: {report.packets}",
        f"study scans: {report.scans}",
        "",
        "trends (§4.2):",
        f"  classic port share (22/80/8080): {report.trends.classic_port_share!r}",
        f"  port entropy (bits): {report.trends.port_entropy!r}",
        f"  country entropy (bits): {report.trends.country_entropy!r}",
    ]
    conc = report.trends.concentration
    if conc is not None:
        lines += [
            f"  concentration: gini={conc.gini!r} "
            f"top1%={conc.top_1pct_share!r} top10%={conc.top_10pct_share!r} "
            f"share_for_80pct={conc.share_for_80pct!r}",
        ]
    intensity = report.trends.intensity
    if intensity is not None:
        lines += [
            f"  intensity: median_packets={intensity.median_packets!r} "
            f"mean_packets={intensity.mean_packets!r} "
            f"median_duration_s={intensity.median_duration_s!r} "
            f"mean_duration_s={intensity.mean_duration_s!r}",
        ]

    lines += ["", "volatility (§4.4, week-over-week /16 activity):"]
    headers = ["metric", "pairs", "stable", ">=2x", ">=3x"]
    rows = [
        [
            metric,
            str(summary.pairs),
            repr(summary.fraction_stable),
            repr(summary.fraction_at_least_2x),
            repr(summary.fraction_at_least_3x),
        ]
        for metric, summary in (
            (m, report.volatility[m]) for m in METRICS
        )
    ]
    lines += ["  " + line for line in format_table(headers, rows).splitlines()]

    rec = report.recurrence
    lines += [
        "",
        "recurrence (§6.6):",
        f"  sources: {rec.overall.sources}",
        f"  fraction recurring: {rec.overall.fraction_recurring!r}",
        f"  fraction >100 scans: {rec.overall.fraction_over_100_scans!r}",
        f"  downtime within a day: "
        f"{rec.overall.fraction_downtime_within_day!r}",
        f"  daily-mode fraction: {rec.overall.daily_mode_fraction!r}",
        f"  institutional daily scanners: {rec.institutional_daily}",
    ]
    for stype in sorted(rec.by_type, key=lambda t: t.value):
        stats = rec.by_type[stype]
        lines.append(
            f"  {stype.value}: sources={stats.sources} "
            f"recurring={stats.fraction_recurring!r} "
            f"over_100={stats.fraction_over_100_scans!r}"
        )

    churn = report.churn
    lines += [
        "",
        "churn (§4.2, distinct sources):",
        f"  distinct sources: {int(churn.curve[-1]) if churn.curve.size else 0}",
    ]
    if churn.fit is not None:
        lines += [
            f"  fitted population: {churn.fit.population!r}",
            f"  fitted lifetime (days): {churn.fit.lifetime_days!r}",
            f"  inflation factor: {churn.fit.inflation_factor!r}",
        ]
    return "\n".join(lines)


def render_table2(shares: Sequence[TypeShares]) -> str:
    """Render Table 2: per-scanner-type shares of sources, scans, packets."""
    if not shares:
        raise ValueError("no type shares to render")
    headers = ["Scanner type", "Sources", "Scans", "Packets"]
    rows = [
        [
            str(row.scanner_type).capitalize(),
            format_percent(row.sources, 2),
            format_percent(row.scans, 2),
            format_percent(row.packets, 2),
        ]
        for row in shares
    ]
    return format_table(headers, rows)
