"""Text renderers for the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro._util.fmt import format_count, format_percent, format_table
from repro.core.classification import TypeShares
from repro.core.ecosystem import YearSummary
from repro.scanners.base import Tool

#: Row order of the Table 1 tool block.
TABLE1_TOOLS = (Tool.MASSCAN, Tool.NMAP, Tool.MIRAI, Tool.ZMAP)


def render_table1(
    summaries: Mapping[int, YearSummary],
    scale_note: Optional[str] = None,
) -> str:
    """Render Table 1: volumes, top ports and tool shares per year.

    ``summaries`` maps year → :class:`YearSummary` (any subset of years).
    """
    if not summaries:
        raise ValueError("no summaries to render")
    years = sorted(summaries)
    headers = ["metric"] + [str(y) for y in years]
    rows: List[List[str]] = []

    rows.append(["Packets/day"] + [
        format_count(summaries[y].packets_per_day) for y in years
    ])
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_packets
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by packets #{rank + 1}"] + cells)
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_sources
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by sources #{rank + 1}"] + cells)
    for rank in range(5):
        cells = []
        for y in years:
            tops = summaries[y].top_ports_by_scans
            cells.append(str(tops[rank]) if rank < len(tops) else "-")
        rows.append([f"Top port by scans #{rank + 1}"] + cells)
    rows.append(["Scans/month"] + [
        format_count(summaries[y].scans_per_month) for y in years
    ])
    for tool in TABLE1_TOOLS:
        rows.append([f"{tool.value} (by scans)"] + [
            format_percent(summaries[y].tool_shares_by_scans.get(tool, 0.0))
            for y in years
        ])

    table = format_table(headers, rows)
    if scale_note:
        table += f"\n\n{scale_note}"
    return table


def render_table2(shares: Sequence[TypeShares]) -> str:
    """Render Table 2: per-scanner-type shares of sources, scans, packets."""
    if not shares:
        raise ValueError("no type shares to render")
    headers = ["Scanner type", "Sources", "Scans", "Packets"]
    rows = [
        [
            str(row.scanner_type).capitalize(),
            format_percent(row.sources, 2),
            format_percent(row.scans, 2),
            format_percent(row.packets, 2),
        ]
        for row in shares
    ]
    return format_table(headers, rows)
