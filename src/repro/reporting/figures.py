"""Figure-series extraction.

Every figure in the paper's evaluation has a function here that reduces a
:class:`~repro.core.pipeline.PeriodAnalysis` (or several, for cross-year
figures) into the plain data series the figure plots.  The benchmark harness
prints these series; plotting is intentionally out of scope (no plotting
dependency), but every function returns data directly consumable by
matplotlib or similar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.classification import capability_by_type, port_type_distribution
from repro.core.events import EventResponse, event_response
from repro.core.institutions import org_footprints
from repro.core.pipeline import PeriodAnalysis
from repro.core.ports_analysis import ports_per_source_summary
from repro.core.recurrence import recurrence_by_type
from repro.core.volatility import volatility_summary
from repro.enrichment.types import ScannerType
from repro.scanners.base import Tool


def figure1_event_decay(
    analysis: PeriodAnalysis, events: Sequence[Tuple[int, int]]
) -> Dict[int, EventResponse]:
    """Figure 1: per-event relative activity series after disclosure."""
    return {
        port: event_response(analysis, port, day) for port, day in events
    }


def figure2_volatility_cdfs(analysis: PeriodAnalysis):
    """Figure 2: weekly /16 change-factor CDFs for sources/scans/packets."""
    return volatility_summary(analysis)


def figure3_ports_per_ip(
    analyses: Mapping[int, PeriodAnalysis]
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Figure 3: per-year CDF of distinct ports per source IP."""
    return {
        year: ports_per_source_summary(a.study_batch).cdf
        for year, a in analyses.items()
    }


def figure4_tool_mix_per_port(
    analysis: PeriodAnalysis, top_n: int = 10
) -> Dict[int, Dict[Tool, float]]:
    """Figure 4: traffic share per tool on the top-``top_n`` traffic ports."""
    batch = analysis.study_batch
    if len(batch) == 0:
        return {}
    ports, counts = np.unique(batch.dst_port, return_counts=True)
    top_ports = ports[np.argsort(counts)[::-1][:top_n]]

    scans = analysis.study_scans
    out: Dict[int, Dict[Tool, float]] = {}
    tool_values = scans.tool.astype(str)
    for port in top_ports.tolist():
        # Attribute each scan's packets to its tool, per primary port.
        mask = scans.primary_port == port
        total = scans.packets[mask].sum()
        mix: Dict[Tool, float] = {}
        if total > 0:
            for name in set(tool_values[mask].tolist()):
                sel = mask & (tool_values == name)
                mix[Tool(name)] = float(scans.packets[sel].sum() / total)
        out[int(port)] = mix
    return out


def figure5_scanner_types_per_port(
    analysis: PeriodAnalysis, top_n: int = 15
) -> Dict[int, Dict[ScannerType, float]]:
    """Figure 5: scanner-type mix over the top-``top_n`` ports."""
    return port_type_distribution(analysis, top_n=top_n)


def figure6_recurrence(analysis: PeriodAnalysis):
    """Figure 6: recurrence-count and downtime CDFs per scanner type."""
    return recurrence_by_type(analysis.study_scans)


def figure7_speed_coverage(analysis: PeriodAnalysis):
    """Figure 7: speed and coverage statistics per scanner type."""
    return capability_by_type(analysis)


@dataclass(frozen=True)
class OrgCoverageRow:
    """One bar of the Figure 8/9/10 port-coverage charts."""

    organisation: str
    ports: int
    coverage: float
    sources: int
    packets: int


def figure8_org_port_coverage(analysis: PeriodAnalysis) -> List[OrgCoverageRow]:
    """Figures 8–10: port-range coverage per known scanning organisation."""
    rows = [
        OrgCoverageRow(
            organisation=fp.organisation,
            ports=fp.distinct_ports,
            coverage=fp.port_coverage,
            sources=fp.sources,
            packets=fp.packets,
        )
        for fp in org_footprints(analysis).values()
    ]
    return sorted(rows, key=lambda r: -r.coverage)
