"""Export figure series and tables to CSV / JSON files.

The benchmark harness prints tables; for downstream plotting (matplotlib,
gnuplot, a paper's artifact repo) this module writes the same data to plain
files. Everything is stdlib-serialisable: numpy arrays become lists,
enums become their string values, dataclasses become dicts.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

import numpy as np

PathLike = Union[str, Path]


def _plain(value: Any) -> Any:
    """Recursively convert analysis outputs into JSON-serialisable data."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _plain(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(_plain(k)): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_plain(v) for v in value]
    return value


def export_json(path: PathLike, data: Any, indent: int = 2) -> Path:
    """Write any analysis output as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(_plain(data), indent=indent, sort_keys=True))
    return path


def export_csv(
    path: PathLike,
    rows: Sequence[Mapping[str, Any]],
    fieldnames: Sequence[str] = (),
) -> Path:
    """Write a list of row dicts as CSV; returns the path.

    Field order follows ``fieldnames`` when given, else the first row's keys.
    """
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    names = list(fieldnames) if fieldnames else list(rows[0].keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=names, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _plain(v) for k, v in row.items()})
    return path


def export_cdf(path: PathLike, cdf) -> Path:
    """Write an ``(xs, ps)`` CDF pair as a two-column CSV."""
    xs, ps = cdf
    rows = [{"x": float(x), "p": float(p)} for x, p in zip(xs, ps)]
    return export_csv(path, rows, fieldnames=("x", "p"))


def export_year_summaries(path: PathLike, summaries: Mapping[int, Any]) -> Path:
    """Write Table-1 style year summaries as CSV (one row per year)."""
    rows: List[Dict[str, Any]] = []
    for year in sorted(summaries):
        summary = summaries[year]
        row: Dict[str, Any] = {
            "year": year,
            "packets_per_day": summary.packets_per_day,
            "scans_per_month": summary.scans_per_month,
            "distinct_sources": summary.distinct_sources,
        }
        for rank, entry in enumerate(summary.top_ports_by_packets, 1):
            row[f"top_pkt_port_{rank}"] = entry.port
            row[f"top_pkt_share_{rank}"] = round(entry.share, 6)
        for tool, share in sorted(summary.tool_shares_by_scans.items(),
                                  key=lambda kv: str(kv[0])):
            row[f"tool_{tool.value}_scan_share"] = round(share, 6)
        rows.append(row)
    names = sorted({k for row in rows for k in row}, key=lambda k: (k != "year", k))
    return export_csv(path, rows, fieldnames=names)
