"""Shared enrichment vocabulary: allocation types and scanner types."""

from __future__ import annotations

import enum


class AllocationType(str, enum.Enum):
    """What kind of network a prefix is allocated to.

    Mirrors the origin classes of the paper's Section 6.6: residential
    telecom space, hosting/cloud providers, enterprise autonomous systems,
    the address space of organisations known to scan (institutional), and
    space we cannot attribute.
    """

    RESIDENTIAL = "residential"
    HOSTING = "hosting"
    ENTERPRISE = "enterprise"
    INSTITUTIONAL = "institutional"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


class ScannerType(str, enum.Enum):
    """Scanner origin classes used in Table 2 and Figures 5–7.

    Identical labels to :class:`AllocationType`, but semantically distinct:
    a *scanner type* is the classifier's verdict about a scanning source,
    which combines the known-scanner feed (institutional) with the registry's
    allocation data (everything else).
    """

    HOSTING = "hosting"
    ENTERPRISE = "enterprise"
    INSTITUTIONAL = "institutional"
    RESIDENTIAL = "residential"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


#: Stable ordering used by tables and figures.
SCANNER_TYPE_ORDER = (
    ScannerType.HOSTING,
    ScannerType.ENTERPRISE,
    ScannerType.INSTITUTIONAL,
    ScannerType.RESIDENTIAL,
    ScannerType.UNKNOWN,
)
