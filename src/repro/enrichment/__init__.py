"""Enrichment substrate: synthetic registry, known-scanner feed, ETL.

Replaces the proprietary GreyNoise / IPinfo / Censys-API feeds of the paper
with a deterministic synthetic Internet registry and the Appendix-A ETL
pipeline over pluggable data sources.
"""

from repro.enrichment.types import (
    SCANNER_TYPE_ORDER,
    AllocationType,
    ScannerType,
)
from repro.enrichment.registry import (
    COUNTRIES,
    InternetRegistry,
    PrefixRecord,
    build_default_registry,
)
from repro.enrichment.knownscanners import (
    DEFAULT_INSTITUTIONS,
    InstitutionProfile,
    KnownScannerFeed,
    default_institution_allocations,
    institutions_active_in,
    profile_by_name,
)
from repro.enrichment.classify import ClassifiedSource, ScannerClassifier
from repro.enrichment.etl import (
    FIELD_PRIORITY,
    Attribution,
    DataSource,
    EtlPipeline,
    SourceRecord,
    Warehouse,
    synthesise_sources,
)

__all__ = [
    "SCANNER_TYPE_ORDER",
    "AllocationType",
    "ScannerType",
    "COUNTRIES",
    "InternetRegistry",
    "PrefixRecord",
    "build_default_registry",
    "DEFAULT_INSTITUTIONS",
    "InstitutionProfile",
    "KnownScannerFeed",
    "default_institution_allocations",
    "institutions_active_in",
    "profile_by_name",
    "ClassifiedSource",
    "ScannerClassifier",
    "Attribution",
    "DataSource",
    "EtlPipeline",
    "FIELD_PRIORITY",
    "SourceRecord",
    "Warehouse",
    "synthesise_sources",
]
