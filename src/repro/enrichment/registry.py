"""Synthetic Internet registry.

The paper enriches every source address with its Autonomous System, country
and allocation class (residential / hosting / enterprise), using commercial
databases (GreyNoise, IPinfo) that cannot be redistributed.  This module
builds a deterministic synthetic registry with the same *shape*: a prefix
table mapping IPv4 ranges to (ASN, organisation, country, allocation type),
with vectorised longest-prefix... well, exact-interval lookup.

The registry doubles as the simulator's sampling surface: campaigns draw
their source addresses from prefixes matching the desired country and
allocation type, so the analysis-side enrichment can recover exactly the
ground truth the simulator used.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro.enrichment.types import AllocationType
from repro.telescope.addresses import CidrBlock, int_to_ip

#: Countries modelled by the synthetic registry (ISO 3166-1 alpha-2).
COUNTRIES: Tuple[str, ...] = (
    "CN", "US", "NL", "RU", "DE", "BR", "IN", "ID", "IR", "TW",
    "KR", "JP", "VN", "UA", "GB", "FR", "IT", "TR", "MX", "AR",
    "EG", "TH", "PL", "CA", "AU", "RO", "ZA", "NG", "SG", "ES",
)

#: Per-country relative amount of address space (loosely realistic: the US
#: and China hold far more IPv4 than smaller economies).
_COUNTRY_SPACE_WEIGHT: Dict[str, float] = {
    "US": 6.0, "CN": 5.0, "JP": 2.0, "DE": 1.8, "GB": 1.6, "KR": 1.5,
    "FR": 1.4, "BR": 1.4, "CA": 1.2, "IT": 1.0, "RU": 1.2, "NL": 1.0,
    "IN": 1.2, "AU": 1.0, "TW": 0.9, "MX": 0.8, "ES": 0.8, "PL": 0.7,
    "ID": 0.7, "AR": 0.6, "TR": 0.6, "VN": 0.6, "TH": 0.5, "UA": 0.5,
    "IR": 0.5, "EG": 0.4, "SG": 0.4, "RO": 0.4, "ZA": 0.4, "NG": 0.3,
}

#: Fraction of each country's space per allocation type.
_TYPE_SPACE_SHARE: Dict[AllocationType, float] = {
    AllocationType.RESIDENTIAL: 0.55,
    AllocationType.HOSTING: 0.12,
    AllocationType.ENTERPRISE: 0.18,
    AllocationType.UNKNOWN: 0.15,
    # INSTITUTIONAL space is allocated explicitly per organisation.
}

#: First address handed out by the synthetic allocator (1.0.0.0; stays clear
#: of 0/8, loopback, and the telescope's 100.64/16–100.66/16 blocks).
_ALLOC_BASE = 0x01000000
_TELESCOPE_RESERVED = (0x64400000, 0x64430000)  # 100.64.0.0 – 100.66.255.255


@dataclass(frozen=True)
class PrefixRecord:
    """One allocated prefix."""

    block: CidrBlock
    asn: int
    organisation: str
    country: str
    alloc_type: AllocationType

    def __str__(self) -> str:
        return (
            f"{self.block} AS{self.asn} {self.country} "
            f"{self.alloc_type}: {self.organisation}"
        )


class InternetRegistry:
    """Interval-indexed prefix table with vectorised lookups."""

    def __init__(self, records: Sequence[PrefixRecord]):
        ordered = sorted(records, key=lambda r: r.block.first)
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.block.first <= prev.block.last:
                raise ValueError(
                    f"overlapping prefixes: {prev.block} and {cur.block}"
                )
        self._records: List[PrefixRecord] = ordered
        self._starts = np.array([r.block.first for r in ordered], dtype=np.uint32)
        self._ends = np.array([r.block.last for r in ordered], dtype=np.uint32)
        self._countries = np.array([r.country for r in ordered])
        self._types = np.array([r.alloc_type.value for r in ordered])
        self._asns = np.array([r.asn for r in ordered], dtype=np.int64)
        self._by_org: Dict[str, List[int]] = {}
        for i, rec in enumerate(ordered):
            self._by_org.setdefault(rec.organisation, []).append(i)

    # -- lookup ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Tuple[PrefixRecord, ...]:
        return tuple(self._records)

    def lookup_indices(self, addresses: np.ndarray) -> np.ndarray:
        """Record index per address; -1 where unallocated."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        idx = np.searchsorted(self._starts, addresses, side="right") - 1
        idx = np.clip(idx, 0, len(self._records) - 1)
        hit = (addresses >= self._starts[idx]) & (addresses <= self._ends[idx])
        return np.where(hit, idx, -1)

    def lookup(self, address: int) -> Optional[PrefixRecord]:
        """Record for a single address, or ``None``."""
        idx = int(self.lookup_indices(np.array([address], dtype=np.uint32))[0])
        return self._records[idx] if idx >= 0 else None

    def country_of(self, addresses: np.ndarray, default: str = "??") -> np.ndarray:
        """Country code per address (``default`` where unallocated)."""
        idx = self.lookup_indices(addresses)
        out = np.where(idx >= 0, self._countries[np.clip(idx, 0, None)], default)
        return out

    def type_of(
        self, addresses: np.ndarray, default: str = AllocationType.UNKNOWN.value
    ) -> np.ndarray:
        """Allocation-type value per address."""
        idx = self.lookup_indices(addresses)
        return np.where(idx >= 0, self._types[np.clip(idx, 0, None)], default)

    def asn_of(self, addresses: np.ndarray, default: int = -1) -> np.ndarray:
        """ASN per address (``default`` where unallocated)."""
        idx = self.lookup_indices(addresses)
        return np.where(idx >= 0, self._asns[np.clip(idx, 0, None)], default)

    def organisations(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_org))

    def prefixes_of_org(self, organisation: str) -> Tuple[PrefixRecord, ...]:
        return tuple(self._records[i] for i in self._by_org.get(organisation, ()))

    # -- sampling ---------------------------------------------------------------

    def matching_prefix_indices(
        self,
        country: Optional[str] = None,
        alloc_type: Optional[AllocationType] = None,
        organisation: Optional[str] = None,
    ) -> List[int]:
        """Indices of prefixes matching the filters (empty when none do)."""
        return [
            i for i, rec in enumerate(self._records)
            if (country is None or rec.country == country)
            and (alloc_type is None or rec.alloc_type == alloc_type)
            and (organisation is None or rec.organisation == organisation)
        ]

    def sample_from_prefixes(
        self,
        rng: RandomState,
        indices: Sequence[int],
        count: int,
        weights: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Sample ``count`` addresses from the given prefixes.

        ``weights`` override the default size-proportional prefix weighting —
        the simulator uses this to concentrate activity in a rotating subset
        of prefixes, producing the weekly /16-level volatility of Figure 2.
        """
        generator = as_generator(rng)
        if not indices:
            raise ValueError("indices must not be empty")
        if weights is None:
            w = np.array([self._records[i].block.size for i in indices], dtype=float)
        else:
            w = np.asarray(weights, dtype=float)
            if w.size != len(indices) or np.any(w < 0) or w.sum() <= 0:
                raise ValueError("weights must be non-negative, same length as indices")
        chosen = generator.choice(len(indices), size=count, p=w / w.sum())
        firsts = np.array([self._records[i].block.first for i in indices], dtype=np.uint64)
        sizes = np.array([self._records[i].block.size for i in indices], dtype=np.uint64)
        offsets = (generator.random(count) * sizes[chosen].astype(float)).astype(np.uint64)
        # Block firsts and in-block offsets are both < 2**32 (IPv4), so the
        # uint64 sum cannot wrap and the result fits uint32.
        return (firsts[chosen] + offsets).astype(np.uint32)  # repro-lint: disable=RPR011

    def sample_addresses(
        self,
        rng: RandomState,
        count: int,
        country: Optional[str] = None,
        alloc_type: Optional[AllocationType] = None,
        organisation: Optional[str] = None,
    ) -> np.ndarray:
        """Sample addresses from prefixes matching the filters.

        Prefixes are weighted by size; addresses within a prefix are uniform.
        Raises ``ValueError`` when no prefix matches.
        """
        generator = as_generator(rng)
        candidates = [
            i for i, rec in enumerate(self._records)
            if (country is None or rec.country == country)
            and (alloc_type is None or rec.alloc_type == alloc_type)
            and (organisation is None or rec.organisation == organisation)
        ]
        if not candidates:
            raise ValueError(
                f"no prefix matches country={country!r} type={alloc_type!r} "
                f"org={organisation!r}"
            )
        sizes = np.array([self._records[i].block.size for i in candidates], dtype=float)
        chosen = generator.choice(len(candidates), size=count, p=sizes / sizes.sum())
        blocks = [self._records[candidates[c]].block for c in chosen]
        offsets = generator.random(count)
        return np.array(
            [b.first + int(off * b.size) for b, off in zip(blocks, offsets)],
            dtype=np.uint32,
        )


class _Allocator:
    """Hands out non-overlapping blocks, skipping the telescope's space."""

    def __init__(self, base: int = _ALLOC_BASE):
        self._next = base

    def take(self, prefix_len: int) -> CidrBlock:
        size = 1 << (32 - prefix_len)
        # Align up to the block size.
        start = (self._next + size - 1) & ~(size - 1)
        # Skip the reserved telescope window entirely if we'd touch it.
        lo, hi = _TELESCOPE_RESERVED
        if start < hi and start + size > lo:
            start = (hi + size - 1) & ~(size - 1)
        if start + size > 0xE0000000:  # stay below multicast space
            raise RuntimeError("synthetic registry exhausted unicast space")
        self._next = start + size
        return CidrBlock(start, prefix_len)


def _type_prefix_plan(weight: float) -> List[Tuple[AllocationType, int, int]]:
    """Per-country plan: (type, prefix_len, how_many) scaled by ``weight``."""
    scale = max(1, round(weight))
    return [
        (AllocationType.RESIDENTIAL, 16, 4 * scale),
        (AllocationType.HOSTING, 18, 3 * scale),
        (AllocationType.ENTERPRISE, 17, 2 * scale),
        (AllocationType.UNKNOWN, 17, 2 * scale),
    ]


def build_default_registry(
    institutions: Optional[Sequence[Tuple[str, str, int]]] = None,
) -> InternetRegistry:
    """Build the default synthetic registry.

    ``institutions`` is a sequence of ``(organisation, country, n_slash24)``
    triples given dedicated INSTITUTIONAL prefixes and ASNs; defaults to the
    known-scanner catalogue (see :mod:`repro.enrichment.knownscanners`).

    The construction is fully deterministic: no randomness is involved, so
    every process sees the identical registry.
    """
    if institutions is None:
        # Imported lazily to avoid a cycle (knownscanners uses the registry).
        from repro.enrichment.knownscanners import default_institution_allocations

        institutions = default_institution_allocations()

    allocator = _Allocator()
    records: List[PrefixRecord] = []
    next_asn = 1000

    for country in COUNTRIES:
        weight = _COUNTRY_SPACE_WEIGHT[country]
        for alloc_type, prefix_len, count in _type_prefix_plan(weight):
            for i in range(count):
                block = allocator.take(prefix_len)
                records.append(
                    PrefixRecord(
                        block=block,
                        asn=next_asn,
                        organisation=f"{country}-{alloc_type.value}-net-{i}",
                        country=country,
                        alloc_type=alloc_type,
                    )
                )
                next_asn += 1

    # The paper calls out AS 18403 (FPT, Vietnam) as the enterprise AS
    # dominating JSON-RPC (8545/TCP) scanning — give it a dedicated prefix.
    fpt_block = allocator.take(16)
    records.append(
        PrefixRecord(
            block=fpt_block,
            asn=18403,
            organisation="FPT-AS-AP The Corporation for Financing & Promoting Technology",
            country="VN",
            alloc_type=AllocationType.ENTERPRISE,
        )
    )

    institution_asn = 60000
    for organisation, country, n_slash24 in institutions:
        for _ in range(max(1, n_slash24)):
            block = allocator.take(24)
            records.append(
                PrefixRecord(
                    block=block,
                    asn=institution_asn,
                    organisation=organisation,
                    country=country,
                    alloc_type=AllocationType.INSTITUTIONAL,
                )
            )
        institution_asn += 1

    return InternetRegistry(records)
