"""The Appendix-A ETL pipeline for identifying known scanners.

The paper aggregates several intelligence sources (the Collins et al. scanner
repository, GreyNoise, the Censys API, IPinfo, reverse DNS, OSINT) through a
three-phase data-warehousing process:

* **Extract** — pull records out of each source.
* **Transform** — two matching phases:

  - *Phase 1 (IP-based)*: source IPs seen in the darknet are matched directly
    against IPs the sources attribute to an organisation.
  - *Phase 2 (IP-keyword-based)*: sources without a direct IP→actor link are
    scraped; a keyword list (seeded from Phase-1 actors, enriched with manual
    additions) is searched across prioritised text fields (WHOIS handles,
    network/organisation names, abuse emails, DNS names, banners).

* **Load** — matched attributions land in a warehouse for analytics.

This module implements that pipeline over pluggable :class:`DataSource`
objects, plus a synthetic source generator so the pipeline is exercisable
without the proprietary feeds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro.enrichment.knownscanners import KnownScannerFeed
from repro.enrichment.registry import InternetRegistry
from repro.telescope.addresses import int_to_ip

#: Text fields searched in Phase 2, from most to least important (the order
#: the paper gives for Censys data).
FIELD_PRIORITY: Tuple[str, ...] = (
    "whois_handle",
    "network_name",
    "organisation",
    "abuse_email",
    "location_header",
    "forward_dns",
    "reverse_dns",
    "banner",
)


@dataclass(frozen=True)
class SourceRecord:
    """One record extracted from a data source.

    ``actor`` is non-empty when the source links the IP directly to an
    organisation (enables Phase-1 matching); otherwise only the free-text
    ``fields`` are available (Phase 2).
    """

    ip: int
    actor: str = ""
    fields: Mapping[str, str] = field(default_factory=dict)


class DataSource:
    """A named collection of :class:`SourceRecord`."""

    def __init__(self, name: str, records: Iterable[SourceRecord]):
        if not name:
            raise ValueError("data source needs a name")
        self.name = name
        self._records = list(records)

    def extract(self) -> List[SourceRecord]:
        """The Extract step: all records of this source."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


@dataclass(frozen=True)
class Attribution:
    """One warehouse row: an IP attributed to an actor."""

    ip: int
    actor: str
    source: str
    phase: int  # 1 = IP-based, 2 = keyword-based
    matched_field: str = ""


class Warehouse:
    """The Load target: attributions indexed by IP."""

    def __init__(self) -> None:
        self._by_ip: Dict[int, Attribution] = {}

    def load(self, attribution: Attribution) -> None:
        """Insert an attribution; Phase-1 evidence wins over Phase-2."""
        existing = self._by_ip.get(attribution.ip)
        if existing is None or attribution.phase < existing.phase:
            self._by_ip[attribution.ip] = attribution

    def actor_of(self, ip: int) -> Optional[str]:
        att = self._by_ip.get(ip)
        return att.actor if att else None

    def attributions(self) -> Tuple[Attribution, ...]:
        return tuple(self._by_ip[ip] for ip in sorted(self._by_ip))

    def actors(self) -> Tuple[str, ...]:
        return tuple(sorted({a.actor for a in self._by_ip.values()}))

    def __len__(self) -> int:
        return len(self._by_ip)


def _keywordise(actor: str) -> List[str]:
    """Derive search keywords from an actor name.

    ``'Palo Alto Networks' -> ['palo alto networks', 'palo-alto-networks',
    'paloaltonetworks', 'palo']`` — enough to catch DNS-label and WHOIS-handle
    spellings.
    """
    base = actor.lower().strip()
    if not base:
        return []
    words = re.split(r"[^a-z0-9]+", base)
    words = [w for w in words if w]
    keywords = {base, "-".join(words), "".join(words)}
    # Single leading word only when it is distinctive enough.
    if words and len(words[0]) >= 5:
        keywords.add(words[0])
    return sorted(k for k in keywords if len(k) >= 4)


class EtlPipeline:
    """The three-phase ETL of Appendix A."""

    def __init__(
        self,
        sources: Sequence[DataSource],
        manual_keywords: Optional[Mapping[str, str]] = None,
    ):
        """``manual_keywords`` maps extra keyword -> actor (the paper's
        "enriched with manual additions")."""
        if not sources:
            raise ValueError("ETL needs at least one data source")
        self._sources = list(sources)
        self._manual_keywords = dict(manual_keywords or {})

    def run(self, darknet_ips: Iterable[int]) -> Warehouse:
        """Execute extract → transform (Phase 1, Phase 2) → load.

        ``darknet_ips`` are the source addresses observed at the telescope;
        only those can be matched (the pipeline attributes observed traffic,
        it does not enumerate the sources' whole catalogues).
        """
        observed: Set[int] = {int(ip) for ip in darknet_ips}
        warehouse = Warehouse()

        # ---- Phase 1: IP-based matching --------------------------------
        keyword_to_actor: Dict[str, str] = dict(self._manual_keywords)
        for source in self._sources:
            for record in source.extract():
                if record.actor and record.ip in observed:
                    warehouse.load(
                        Attribution(record.ip, record.actor, source.name, phase=1)
                    )
                if record.actor:
                    # Actors seen during Phase 1 seed the keyword list even
                    # when their IP was not observed here.
                    for keyword in _keywordise(record.actor):
                        keyword_to_actor.setdefault(keyword, record.actor)

        # ---- Phase 2: IP-keyword-based matching -------------------------
        for source in self._sources:
            for record in source.extract():
                if record.ip not in observed or warehouse.actor_of(record.ip):
                    continue
                match = self._match_keywords(record, keyword_to_actor)
                if match is not None:
                    actor, matched_field = match
                    warehouse.load(
                        Attribution(
                            record.ip, actor, source.name,
                            phase=2, matched_field=matched_field,
                        )
                    )
        return warehouse

    @staticmethod
    def _match_keywords(
        record: SourceRecord, keywords: Mapping[str, str]
    ) -> Optional[Tuple[str, str]]:
        """Search fields in priority order; first keyword hit wins."""
        for field_name in FIELD_PRIORITY:
            text = record.fields.get(field_name, "").lower()
            if not text:
                continue
            for keyword, actor in keywords.items():
                if keyword in text:
                    return actor, field_name
        return None


# -- synthetic data sources ----------------------------------------------------


def synthesise_sources(
    registry: InternetRegistry,
    feed: KnownScannerFeed,
    scanner_ips: Sequence[int],
    rng: RandomState = None,
    direct_fraction: float = 0.5,
) -> List[DataSource]:
    """Build plausible Censys-API / IPinfo / reverse-DNS sources.

    For each known-scanner IP in ``scanner_ips``, a fraction
    (``direct_fraction``) lands in a GreyNoise-like source with a direct
    IP→actor link (Phase 1); the rest only leaves keyword traces in WHOIS
    names, abuse emails or reverse DNS (Phase 2).  Non-scanner IPs receive
    generic records so the pipeline has realistic negatives.
    """
    generator = as_generator(rng)
    ips = np.asarray(scanner_ips, dtype=np.uint32)
    orgs = feed.organisation_of(ips)

    greynoise: List[SourceRecord] = []
    censys: List[SourceRecord] = []
    rdns: List[SourceRecord] = []

    for ip, org in zip(ips.tolist(), orgs.tolist()):
        if org:
            slug = "".join(w for w in re.split(r"[^a-z0-9]+", org.lower()) if w)
            if generator.random() < direct_fraction:
                greynoise.append(SourceRecord(ip=ip, actor=org))
            else:
                # Leave only indirect traces for Phase 2 to find.
                trace_kind = generator.integers(0, 3)
                if trace_kind == 0:
                    censys.append(SourceRecord(ip=ip, fields={
                        "whois_handle": f"{slug.upper()}-NET",
                        "network_name": f"{slug}-scan",
                    }))
                elif trace_kind == 1:
                    censys.append(SourceRecord(ip=ip, fields={
                        "abuse_email": f"abuse@{slug}.example",
                    }))
                else:
                    rdns.append(SourceRecord(ip=ip, fields={
                        "reverse_dns": f"scanner-{ip & 0xFF}.{slug}.example",
                    }))
        else:
            # A generic record for an unknown source: no actor, no keywords.
            record = registry.lookup(ip)
            rdns.append(SourceRecord(ip=ip, fields={
                "reverse_dns": f"host-{ip & 0xFFFF}.isp.example",
                "organisation": record.organisation if record else "",
            }))

    # Ensure Phase 1 can seed keywords even if no direct record was drawn for
    # an org: GreyNoise "knows" every org in the feed via an out-of-darknet
    # sample record (ip 0 is never observed).
    for org in feed.organisations():
        greynoise.append(SourceRecord(ip=0, actor=org))

    return [
        DataSource("greynoise", greynoise),
        DataSource("censys-api", censys),
        DataSource("reverse-dns", rdns),
    ]
