"""Scanner-origin classification (paper §6.6, Table 2).

A scanning source is *institutional* when it appears in the known-scanner
feed (an organisation that publicly acknowledges Internet-wide scanning);
otherwise its class follows the registry's allocation type of the covering
prefix — hosting, enterprise or residential — and falls back to *unknown*
when the prefix is unallocated or itself unclassified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.enrichment.knownscanners import KnownScannerFeed
from repro.enrichment.registry import InternetRegistry
from repro.enrichment.types import AllocationType, ScannerType


@dataclass(frozen=True)
class ClassifiedSource:
    """Classification verdict for one source IP."""

    address: int
    scanner_type: ScannerType
    organisation: str = ""
    country: str = "??"
    asn: int = -1


class ScannerClassifier:
    """Combines the known-scanner feed and the registry into verdicts."""

    _TYPE_FOR_ALLOC: Dict[str, ScannerType] = {
        AllocationType.HOSTING.value: ScannerType.HOSTING,
        AllocationType.ENTERPRISE.value: ScannerType.ENTERPRISE,
        AllocationType.RESIDENTIAL.value: ScannerType.RESIDENTIAL,
        AllocationType.INSTITUTIONAL.value: ScannerType.INSTITUTIONAL,
        AllocationType.UNKNOWN.value: ScannerType.UNKNOWN,
    }

    def __init__(self, registry: InternetRegistry, feed: Optional[KnownScannerFeed] = None):
        self._registry = registry
        self._feed = feed if feed is not None else KnownScannerFeed(registry)

    @property
    def registry(self) -> InternetRegistry:
        return self._registry

    @property
    def feed(self) -> KnownScannerFeed:
        return self._feed

    def classify_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised classification; returns an object array of
        :class:`ScannerType` values aligned with ``addresses``."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        alloc = self._registry.type_of(addresses)
        out = np.array(
            [self._TYPE_FOR_ALLOC.get(a, ScannerType.UNKNOWN) for a in alloc],
            dtype=object,
        )
        # The feed overrides: acknowledged scanners are institutional even if
        # their space would classify as something else.
        known = self._feed.is_known(addresses)
        out[known] = ScannerType.INSTITUTIONAL
        return out

    def classify(self, address: int) -> ClassifiedSource:
        """Full verdict for a single address (type, org, country, ASN)."""
        arr = np.array([address], dtype=np.uint32)
        stype = self.classify_array(arr)[0]
        org = str(self._feed.organisation_of(arr)[0])
        country = str(self._registry.country_of(arr)[0])
        asn = int(self._registry.asn_of(arr)[0])
        return ClassifiedSource(
            address=int(address),
            scanner_type=stype,
            organisation=org,
            country=country,
            asn=asn,
        )
