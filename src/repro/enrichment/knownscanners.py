"""Known-scanner catalogue and feed (the GreyNoise substitute).

The paper classifies sources as *institutional* using a commercial feed
(GreyNoise) of organisations that publicly acknowledge Internet-wide scanning
— search engines like Censys and Shodan, security companies like Rapid7 and
Palo Alto Networks, non-profits like Shadowserver, and universities.

This module carries:

* :class:`InstitutionProfile` — per-organisation behaviour over the years
  (how much of the port range they cover, how many source IPs they use, how
  fast they scan, since when they are active).  The profiles drive both the
  simulator (institutional campaigns) and the expected values of Figures 8–10.
* :class:`KnownScannerFeed` — an IP→organisation feed derived from the
  registry's INSTITUTIONAL prefixes, playing the role GreyNoise plays in the
  paper's classification step (§6.6).

Coverage numbers are interpolated from the paper's qualitative statements:
Censys and Palo Alto cover all 65,536 ports by 2024, Onyphe scaled from under
half to the full range between 2023 and 2024, Shadowserver and Rapid7 are not
yet at full coverage, universities target only a handful of ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.enrichment.types import ScannerType


@dataclass(frozen=True)
class InstitutionProfile:
    """Behavioural profile of one acknowledged scanning organisation.

    Attributes:
        name: organisation name as reported in the paper's appendix.
        country: headquarters country (drives geography analyses).
        n_slash24: number of dedicated /24 prefixes in the registry.
        first_year: first year the organisation scans.
        port_coverage: year -> fraction of the 65,536 TCP ports covered.
            Missing years are interpolated between the nearest given years
            (clamped at the ends).
        daily_campaigns: scans launched per day (institutional scanners
            re-scan daily — the recurrence mode of Figure 6).
        speed_pps: median Internet-wide probe rate per campaign.
        ipv4_coverage: fraction of IPv4 each campaign sweeps.
        active_ips: how many distinct source IPs take part per year.
    """

    name: str
    country: str
    n_slash24: int
    first_year: int
    port_coverage: Dict[int, float]
    daily_campaigns: float = 1.0
    speed_pps: float = 50_000.0
    ipv4_coverage: float = 1.0
    active_ips: int = 32

    def coverage_in(self, year: int) -> float:
        """Port-range coverage in ``year`` (0 before ``first_year``)."""
        if year < self.first_year:
            return 0.0
        known = sorted(self.port_coverage)
        if not known:
            return 0.0
        if year <= known[0]:
            return self.port_coverage[known[0]]
        if year >= known[-1]:
            return self.port_coverage[known[-1]]
        for lo, hi in zip(known, known[1:]):
            if lo <= year <= hi:
                f = (year - lo) / (hi - lo)
                return (1 - f) * self.port_coverage[lo] + f * self.port_coverage[hi]
        raise AssertionError("unreachable")

    def ports_in(self, year: int) -> int:
        """Number of distinct ports covered in ``year``."""
        return int(round(self.coverage_in(year) * 65536))


#: The catalogue: names and countries follow the paper's Appendix A; coverage
#: trajectories are interpolated from Figures 8–10 and the body text.
DEFAULT_INSTITUTIONS: Tuple[InstitutionProfile, ...] = (
    InstitutionProfile("Censys", "US", 8, 2016,
                       {2016: 0.02, 2020: 0.10, 2022: 0.35, 2023: 0.75, 2024: 1.0},
                       daily_campaigns=6.0, speed_pps=200_000, active_ips=96),
    InstitutionProfile("Palo Alto Networks", "US", 6, 2020,
                       {2020: 0.05, 2023: 0.85, 2024: 1.0},
                       daily_campaigns=4.0, speed_pps=150_000, active_ips=64),
    InstitutionProfile("Shodan", "US", 4, 2015,
                       {2015: 0.005, 2020: 0.05, 2023: 0.20, 2024: 0.25},
                       daily_campaigns=3.0, speed_pps=40_000, active_ips=48),
    InstitutionProfile("Shadowserver Foundation", "US", 6, 2015,
                       {2015: 0.003, 2020: 0.10, 2023: 0.45, 2024: 0.55},
                       daily_campaigns=5.0, speed_pps=60_000, active_ips=64),
    InstitutionProfile("Rapid7", "US", 4, 2015,
                       {2015: 0.002, 2020: 0.08, 2023: 0.35, 2024: 0.40},
                       daily_campaigns=2.0, speed_pps=80_000, active_ips=32),
    InstitutionProfile("Onyphe", "FR", 3, 2018,
                       {2018: 0.02, 2022: 0.25, 2023: 0.45, 2024: 1.0},
                       daily_campaigns=3.0, speed_pps=90_000, active_ips=32),
    InstitutionProfile("Stretchoid", "US", 4, 2016,
                       {2016: 0.002, 2020: 0.05, 2023: 0.12, 2024: 0.15},
                       daily_campaigns=4.0, speed_pps=30_000, active_ips=64),
    InstitutionProfile("Internet Census Group", "DE", 3, 2018,
                       {2018: 0.05, 2022: 0.40, 2023: 0.60, 2024: 0.70},
                       daily_campaigns=2.0, speed_pps=70_000, active_ips=24),
    InstitutionProfile("LeakIX", "NL", 2, 2019,
                       {2019: 0.01, 2023: 0.08, 2024: 0.10},
                       daily_campaigns=1.5, speed_pps=25_000, active_ips=12),
    InstitutionProfile("Intrinsec", "FR", 1, 2020,
                       {2020: 0.01, 2023: 0.05, 2024: 0.08},
                       daily_campaigns=1.0, speed_pps=20_000, active_ips=8),
    InstitutionProfile("bufferover.run", "US", 1, 2019,
                       {2019: 0.002, 2023: 0.01, 2024: 0.01},
                       daily_campaigns=1.0, speed_pps=15_000, active_ips=4),
    InstitutionProfile("Adscore", "PL", 1, 2020,
                       {2020: 0.001, 2023: 0.005, 2024: 0.006},
                       daily_campaigns=1.0, speed_pps=10_000, active_ips=4),
    InstitutionProfile("CyberResilience.io", "GB", 1, 2021,
                       {2021: 0.01, 2023: 0.10, 2024: 0.15},
                       daily_campaigns=1.0, speed_pps=25_000, active_ips=8),
    InstitutionProfile("Driftnet.io", "GB", 2, 2021,
                       {2021: 0.05, 2023: 0.50, 2024: 0.65},
                       daily_campaigns=2.0, speed_pps=60_000, active_ips=16),
    InstitutionProfile("SecurityTrails", "US", 2, 2018,
                       {2018: 0.01, 2023: 0.12, 2024: 0.15},
                       daily_campaigns=1.5, speed_pps=30_000, active_ips=16),
    InstitutionProfile("Alpha Strike Labs", "DE", 2, 2020,
                       {2020: 0.02, 2023: 0.30, 2024: 0.40},
                       daily_campaigns=2.0, speed_pps=50_000, active_ips=24),
    InstitutionProfile("Bit Discovery", "US", 1, 2019,
                       {2019: 0.005, 2023: 0.05, 2024: 0.08},
                       daily_campaigns=1.0, speed_pps=20_000, active_ips=8),
    InstitutionProfile("Criminal IP", "KR", 2, 2021,
                       {2021: 0.05, 2023: 0.50, 2024: 0.60},
                       daily_campaigns=2.0, speed_pps=45_000, active_ips=16),
    InstitutionProfile("Leitwert.net", "DE", 1, 2021,
                       {2021: 0.01, 2023: 0.06, 2024: 0.10},
                       daily_campaigns=1.0, speed_pps=15_000, active_ips=4),
    InstitutionProfile("Hadrian.io", "NL", 1, 2021,
                       {2021: 0.01, 2023: 0.08, 2024: 0.12},
                       daily_campaigns=1.0, speed_pps=20_000, active_ips=8),
    InstitutionProfile("DataGrid Surface", "US", 1, 2021,
                       {2021: 0.01, 2023: 0.06, 2024: 0.09},
                       daily_campaigns=1.0, speed_pps=15_000, active_ips=4),
    # Universities: a handful of ports, no growth over the years (paper §6.8).
    InstitutionProfile("University of Michigan", "US", 2, 2015,
                       {2015: 0.0003, 2024: 0.0005},
                       daily_campaigns=1.0, speed_pps=100_000, active_ips=16),
    InstitutionProfile("UCSD", "US", 1, 2015,
                       {2015: 0.0002, 2024: 0.0002},
                       daily_campaigns=0.5, speed_pps=50_000, active_ips=8),
    InstitutionProfile("TU Munich", "DE", 1, 2017,
                       {2017: 0.0002, 2024: 0.0003},
                       daily_campaigns=0.5, speed_pps=40_000, active_ips=8),
    InstitutionProfile("RWTH Aachen", "DE", 1, 2018,
                       {2018: 0.0001, 2024: 0.0002},
                       daily_campaigns=0.3, speed_pps=30_000, active_ips=4),
    InstitutionProfile("Stanford University", "US", 1, 2019,
                       {2019: 0.0001, 2024: 0.0002},
                       daily_campaigns=0.3, speed_pps=60_000, active_ips=4),
)


def default_institution_allocations() -> List[Tuple[str, str, int]]:
    """``(organisation, country, n_slash24)`` triples for the registry."""
    return [(p.name, p.country, p.n_slash24) for p in DEFAULT_INSTITUTIONS]


def institutions_active_in(year: int) -> Tuple[InstitutionProfile, ...]:
    """Profiles of organisations scanning in ``year``."""
    return tuple(p for p in DEFAULT_INSTITUTIONS if p.first_year <= year)


def profile_by_name(name: str) -> InstitutionProfile:
    """Look up a profile by exact organisation name."""
    for profile in DEFAULT_INSTITUTIONS:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown institution: {name!r}")


class KnownScannerFeed:
    """IP→organisation feed over the registry's INSTITUTIONAL prefixes.

    Plays the role of the GreyNoise benign-actor list: membership means the
    organisation publicly acknowledges scanning, and classification marks
    such sources *institutional* regardless of their AS type.
    """

    def __init__(self, registry) -> None:  # registry: InternetRegistry
        from repro.enrichment.registry import InternetRegistry
        from repro.enrichment.types import AllocationType

        if not isinstance(registry, InternetRegistry):
            raise TypeError("registry must be an InternetRegistry")
        self._registry = registry
        starts: List[int] = []
        ends: List[int] = []
        orgs: List[str] = []
        for record in registry.records:
            if record.alloc_type == AllocationType.INSTITUTIONAL:
                starts.append(record.block.first)
                ends.append(record.block.last)
                orgs.append(record.organisation)
        order = np.argsort(starts) if starts else np.array([], dtype=int)
        self._starts = np.array(starts, dtype=np.uint32)[order] if starts else np.array([], dtype=np.uint32)
        self._ends = np.array(ends, dtype=np.uint32)[order] if ends else np.array([], dtype=np.uint32)
        self._orgs = np.array(orgs, dtype=object)[order] if orgs else np.array([], dtype=object)

    def is_known(self, addresses: np.ndarray) -> np.ndarray:
        """Boolean array: is each address a known (institutional) scanner?"""
        addresses = np.asarray(addresses, dtype=np.uint32)
        if self._starts.size == 0:
            return np.zeros(addresses.shape, dtype=bool)
        idx = np.searchsorted(self._starts, addresses, side="right") - 1
        idx = np.clip(idx, 0, self._starts.size - 1)
        return (addresses >= self._starts[idx]) & (addresses <= self._ends[idx])

    def organisation_of(self, addresses: np.ndarray) -> np.ndarray:
        """Organisation name per address ('' where not a known scanner)."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        out = np.full(addresses.shape, "", dtype=object)
        if self._starts.size == 0:
            return out
        idx = np.searchsorted(self._starts, addresses, side="right") - 1
        idx = np.clip(idx, 0, self._starts.size - 1)
        hit = (addresses >= self._starts[idx]) & (addresses <= self._ends[idx])
        out[hit] = self._orgs[idx[hit]]
        return out

    def organisations(self) -> Tuple[str, ...]:
        """All organisations in the feed (sorted)."""
        return tuple(sorted(set(self._orgs.tolist())))
