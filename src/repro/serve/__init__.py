"""repro.serve — long-running analysis service over the one-shot pipeline.

Three pieces, layered:

* :mod:`repro.serve.jobs` / :mod:`repro.serve.queue` — a broker-free,
  deduplicating :class:`JobQueue` whose job identity reuses the
  CaptureCache content keys (identical submissions coalesce into one
  computation) with persisted records and checkpoint re-attach on restart;
* :mod:`repro.serve.scenario` — per-tenant named configs whose derived
  analyses cache under a config hash;
* :mod:`repro.serve.api` — a stdlib HTTP front-end with a live SSE stats
  stream, exposed as ``repro-scan serve``.
"""

from repro.serve.api import ServeApp, ServeServer, create_server
from repro.serve.jobs import JOB_KINDS, JobSpec, execute_job, run_stream_report
from repro.serve.queue import (
    SERVE_SCHEMA_VERSION,
    JobQueue,
    JobRecord,
    JobState,
)
from repro.serve.scenario import Scenario, ScenarioStore, config_hash

__all__ = [
    "JOB_KINDS",
    "SERVE_SCHEMA_VERSION",
    "JobSpec",
    "JobQueue",
    "JobRecord",
    "JobState",
    "Scenario",
    "ScenarioStore",
    "ServeApp",
    "ServeServer",
    "config_hash",
    "create_server",
    "execute_job",
    "run_stream_report",
]
