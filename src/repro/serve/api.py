"""HTTP front-end: jobs, scenarios, and a live stats surface.

Stdlib-only (``http.server.ThreadingHTTPServer``): the architecture is the
point, not the web framework.  Endpoints::

    GET    /healthz
    GET    /stats                          queue depth + counters + caches
    GET    /stats/live                     SSE stream of the same document
    POST   /jobs                           submit {kind, year, days, ...}
    GET    /jobs                           list job records (no results)
    GET    /jobs/<id>[?wait=SECONDS]       one record, result included
    DELETE /jobs/<id>                      cancel (queued jobs only)
    GET    /scenarios                      tenants
    GET    /scenarios/<tenant>             tenant's scenarios
    PUT    /scenarios/<tenant>/<name>      create/update config
    GET    /scenarios/<tenant>/<name>      scenario document
    DELETE /scenarios/<tenant>/<name>
    GET    /scenarios/<tenant>/<name>/report[?format=json|text][&wait=S]

The report endpoint is the multi-tenant face of the job queue: it submits
a ``stream-report`` job for the scenario's config (deduplicated by content
key with everyone else's identical requests), answers ``202`` with the job
id while the job runs, and once done caches the derivations on the
scenario and serves them — ``format=text`` byte-identical to
``repro-scan analyze/stream --report``, ``format=json`` byte-identical to
the same commands with ``--json``.

``/stats/live`` is server-sent events: one ``stats`` event every
``interval`` seconds (``?interval=`` to override, ``?count=N`` to close
after N events — handy for curl and CI).  Handler threads are daemonic and
watch the app's ``closing`` event, so shutdown never hangs on a connected
dashboard.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.reporting import render_report_doc
from repro.serve.jobs import JobSpec
from repro.serve.queue import JobQueue
from repro.serve.scenario import ScenarioStore
from repro.stream.stats import peak_rss_bytes, wall_clock

PathLike = Union[str, Path]

#: (status code, JSON-able body) — the handler serialises.
Reply = Tuple[int, Dict[str, Any]]

#: Snapshot statuses with no further transitions (``running`` is derived,
#: so it is non-terminal like ``queued``).
_TERMINAL = ("done", "failed", "cancelled")


class ServeApp:
    """The service's state and request logic, HTTP-free and test-friendly."""

    def __init__(
        self,
        queue: JobQueue,
        scenarios: ScenarioStore,
        stats_interval: float = 1.0,
    ) -> None:
        self.queue = queue
        self.scenarios = scenarios
        self.stats_interval = max(0.05, float(stats_interval))
        self.closing = threading.Event()
        self._started = wall_clock()

    # -- stats --------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        doc = self.queue.stats()
        doc["scenarios"] = {
            "tenants": len(self.scenarios.tenants()),
            "total": self.scenarios.count(),
        }
        doc["uptime_s"] = wall_clock() - self._started
        doc["peak_rss_bytes"] = peak_rss_bytes()
        doc["version"] = __version__
        return doc

    # -- jobs ---------------------------------------------------------------

    def submit_job(self, body: Dict[str, Any]) -> Reply:
        try:
            spec = JobSpec.from_dict(body)
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        rec = self.queue.submit(spec)
        doc = self.queue.snapshot(rec.job_id) or rec.to_dict()
        return (200 if doc["status"] in _TERMINAL else 202), {"job": doc}

    def list_jobs(self) -> Reply:
        return 200, {"jobs": self.queue.snapshots(with_result=False)}

    def job(self, job_id: str, wait: float = 0.0) -> Reply:
        doc = self.queue.snapshot(job_id)
        if doc is None:
            return 404, {"error": f"no such job: {job_id}"}
        if wait > 0 and doc["status"] not in _TERMINAL:
            self.queue.wait(job_id, timeout=wait)
            doc = self.queue.snapshot(job_id) or doc
        return (200 if doc["status"] in _TERMINAL else 202), {"job": doc}

    def cancel_job(self, job_id: str) -> Reply:
        doc = self.queue.snapshot(job_id)
        if doc is None:
            return 404, {"error": f"no such job: {job_id}"}
        if self.queue.cancel(job_id):
            return 200, {"job": self.queue.snapshot(job_id) or doc}
        doc = self.queue.snapshot(job_id) or doc
        return 409, {
            "error": f"job is {doc['status']}; only queued jobs can be cancelled"
        }

    # -- scenarios ----------------------------------------------------------

    def put_scenario(self, tenant: str, name: str, body: Dict[str, Any]) -> Reply:
        try:
            spec = JobSpec.from_dict(dict(body, kind="stream-report"))
            scenario = self.scenarios.put(tenant, name, spec)
        except (TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        return 200, {"scenario": scenario.to_dict(with_derived=False)}

    def get_scenario(self, tenant: str, name: str) -> Reply:
        scenario = self.scenarios.get(tenant, name)
        if scenario is None:
            return 404, {"error": f"no such scenario: {tenant}/{name}"}
        return 200, {"scenario": scenario.to_dict(with_derived=False)}

    def delete_scenario(self, tenant: str, name: str) -> Reply:
        if self.scenarios.delete(tenant, name):
            return 200, {"deleted": f"{tenant}/{name}"}
        return 404, {"error": f"no such scenario: {tenant}/{name}"}

    def list_scenarios(self, tenant: str) -> Reply:
        return 200, {
            "tenant": tenant,
            "scenarios": [
                s.to_dict(with_derived=False) for s in self.scenarios.list(tenant)
            ],
        }

    def list_tenants(self) -> Reply:
        return 200, {"tenants": self.scenarios.tenants()}

    def scenario_report(
        self, tenant: str, name: str, wait: float = 0.0
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, Any]]]:
        """Resolve a scenario's derived analyses, computing on first demand.

        Returns ``(status, body, payload)``; ``payload`` is the cached
        derivation dict when status is 200 (the handler picks the report
        representation out of it), else ``None``.
        """
        scenario = self.scenarios.get(tenant, name)
        if scenario is None:
            return 404, {"error": f"no such scenario: {tenant}/{name}"}, None
        payload = scenario.cached_payload()
        if payload is not None:
            return 200, {}, payload
        spec = dataclasses.replace(scenario.spec, kind="stream-report")
        rec = self.queue.submit(spec)
        doc = self.queue.snapshot(rec.job_id) or rec.to_dict()
        if wait > 0 and doc["status"] not in _TERMINAL:
            self.queue.wait(rec.job_id, timeout=wait)
            doc = self.queue.snapshot(rec.job_id) or doc
        result = doc.get("result")
        if doc["status"] == "done" and result is not None:
            payload = {
                key: result[key]
                for key in ("report", "report_text", "fingerprints", "figures")
                if key in result
            }
            payload["job_id"] = doc["job_id"]
            payload["capture"] = result.get("capture")
            self.scenarios.cache_derived(scenario, payload)
            return 200, {}, payload
        if doc["status"] == "failed":
            job_doc = {k: v for k, v in doc.items() if k != "result"}
            return 500, {"error": doc["error"] or "job failed",
                         "job": job_doc}, None
        return 202, {"status": doc["status"], "job_id": doc["job_id"]}, None

    def close(self) -> None:
        self.closing.set()
        self.queue.close(wait=False)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the :class:`ServeApp` carried by the server."""

    server_version = f"repro-serve/{__version__}"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    # quiet by default: one line per request would swamp SSE-heavy logs
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -----------------------------------------------------------

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        blob = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _send_text(
        self, status: int, text: str, content_type: str = "text/plain"
    ) -> None:
        blob = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError:
            return None
        return body if isinstance(body, dict) else None

    def _route(self) -> Tuple[list, Dict[str, str]]:
        parts = urlsplit(self.path)
        segments = [seg for seg in parts.path.split("/") if seg]
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return segments, query

    @staticmethod
    def _wait_of(query: Dict[str, str]) -> float:
        try:
            return max(0.0, min(float(query.get("wait", "0")), 600.0))
        except ValueError:
            return 0.0

    # -- methods ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        seg, query = self._route()
        if seg == ["healthz"]:
            self._send_json(200, {"status": "ok", "version": __version__})
        elif seg == ["stats"]:
            self._send_json(200, self.app.stats())
        elif seg == ["stats", "live"]:
            self._send_stats_stream(query)
        elif seg == ["jobs"]:
            self._send_json(*self.app.list_jobs())
        elif len(seg) == 2 and seg[0] == "jobs":
            self._send_json(*self.app.job(seg[1], wait=self._wait_of(query)))
        elif seg == ["scenarios"]:
            self._send_json(*self.app.list_tenants())
        elif len(seg) == 2 and seg[0] == "scenarios":
            self._send_json(*self.app.list_scenarios(seg[1]))
        elif len(seg) == 3 and seg[0] == "scenarios":
            self._send_json(*self.app.get_scenario(seg[1], seg[2]))
        elif len(seg) == 4 and seg[0] == "scenarios" and seg[3] == "report":
            self._send_scenario_report(seg[1], seg[2], query)
        else:
            self._send_json(404, {"error": f"no such resource: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        seg, _query = self._route()
        body = self._read_body()
        if body is None:
            self._send_json(400, {"error": "body must be a JSON object"})
        elif seg == ["jobs"]:
            self._send_json(*self.app.submit_job(body))
        else:
            self._send_json(404, {"error": f"no such resource: {self.path}"})

    def do_PUT(self) -> None:  # noqa: N802
        seg, _query = self._route()
        body = self._read_body()
        if body is None:
            self._send_json(400, {"error": "body must be a JSON object"})
        elif len(seg) == 3 and seg[0] == "scenarios":
            self._send_json(*self.app.put_scenario(seg[1], seg[2], body))
        else:
            self._send_json(404, {"error": f"no such resource: {self.path}"})

    def do_DELETE(self) -> None:  # noqa: N802
        seg, _query = self._route()
        if len(seg) == 2 and seg[0] == "jobs":
            self._send_json(*self.app.cancel_job(seg[1]))
        elif len(seg) == 3 and seg[0] == "scenarios":
            self._send_json(*self.app.delete_scenario(seg[1], seg[2]))
        else:
            self._send_json(404, {"error": f"no such resource: {self.path}"})

    # -- composite responses ------------------------------------------------

    def _send_scenario_report(
        self, tenant: str, name: str, query: Dict[str, str]
    ) -> None:
        fmt = query.get("format", "json")
        if fmt not in ("json", "text"):
            self._send_json(400, {"error": f"unknown format {fmt!r}"})
            return
        status, body, payload = self.app.scenario_report(
            tenant, name, wait=self._wait_of(query)
        )
        if status != 200 or payload is None:
            self._send_json(status, body)
        elif fmt == "text":
            # Trailing newline so `curl > file` diffs clean against the
            # CLI's print()ed report.
            self._send_text(200, payload["report_text"] + "\n")
        else:
            self._send_text(
                200, render_report_doc(payload["report"]) + "\n",
                content_type="application/json",
            )

    def _send_stats_stream(self, query: Dict[str, str]) -> None:
        try:
            interval = max(0.05, float(query.get("interval",
                                                 self.app.stats_interval)))
        except ValueError:
            interval = self.app.stats_interval
        count: Optional[int] = None
        if "count" in query:
            try:
                count = max(1, int(query["count"]))
            except ValueError:
                count = None
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        sent = 0
        while not self.app.closing.is_set():
            blob = json.dumps(self.app.stats(), sort_keys=True)
            try:
                self.wfile.write(
                    b"event: stats\ndata: " + blob.encode("utf-8") + b"\n\n"
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                break  # dashboard went away
            sent += 1
            if count is not None and sent >= count:
                break
            if self.app.closing.wait(interval):
                break


class ServeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the app; daemon threads so a connected
    SSE client never blocks process exit."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServeApp,
                 verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose


def create_server(
    host: str = "127.0.0.1",
    port: int = 8752,
    cache_dir: Optional[PathLike] = None,
    state_dir: Optional[PathLike] = None,
    workers: int = 2,
    max_retries: int = 1,
    stats_interval: float = 1.0,
    verbose: bool = False,
    task: Optional[Any] = None,
) -> ServeServer:
    """Wire queue + scenarios + app into a ready-to-serve HTTP server.

    ``state_dir`` defaults to ``.repro-serve``; ``cache_dir`` defaults to
    ``<state_dir>/captures`` (pass the cache you already warm from the CLI
    to share captures between the service and one-shot runs).
    """
    state = Path(state_dir) if state_dir is not None else Path(".repro-serve")
    cache = Path(cache_dir) if cache_dir is not None else state / "captures"
    queue = JobQueue(
        cache_dir=cache,
        state_dir=state,
        workers=workers,
        max_retries=max_retries,
        task=task,
    )
    scenarios = ScenarioStore(state)
    app = ServeApp(queue, scenarios, stats_interval=stats_interval)
    return ServeServer((host, port), app, verbose=verbose)
