"""Broker-free job queue over the exec/stream layers.

:class:`JobQueue` turns the one-shot pipeline into a long-running service
backend without any external broker: jobs run on a
:class:`~concurrent.futures.ProcessPoolExecutor`, and the queue's *identity*
for a job reuses the content-addressed key material of the
:class:`~repro.exec.cache.CaptureCache` — a job key digests the capture
content key plus the request kind.  The consequences fall out for free:

* **Coalescing** — a thousand identical submissions map to one key, so they
  share one :class:`JobRecord` and at most one running computation; every
  later submission is a dedup hit served from the record.
* **Result caching** — a completed record *is* the cached result; the
  capture itself additionally lands in the ``CaptureCache``, so even a
  record-less resubmission (new state directory) re-runs against warm
  captures and checkpoints.
* **Restart re-attach** — records persist as JSON under the state
  directory.  A restarted queue reloads them, requeues anything that was
  queued or running, and the streaming workers resume from their
  content-addressed checkpoints instead of recomputing
  (:mod:`repro.stream.checkpoint`).

Worker death (OOM kill, segfault) surfaces as
:class:`~concurrent.futures.BrokenExecutor` on every in-flight future; the
queue retires the broken pool, spins up a fresh one, and retries each
affected job up to ``max_retries`` times before marking it failed.

Thread safety: every public method may be called from any number of HTTP
handler threads; all queue state is guarded by one lock, and job state
transitions happen either under it or in future callbacks that take it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from enum import Enum
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro import __version__
from repro.exec.cache import CaptureCache
from repro.serve.jobs import JobSpec, execute_job
from repro.simulation import TelescopeWorld
from repro.stream.stats import wall_clock

#: Bump to invalidate every persisted job record and job key.
SERVE_SCHEMA_VERSION = 1

PathLike = Union[str, Path]


class JobState(Enum):
    """Stored lifecycle states (``running`` is derived, see below)."""

    QUEUED = "queued"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclasses.dataclass
class JobRecord:
    """One job's full lifecycle, shared by every submitter of its key."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Executions started (1 on the first run; retries increment it).
    attempts: int = 0
    #: Monotonic submission order within this queue instance.
    submitted_seq: int = 0
    future: Optional[Future[Dict[str, Any]]] = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: Pool generation the current future was submitted into (retry logic).
    generation: int = dataclasses.field(default=0, repr=False, compare=False)

    @property
    def status(self) -> str:
        """Public status: ``queued`` refines to ``running`` once a worker
        has picked the job up (the stored state flips only on completion,
        so a crash mid-run persists as ``queued`` and requeues on restart).
        """
        if (
            self.state is JobState.QUEUED
            and self.future is not None
            and self.future.running()
        ):
            return "running"
        return self.state.value

    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

    def to_dict(self, with_result: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }
        if with_result:
            doc["result"] = self.result
        return doc


class JobQueue:
    """Deduplicating, persistent, retrying job execution.

    Args:
        cache_dir: the shared :class:`CaptureCache` directory (also where
            job captures land for later ``repro-scan analyze`` runs).
        state_dir: root for persisted job records (``jobs/``) and streaming
            checkpoints (``checkpoints/``).  ``None`` keeps everything in
            memory (no restart re-attach, no checkpointing).
        workers: process-pool size (>= 1).
        max_retries: extra executions granted when a worker process dies.
        checkpoint_every: windows between checkpoint saves in streaming jobs.
        task: test hook replacing :func:`repro.serve.jobs.execute_job`.
    """

    def __init__(
        self,
        cache_dir: PathLike,
        state_dir: Optional[PathLike] = None,
        workers: int = 2,
        max_retries: int = 1,
        checkpoint_every: int = 8,
        task: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.cache = CaptureCache(cache_dir)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.jobs_dir: Optional[Path] = None
        self.checkpoint_dir: Optional[Path] = None
        if self.state_dir is not None:
            self.jobs_dir = self.state_dir / "jobs"
            self.jobs_dir.mkdir(parents=True, exist_ok=True)
            self.checkpoint_dir = self.state_dir / "checkpoints"
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.max_attempts = 1 + max(0, max_retries)
        self.checkpoint_every = checkpoint_every
        self._task = task

        # Reentrant: Future.add_done_callback / Future.cancel invoke
        # _on_done synchronously in the calling thread when the future is
        # already settled, re-entering the lock from _start_locked/cancel.
        self._lock = threading.RLock()
        self._jobs: Dict[str, JobRecord] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._seq = 0
        self._closing = False

        # Lookup counters (mirrors CaptureCache.hits/misses at job level).
        self.submissions = 0
        self.dedup_hits = 0
        self.executed = 0
        self.retries = 0
        self.completed = 0
        self.failures = 0
        self.restored = 0
        self.requeued = 0

        self._world_lock = threading.Lock()
        self._worlds: Dict[int, TelescopeWorld] = {}

        if self.jobs_dir is not None:
            self._restore()

    # -- keys ---------------------------------------------------------------

    def _world_for(self, seed: int) -> TelescopeWorld:
        """Memoised per-seed world: job keys need its stream signature and
        telescope token, and worlds are deterministic functions of the seed.
        """
        with self._world_lock:
            world = self._worlds.get(seed)
            if world is None:
                world = TelescopeWorld(rng=seed)
                self._worlds[seed] = world
            return world

    def job_key(self, spec: JobSpec) -> str:
        """Content key of one job: the capture's cache key plus the kind.

        Identical requests — same kind, same capture parameters, same
        library version — collapse onto one key; that key is the job id,
        the dedup handle, and the persisted record's filename.
        """
        spec.validate()
        world = self._world_for(spec.seed)
        capture_key = self.cache.key_for(
            world, spec.year, days=spec.days, max_packets=spec.max_packets,
            min_scans=spec.min_scans,
        )
        material = {
            "schema": SERVE_SCHEMA_VERSION,
            "version": __version__,
            "kind": spec.kind,
            "capture": capture_key,
        }
        blob = json.dumps(material, sort_keys=True).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Submit a job; identical live or completed jobs coalesce.

        A QUEUED or DONE record under the same key is returned as-is
        (dedup hit).  Running jobs coalesce through the QUEUED arm:
        ``running`` is never a stored state — a record stays QUEUED while
        its live future executes and :attr:`JobRecord.status` derives
        ``running`` from the future — so matching on QUEUED covers them.
        A failed or cancelled record is revived with a fresh attempt
        budget — resubmission is the retry-after-failure path.
        """
        job_id = self.job_key(spec)
        with self._lock:
            if self._closing:
                raise RuntimeError("queue is closed")
            self.submissions += 1
            rec = self._jobs.get(job_id)
            # QUEUED covers running jobs: running is derived from the live
            # future, never stored (see docstring).
            if rec is not None and rec.state in (JobState.QUEUED, JobState.DONE):
                self.dedup_hits += 1
                return rec
            if rec is None:
                self._seq += 1
                rec = JobRecord(job_id=job_id, spec=spec, submitted_seq=self._seq)
                self._jobs[job_id] = rec
            else:
                rec.state = JobState.QUEUED
                rec.result = None
                rec.error = None
                rec.attempts = 0
            self._start_locked(rec)
            self._persist_locked(rec)
            return rec

    def _payload(self, rec: JobRecord) -> Dict[str, Any]:
        return {
            "spec": rec.spec.to_dict(),
            "cache_dir": str(self.cache.root),
            "checkpoint_dir": (
                str(self.checkpoint_dir) if self.checkpoint_dir is not None
                else None
            ),
            "checkpoint_every": self.checkpoint_every,
        }

    def _start_locked(self, rec: JobRecord) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        rec.attempts += 1
        rec.generation = self._generation
        self.executed += 1
        payload = self._payload(rec)
        if self._task is None:
            future = self._pool.submit(execute_job, payload)
        else:  # test hook — never taken in production
            future = self._pool.submit(self._task, payload)
        rec.future = future
        future.add_done_callback(
            lambda fut, job_id=rec.job_id: self._on_done(job_id, fut)
        )

    def _on_done(self, job_id: str, future: Future[Dict[str, Any]]) -> None:
        with self._lock:
            rec = self._jobs.get(job_id)
            if rec is None or rec.future is not future:
                return  # stale callback from a retired attempt
            if future.cancelled():
                # On shutdown, queued futures are cancelled but records stay
                # QUEUED so a restarted queue requeues them; an explicit
                # cancel() re-marks the record CANCELLED right after this
                # callback returns (it runs inside Future.cancel()).
                rec.future = None
                self._persist_locked(rec)
                return
            exc = future.exception()
            if exc is None:
                # Invariant: _on_done fires only after the future settles,
                # so result() returns immediately without blocking.
                rec.result = future.result()  # repro-lint: disable=RPR017
                rec.state = JobState.DONE
                rec.error = None
                self.completed += 1
            elif isinstance(exc, BrokenExecutor):
                self._retire_pool_locked(rec.generation)
                if rec.attempts < self.max_attempts and not self._closing:
                    self.retries += 1
                    self._start_locked(rec)
                    self._persist_locked(rec)
                    return
                rec.state = JobState.FAILED
                rec.error = (
                    f"worker process died ({type(exc).__name__}) after "
                    f"{rec.attempts} attempt(s)"
                )
                self.failures += 1
            else:
                rec.state = JobState.FAILED
                rec.error = f"{type(exc).__name__}: {exc}"
                self.failures += 1
            rec.future = None
            self._persist_locked(rec)

    def _retire_pool_locked(self, generation: int) -> None:
        """Replace a broken pool exactly once per generation.

        Every in-flight future of a broken pool fails with BrokenExecutor
        and lands here; only the first callback retires the pool, the rest
        see a newer generation and just resubmit into the fresh one.
        """
        if generation != self._generation or self._pool is None:
            return
        pool, self._pool = self._pool, None
        self._generation += 1
        # Invariant: wait=False never joins workers — shutdown just flips
        # the executor's accepting flag and returns immediately.
        pool.shutdown(wait=False)  # repro-lint: disable=RPR017

    # -- queries ------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: r.submitted_seq)

    def snapshot(
        self, job_id: str, with_result: bool = True
    ) -> Optional[Dict[str, Any]]:
        """One record's ``to_dict`` view, taken atomically under the lock.

        Callers outside this class must not read record fields bare — the
        executing thread mutates ``state``/``result``/``error`` under
        ``_lock``, and a bare read can see a half-applied transition
        (e.g. ``state`` already DONE but ``result`` still ``None``).
        """
        with self._lock:
            rec = self._jobs.get(job_id)
            if rec is None:
                return None
            return rec.to_dict(with_result=with_result)

    def snapshots(self, with_result: bool = False) -> List[Dict[str, Any]]:
        """All records in submission order, snapshotted under one lock
        acquisition so the listing is a consistent cut."""
        with self._lock:
            return [
                rec.to_dict(with_result=with_result)
                for rec in sorted(
                    self._jobs.values(), key=lambda r: r.submitted_seq
                )
            ]

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Block until the job finishes (or ``timeout`` elapses)."""
        deadline = wall_clock() + timeout
        while True:
            rec = self.get(job_id)
            if rec is None:
                raise KeyError(f"no such job: {job_id}")
            if rec.finished():
                return rec
            if wall_clock() >= deadline:
                return rec
            time.sleep(0.02)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/finished jobs cannot be cancelled
        (workers are separate processes — there is nothing safe to signal
        mid-simulation; streaming jobs checkpoint, so killing the *server*
        loses nothing either way)."""
        with self._lock:
            rec = self._jobs.get(job_id)
            if rec is None or rec.state is not JobState.QUEUED:
                return False
            future = rec.future
        # Future.cancel() runs done-callbacks synchronously in this thread,
        # so it must happen outside the lock _on_done re-acquires.
        if future is not None and not future.cancel():
            return False
        with self._lock:
            if rec.state is not JobState.QUEUED:
                return False
            rec.state = JobState.CANCELLED
            rec.future = None
            self._persist_locked(rec)
            return True

    def stats(self) -> Dict[str, Any]:
        """Queue-depth and counter snapshot for the ``/stats`` surface."""
        with self._lock:
            counts = {"queued": 0, "running": 0, "done": 0, "failed": 0,
                      "cancelled": 0}
            for rec in self._jobs.values():
                counts[rec.status] += 1
            return {
                "jobs": dict(counts, total=len(self._jobs)),
                "queue_depth": counts["queued"] + counts["running"],
                "workers": self.workers,
                "counters": {
                    "submissions": self.submissions,
                    "dedup_hits": self.dedup_hits,
                    "executed": self.executed,
                    "retries": self.retries,
                    "completed": self.completed,
                    "failures": self.failures,
                    "restored": self.restored,
                    "requeued": self.requeued,
                },
                "capture_cache": {
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "entries": len(self.cache.entries()),
                    "bytes": self.cache.total_bytes(),
                },
            }

    # -- persistence --------------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        assert self.jobs_dir is not None
        return self.jobs_dir / f"{job_id}.json"

    def _persist_locked(self, rec: JobRecord) -> None:
        if self.jobs_dir is None:
            return
        doc = {
            "schema": SERVE_SCHEMA_VERSION,
            "version": __version__,
            "job_id": rec.job_id,
            "spec": rec.spec.to_dict(),
            # A job that was running when the process died must requeue on
            # restart, so the persisted state never says "running".
            "state": rec.state.value,
            "attempts": rec.attempts,
            "error": rec.error,
            "result": rec.result,
        }
        path = self._record_path(rec.job_id)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        # Invariant: the on-disk record stream must serialise with the
        # in-memory state transition it mirrors (crash consistency), and
        # the payload is one small local JSON document.
        tmp.write_text(json.dumps(doc, sort_keys=True))  # repro-lint: disable=RPR017
        os.replace(tmp, path)

    def _restore(self) -> None:
        """Reload persisted records; requeue anything left unfinished.

        Version/schema mismatches are skipped (the keys changed anyway);
        unreadable files are ignored rather than fatal — a half-written
        record cannot occur (writes are atomic) but a foreign file can.
        """
        assert self.jobs_dir is not None
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if (
                doc.get("schema") != SERVE_SCHEMA_VERSION
                or doc.get("version") != __version__
            ):
                continue
            try:
                spec = JobSpec.from_dict(doc["spec"])
                state = JobState(doc["state"])
            except (KeyError, ValueError):
                continue
            with self._lock:
                self._seq += 1
                rec = JobRecord(
                    job_id=doc["job_id"],
                    spec=spec,
                    state=state,
                    result=doc.get("result"),
                    error=doc.get("error"),
                    attempts=int(doc.get("attempts", 0)),
                    submitted_seq=self._seq,
                )
                self._jobs[rec.job_id] = rec
                self.restored += 1
                if rec.state is JobState.QUEUED:
                    # In-flight when the previous process died: run again.
                    # Streaming jobs re-attach to their checkpoints, capture
                    # synthesis re-attaches to the capture cache.
                    rec.attempts = 0
                    self.requeued += 1
                    self._start_locked(rec)

    # -- shutdown -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the pool down.

        Queued-but-unstarted futures are cancelled; their records stay
        ``queued`` on disk, so a restarted queue picks them back up.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
