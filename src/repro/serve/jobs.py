"""Worker-side job execution for the analysis service.

A job is one of three request kinds over the same content-addressed
capture material:

* ``simulate`` — synthesize (or cache-load) one calibrated telescope
  period and leave it in the :class:`~repro.exec.cache.CaptureCache`;
* ``analyze`` — the batch paper report over that capture
  (:func:`~repro.core.report.paper_report`);
* ``stream-report`` — the same report through the streaming substrate
  (:func:`~repro.stream.report.stream_report`), checkpointed so a killed
  worker re-attaches instead of recomputing.

:func:`execute_job` is the single :class:`~concurrent.futures.ProcessPoolExecutor`
entry point (submitted by :class:`repro.serve.queue.JobQueue`); it must stay
a pure function of its payload — no module-level mutable state, no ambient
randomness — which the RPR007 process-safety lint proves by walking its
call graph from the submit site.  Everything a worker needs travels in the
payload dict (plain JSON-able values, cheap to pickle); everything it
returns is a plain JSON-able dict, so job results persist verbatim into
the queue's job records and serve straight out of the HTTP API.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

import numpy as np

from repro.core import analyze_period
from repro.core.campaigns import ScanTable
from repro.core.report import PaperReport, paper_report
from repro.enrichment import ScannerClassifier, build_default_registry
from repro.exec.cache import CaptureCache
from repro.reporting import paper_report_to_json, render_paper_report
from repro.simulation import ALL_YEARS, TelescopeWorld
from repro.stream import StreamReportResult, stream_report

#: The request kinds the service understands.
JOB_KINDS = ("simulate", "analyze", "stream-report")


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One job request: a kind plus the capture parameters it runs over.

    The capture parameters mirror ``repro-scan simulate``'s flags (and its
    defaults), because they *are* the capture: together with the library
    version they determine the :class:`CaptureCache` content key, which in
    turn is the job's identity — two specs with equal fields are the same
    job, however many clients submit them.
    """

    kind: str = "simulate"
    year: int = 2020
    days: int = 14
    max_packets: int = 300_000
    min_scans: int = 600
    seed: int = 7

    def validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if self.year not in ALL_YEARS:
            raise ValueError(
                f"year {self.year} outside the study range "
                f"{ALL_YEARS[0]}-{ALL_YEARS[-1]}"
            )
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.max_packets < 1:
            raise ValueError("max_packets must be >= 1")
        if self.min_scans < 0:
            raise ValueError("min_scans must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        """Build a spec from (possibly client-supplied) JSON, strictly.

        Unknown fields are an error — a typo'd budget silently falling back
        to a default would compute (and cache) the wrong capture.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(f"unknown job spec field(s): {', '.join(unknown)}")
        kwargs: Dict[str, Any] = {}
        for f in dataclasses.fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            if f.name == "kind":
                if not isinstance(value, str):
                    raise ValueError("kind must be a string")
            elif not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{f.name} must be an integer")
            kwargs[f.name] = value
        spec = cls(**kwargs)
        spec.validate()
        return spec


def _fingerprints(scans: ScanTable) -> Dict[str, Dict[str, Any]]:
    """Per-tool attribution of the identified scans (derived analysis)."""
    if len(scans) == 0:
        return {}
    tools, counts = np.unique(scans.tool.astype(str), return_counts=True)
    total = int(counts.sum())
    return {
        str(tool): {"scans": int(count), "share": float(count / total)}
        for tool, count in zip(tools, counts)
    }


def _figures(report: PaperReport) -> Dict[str, Any]:
    """Figure-ready series that the text tables do not carry."""
    return {
        "churn_curve": [int(v) for v in report.churn.curve],
        "volatility_cdfs": {
            metric: {
                "factor": [float(v) for v in summary.cdf[0]],
                "cdf": [float(v) for v in summary.cdf[1]],
            }
            for metric, summary in sorted(report.volatility.items())
        },
    }


def _report_result(report: PaperReport, scans: ScanTable) -> Dict[str, Any]:
    return {
        "report": paper_report_to_json(report),
        "report_text": render_paper_report(report),
        "fingerprints": _fingerprints(scans),
        "figures": _figures(report),
    }


def run_stream_report(
    capture_path: str,
    year: int,
    days: int,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 8,
    stop: Optional[Any] = None,
) -> StreamReportResult:
    """The service's streaming report pass, with its fixed parameters.

    Factored out so tests can run the *identical* pass (same batching, same
    criteria, same checkpoint key) to stage a partial checkpoint and then
    prove a restarted job re-attaches to it.
    """
    return stream_report(
        capture_path,
        year=year,
        days=days,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        stop=stop,
    )


def execute_job(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry point: run one job to completion.

    ``payload`` carries ``spec`` (a :meth:`JobSpec.to_dict`), ``cache_dir``
    and, for streaming jobs, ``checkpoint_dir``/``checkpoint_every``.  Must
    stay a module-level function of its arguments alone (RPR007).
    """
    spec = JobSpec.from_dict(payload["spec"])
    cache = CaptureCache(payload["cache_dir"])
    world = TelescopeWorld(rng=spec.seed)
    key = cache.key_for(
        world, spec.year, days=spec.days, max_packets=spec.max_packets,
        min_scans=spec.min_scans,
    )
    sim = world.simulate_year(
        spec.year, days=spec.days, max_packets=spec.max_packets,
        min_scans=spec.min_scans, cache=cache,
    )
    result: Dict[str, Any] = {
        "kind": spec.kind,
        "capture": {
            "key": key,
            "path": str(cache.path_for(key)),
            "packets": int(len(sim.batch)),
            "campaigns": int(len(sim.campaigns)),
            "cache_hit": bool(sim.cache_hit),
        },
    }
    if spec.kind == "simulate":
        return result

    if spec.kind == "analyze":
        classifier = ScannerClassifier(build_default_registry())
        analysis = analyze_period(
            sim.batch, year=spec.year, days=spec.days, classifier=classifier
        )
        result.update(_report_result(paper_report(analysis), analysis.study_scans))
        return result

    # stream-report: one bounded pass, re-attaching to any prior checkpoint
    # (a retried or restarted job resumes instead of recomputing).
    passed = run_stream_report(
        str(cache.path_for(key)),
        year=spec.year,
        days=spec.days,
        checkpoint_dir=payload.get("checkpoint_dir"),
        checkpoint_every=int(payload.get("checkpoint_every", 8)),
    )
    result.update(_report_result(passed.report, passed.scans))
    result["stream"] = {
        "resumed": bool(passed.resumed),
        "stats": passed.stats.to_dict(),
    }
    return result
