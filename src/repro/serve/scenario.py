"""Per-tenant scenarios: named configs with cached derived analyses.

A :class:`Scenario` is a tenant-owned, named handle on one capture
configuration (a :class:`~repro.serve.jobs.JobSpec` without the kind — the
scenario decides how to compute, the spec decides *what*).  Its derived
analyses — the paper-report tables, figure series and tool fingerprints a
report job produces — are cached on the scenario under its **config hash**:
update the spec and the hash moves, so every cached analysis invalidates
at once and the next report request recomputes (against warm captures and
checkpoints, so "recompute" is usually a cache load).  Revert the spec and
the old hash returns, but the cache was dropped on update — correctness
never depends on remembering stale derivations.

The store persists one JSON document per scenario under
``<state_dir>/scenarios/<tenant>/<name>.json`` (atomic writes), so a
restarted server serves cached reports immediately.  Tenant and scenario
names are path components — they are validated against a conservative
pattern, not escaped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import __version__
from repro.serve.jobs import JobSpec

PathLike = Union[str, Path]

#: Tenant and scenario names must be safe path components.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def _check_name(kind: str, value: str) -> str:
    if not isinstance(value, str) or not _NAME_RE.match(value) or ".." in value:
        raise ValueError(
            f"invalid {kind} {value!r}: need 1-64 chars of [A-Za-z0-9._-] "
            "starting with an alphanumeric"
        )
    return value


def config_hash(spec: JobSpec) -> str:
    """Content hash of a scenario's configuration.

    Only the capture parameters join the material — the job kind is the
    *service's* choice of computation path, not part of what the tenant
    configured — plus schema/version, so library upgrades that change
    analysis semantics invalidate every cached derivation.
    """
    material = {
        "schema": 1,
        "version": __version__,
        "config": {
            "year": spec.year,
            "days": spec.days,
            "max_packets": spec.max_packets,
            "min_scans": spec.min_scans,
            "seed": spec.seed,
        },
    }
    blob = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclasses.dataclass
class Scenario:
    """One tenant's named configuration plus its cached derivations."""

    tenant: str
    name: str
    spec: JobSpec
    revision: int = 1
    #: ``{"config_hash": ..., "payload": {...}}`` — valid only while the
    #: stored hash equals the current :func:`config_hash` of ``spec``.
    derived: Optional[Dict[str, Any]] = None

    @property
    def config_hash(self) -> str:
        return config_hash(self.spec)

    def cached_payload(self) -> Optional[Dict[str, Any]]:
        """The cached derived analyses, or ``None`` when stale/absent."""
        if (
            self.derived is not None
            and self.derived.get("config_hash") == self.config_hash
        ):
            return self.derived.get("payload")
        return None

    def to_dict(self, with_derived: bool = True) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "tenant": self.tenant,
            "name": self.name,
            "spec": self.spec.to_dict(),
            "revision": self.revision,
            "config_hash": self.config_hash,
            "report_cached": self.cached_payload() is not None,
        }
        if with_derived:
            doc["derived"] = self.derived
        return doc


class ScenarioStore:
    """Thread-safe CRUD + derived-analysis cache over scenarios.

    ``state_dir=None`` keeps scenarios in memory only.
    """

    def __init__(self, state_dir: Optional[PathLike] = None) -> None:
        self.root: Optional[Path] = None
        if state_dir is not None:
            self.root = Path(state_dir) / "scenarios"
            self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._scenarios: Dict[Tuple[str, str], Scenario] = {}
        if self.root is not None:
            self._restore()

    # -- CRUD ---------------------------------------------------------------

    def put(self, tenant: str, name: str, spec: JobSpec) -> Scenario:
        """Create or update a scenario.

        An update with an unchanged spec is a no-op (same revision, caches
        kept).  A changed spec bumps the revision and drops every cached
        derivation — that is the config-hash invalidation in one move.
        """
        _check_name("tenant", tenant)
        _check_name("scenario name", name)
        spec.validate()
        with self._lock:
            existing = self._scenarios.get((tenant, name))
            if existing is not None and existing.spec == spec:
                return existing
            scenario = Scenario(
                tenant=tenant,
                name=name,
                spec=spec,
                revision=existing.revision + 1 if existing is not None else 1,
            )
            self._scenarios[(tenant, name)] = scenario
            self._persist_locked(scenario)
            return scenario

    def get(self, tenant: str, name: str) -> Optional[Scenario]:
        with self._lock:
            return self._scenarios.get((tenant, name))

    def list(self, tenant: str) -> List[Scenario]:
        with self._lock:
            return sorted(
                (s for s in self._scenarios.values() if s.tenant == tenant),
                key=lambda s: s.name,
            )

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted({s.tenant for s in self._scenarios.values()})

    def count(self) -> int:
        with self._lock:
            return len(self._scenarios)

    def delete(self, tenant: str, name: str) -> bool:
        with self._lock:
            scenario = self._scenarios.pop((tenant, name), None)
            if scenario is None:
                return False
            if self.root is not None:
                path = self._path(tenant, name)
                if path.exists():
                    path.unlink()
            return True

    # -- derived-analysis cache ---------------------------------------------

    def cache_derived(self, scenario: Scenario, payload: Dict[str, Any]) -> None:
        """Attach a report job's derivations under the current config hash."""
        with self._lock:
            scenario.derived = {
                "config_hash": scenario.config_hash,
                "payload": payload,
            }
            self._persist_locked(scenario)

    # -- persistence --------------------------------------------------------

    def _path(self, tenant: str, name: str) -> Path:
        assert self.root is not None
        return self.root / tenant / f"{name}.json"

    def _persist_locked(self, scenario: Scenario) -> None:
        if self.root is None:
            return
        path = self._path(scenario.tenant, scenario.name)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": 1,
            "version": __version__,
            "scenario": scenario.to_dict(with_derived=True),
        }
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        # Invariant: persisted scenarios must serialise with the in-memory
        # transition they mirror (crash consistency); the payload is one
        # small local JSON document.
        tmp.write_text(json.dumps(doc, sort_keys=True))  # repro-lint: disable=RPR017
        os.replace(tmp, path)

    def _restore(self) -> None:
        assert self.root is not None
        for path in sorted(self.root.glob("*/*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if doc.get("schema") != 1 or doc.get("version") != __version__:
                # A library upgrade changes config hashes anyway; stale
                # scenario files are simply ignored (and overwritten on the
                # next put) rather than migrated.
                continue
            data = doc.get("scenario", {})
            try:
                spec = JobSpec.from_dict(data["spec"])
                scenario = Scenario(
                    tenant=_check_name("tenant", data["tenant"]),
                    name=_check_name("scenario name", data["name"]),
                    spec=spec,
                    revision=int(data.get("revision", 1)),
                    derived=data.get("derived"),
                )
            except (KeyError, ValueError, TypeError):
                continue
            self._scenarios[(scenario.tenant, scenario.name)] = scenario
