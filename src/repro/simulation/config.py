"""Per-year ecosystem calibration (2015–2024).

Every aggregate the paper publishes — Table 1's volumes, port ranks and tool
shares, Table 2's scanner-type shares, the narrative statistics of Sections
4–6 — is encoded here as *generator parameters*.  The analysis pipeline never
reads this module; it recovers the aggregates from packets alone, and the
benchmarks compare what it recovers against the paper's numbers.

Calibration sources, and how garbled cells were handled:

* Packets/day, scans/month, tool-shares-by-scans: Table 1 verbatim.
* Port weights: Table 1's top-5 lists by packets and by sources; percentage
  cells that are obviously corrupted in the paper's text (several "26.0"
  repeats) were replaced with values interpolated from their neighbours —
  each substitution keeps the row's rank order.
* Packet shares per tool: §6.1 gives exact 2020/2022 values; other years are
  interpolated consistent with the narrative (custom tooling dominant in
  2015, Masscan dominant 2018–2022, de-fingerprinting from 2023).
* Institutional packet share: Appendix A reports known scanners at ~51% of
  telescope traffic in 2023/2024; earlier years ramp up so the volume-
  weighted average lands near Table 2's 32.6%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro._util.validate import check_fraction, check_positive
from repro.enrichment.types import ScannerType
from repro.scanners.base import Tool
from repro.simulation.ports import PortsPerScanModel

#: Years covered by the study.
ALL_YEARS: Tuple[int, ...] = tuple(range(2015, 2025))

#: Default measurement-period length in days (paper windows: 29–61 days).
DEFAULT_PERIOD_DAYS = 30

#: Default fraction of real-world volume simulated (see DESIGN.md, Scaling).
DEFAULT_MAX_PACKETS = 1_500_000


@dataclass(frozen=True)
class SpeedSpec:
    """Log-normal Internet-wide probe-rate distribution for a cohort.

    ``floor_pps`` enforces the campaign-detection threshold (§3.4: scans
    below 100 pps Internet-wide are not classified as Internet-wide scans,
    so the simulator does not spend budget on them).
    """

    median_pps: float
    sigma: float
    floor_pps: float = 120.0
    cap_pps: float = 3.0e6

    def sample(self, rng: RandomState, size: int, multiplier: float = 1.0) -> np.ndarray:
        check_positive("multiplier", multiplier)
        generator = as_generator(rng)
        draws = generator.lognormal(
            mean=np.log(self.median_pps * multiplier), sigma=self.sigma, size=size
        )
        return np.clip(draws, self.floor_pps, self.cap_pps)


@dataclass(frozen=True)
class ShardingSpec:
    """How often (and how widely) campaigns are split over multiple hosts.

    ``prob_sharded`` campaigns are split into ``1 + Geometric(mean_extra)``
    source IPs; the rest stay single-source.  Reproduces the post-2021 jump
    in scan counts without packet growth (§4.1) and the coverage modes of
    §6.4.
    """

    prob_sharded: float = 0.0
    mean_extra_shards: float = 0.0

    def __post_init__(self) -> None:
        if self.prob_sharded > 0 and self.mean_extra_shards < 1.0:
            raise ValueError("mean_extra_shards must be >= 1 when sharding is on")

    def sample_shards(self, rng: RandomState, size: int) -> np.ndarray:
        generator = as_generator(rng)
        shards = np.ones(size, dtype=np.int64)
        if self.prob_sharded > 0:
            sharded = generator.random(size) < self.prob_sharded
            n = int(sharded.sum())
            if n:
                # Geometric with mean ``mean_extra_shards`` extra sources, so
                # a sharded campaign always has at least two.
                p = 1.0 / self.mean_extra_shards
                shards[sharded] = 1 + generator.geometric(p, size=n)
        return np.minimum(shards, 256)

    def mean_shards(self) -> float:
        """Expected sources per logical campaign."""
        return 1.0 + self.prob_sharded * self.mean_extra_shards


@dataclass(frozen=True)
class CohortConfig:
    """One actor population within a year.

    ``scan_share`` is this cohort's fraction of *observed scans* (per-source
    campaigns, i.e. shards count individually); ``packet_share`` its fraction
    of the non-background, non-institutional packet budget.
    """

    name: str
    scanner_type: ScannerType
    scan_share: float
    packet_share: float
    tool_weights: Mapping[Tool, float]
    port_weights: Mapping[int, float]
    tail_fraction: float
    ports_per_scan: PortsPerScanModel
    speed: SpeedSpec
    country_weights: Mapping[str, float]
    alias_adoption: float = 0.0
    sharding: ShardingSpec = ShardingSpec()
    tool_speed_multiplier: Mapping[Tool, float] = field(
        default_factory=lambda: {
            Tool.ZMAP: 4.0,
            Tool.MASSCAN: 1.0,
            Tool.NMAP: 1.6,
            Tool.MIRAI: 0.4,
            Tool.UNICORN: 0.8,
            Tool.UNKNOWN: 0.9,
        }
    )
    pareto_alpha: float = 1.08
    sequential_fraction: float = 0.0
    recurrence_probability: float = 0.08
    #: Relative campaign-size multiplier per tool (masscan scans carry more
    #: traffic than the numerous small sharded ZMap scans, §4.1/§6.1).
    tool_packet_bias: Mapping[Tool, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_fraction("scan_share", self.scan_share)
        check_fraction("packet_share", self.packet_share)
        check_fraction("tail_fraction", self.tail_fraction)
        check_fraction("alias_adoption", self.alias_adoption)
        check_fraction("sequential_fraction", self.sequential_fraction)
        check_fraction("recurrence_probability", self.recurrence_probability)
        total = sum(self.tool_weights.values())
        if total <= 0:
            raise ValueError(f"cohort {self.name}: tool weights must sum > 0")


@dataclass(frozen=True)
class DisclosureEvent:
    """A vulnerability disclosure triggering a scanning spike (Figure 1).

    ``magnitude`` multiplies the port's baseline campaign arrival rate at the
    disclosure; the surge decays exponentially with ``decay_days`` half-life,
    matching the paper's "activity skyrockets ... and is as quickly
    forgotten" (§4.3).
    """

    name: str
    port: int
    day_offset: int
    magnitude: float = 30.0
    decay_days: float = 5.0

    def surge_factor(self, days_since: float) -> float:
        """Extra activity multiplier ``days_since`` days after disclosure."""
        if days_since < 0:
            return 0.0
        return self.magnitude * 0.5 ** (days_since / self.decay_days)


@dataclass(frozen=True)
class InstitutionalActivity:
    """Year-level knobs for the acknowledged-scanner population."""

    packet_share: float
    scan_share: float
    #: Fraction of institutional ZMap instances still running the
    #: fingerprintable build (IP-ID 54321); drops sharply in 2023/24.
    fingerprintable_fraction: float = 1.0
    #: Days an organisation takes to rotate through its covered port range.
    rotation_days: int = 7
    #: Port weights for the *named-port* share of institutional traffic
    #: (443 is predominantly institutional, §5.4 / Figure 5).
    port_weights: Mapping[int, float] = field(
        default_factory=lambda: {443: 0.5, 80: 0.2, 22: 0.1, 3390: 0.2}
    )
    #: Fraction of institutional traffic aimed at the named ports above; the
    #: rest sweeps the rotating port chunks.
    named_port_fraction: float = 0.2


@dataclass(frozen=True)
class YearConfig:
    """Full generator parameterisation for one calendar year."""

    year: int
    days: int
    packets_per_day: float          # real-world telescope packets/day (Table 1)
    scans_per_month: float          # real-world observed scans/month (Table 1)
    background_packet_fraction: float
    background_port_weights: Mapping[int, float]
    background_tail_fraction: float
    background_country_weights: Mapping[str, float]
    cohorts: Sequence[CohortConfig]
    institutional: InstitutionalActivity
    events: Sequence[DisclosureEvent] = ()
    port_country_overrides: Mapping[int, Mapping[str, float]] = field(default_factory=dict)
    #: Mean telescope hits per *background* (sub-threshold) source.
    background_mean_hits: float = 4.0
    #: Fraction of background sources carrying the Mirai fingerprint (0
    #: before the August 2016 source release; dominant afterwards, §4.2).
    background_mirai_fraction: float = 0.5
    #: Probability a background source probes more than one port (tracks the
    #: Figure 3 single-port decline).
    background_multi_port_prob: float = 0.2
    #: Backscatter (DDoS-victim responses) as a fraction of all unsolicited
    #: TCP traffic; the paper notes 98% of unsolicited TCP is SYN scans.
    backscatter_fraction: float = 0.02

    def scaled(self, max_packets: int = DEFAULT_MAX_PACKETS) -> "ScaledYear":
        """Derive simulation-scale quantities for this year.

        The scale factor is chosen so the simulated period holds at most
        ``max_packets`` telescope packets; all reported volumes must be
        divided by ``scale`` to compare against the paper.
        """
        check_positive("max_packets", max_packets)
        real_period_packets = self.packets_per_day * self.days
        scale = min(5e-3, max_packets / real_period_packets)
        return ScaledYear(config=self, scale=scale)


@dataclass(frozen=True)
class ScaledYear:
    """A :class:`YearConfig` with its simulation scale resolved."""

    config: YearConfig
    scale: float

    @property
    def period_packets(self) -> float:
        return self.config.packets_per_day * self.config.days * self.scale

    @property
    def period_scans(self) -> float:
        return self.config.scans_per_month * (self.config.days / 30.0) * self.scale


# ---------------------------------------------------------------------------
# Calibration data
# ---------------------------------------------------------------------------

_PACKETS_PER_DAY: Dict[int, float] = {
    2015: 11e6, 2016: 19e6, 2017: 45e6, 2018: 133e6, 2019: 117e6,
    2020: 283e6, 2021: 281e6, 2022: 285e6, 2023: 402e6, 2024: 345e6,
}

_SCANS_PER_MONTH: Dict[int, float] = {
    2015: 33e3, 2016: 38e3, 2017: 252e3, 2018: 137e3, 2019: 238e3,
    2020: 222e3, 2021: 290e3, 2022: 777e3, 2023: 727e3, 2024: 1.3e6,
}

#: Tool shares *by scans* (Table 1). unicorn omitted: 2 source IPs ever.
_TOOL_SCAN_SHARE: Dict[int, Dict[Tool, float]] = {
    2015: {Tool.MASSCAN: 0.005, Tool.NMAP: 0.317, Tool.MIRAI: 0.0, Tool.ZMAP: 0.021},
    2016: {Tool.MASSCAN: 0.015, Tool.NMAP: 0.128, Tool.MIRAI: 0.0, Tool.ZMAP: 0.091},
    2017: {Tool.MASSCAN: 0.007, Tool.NMAP: 0.026, Tool.MIRAI: 0.465, Tool.ZMAP: 0.011},
    2018: {Tool.MASSCAN: 0.209, Tool.NMAP: 0.032, Tool.MIRAI: 0.192, Tool.ZMAP: 0.047},
    2019: {Tool.MASSCAN: 0.219, Tool.NMAP: 0.036, Tool.MIRAI: 0.162, Tool.ZMAP: 0.027},
    2020: {Tool.MASSCAN: 0.205, Tool.NMAP: 0.050, Tool.MIRAI: 0.149, Tool.ZMAP: 0.131},
    2021: {Tool.MASSCAN: 0.251, Tool.NMAP: 0.068, Tool.MIRAI: 0.024, Tool.ZMAP: 0.092},
    2022: {Tool.MASSCAN: 0.099, Tool.NMAP: 0.023, Tool.MIRAI: 0.010, Tool.ZMAP: 0.037},
    2023: {Tool.MASSCAN: 0.002, Tool.NMAP: 0.0001, Tool.MIRAI: 0.390, Tool.ZMAP: 0.220},
    2024: {Tool.MASSCAN: 0.002, Tool.NMAP: 0.0001, Tool.MIRAI: 0.053, Tool.ZMAP: 0.590},
}

#: Port weights for packet volume (Table 1 "top ports by packets", cleaned;
#: 23/445 appear pre-block only and are excluded from analyses, as in §3.2).
_PORT_PACKET_WEIGHTS: Dict[int, Dict[int, float]] = {
    2015: {22: 15.0, 8080: 8.7, 3389: 7.1, 80: 7.0, 443: 6.0, 23: 10.0, 445: 8.0,
           21: 3.0, 1433: 2.5, 3306: 2.0, 25: 2.0, 5900: 1.5, 110: 1.0, 8443: 0.8},
    2016: {22: 8.2, 80: 6.0, 3389: 4.5, 1433: 3.5, 8080: 2.3, 23: 12.0, 445: 9.0,
           21: 4.0, 2323: 2.0, 3306: 2.0, 443: 2.0, 5900: 1.2},
    2017: {5358: 14.4, 7574: 12.1, 22: 11.2, 2323: 9.2, 6789: 6.2, 7547: 5.0,
           23231: 3.0, 80: 3.0, 8080: 2.5, 81: 2.0, 3389: 2.0, 443: 1.5},
    2018: {22: 3.1, 8545: 1.4, 3389: 1.1, 80: 1.0, 8080: 0.9, 8291: 2.5,
           2323: 1.5, 21: 1.2, 81: 0.8, 5555: 0.8, 443: 0.7},
    2019: {22: 2.9, 80: 2.0, 8080: 1.8, 81: 1.7, 3389: 1.6, 2323: 1.2,
           5555: 1.0, 443: 0.9, 5900: 0.8, 8443: 0.6, 1433: 0.6},
    2020: {80: 1.0, 3389: 0.95, 81: 0.9, 22: 0.8, 8080: 0.8, 5555: 0.7,
           443: 0.6, 2323: 0.6, 1433: 0.5, 8443: 0.4},
    2021: {6379: 1.4, 22: 1.3, 80: 1.1, 3389: 0.8, 8080: 0.8, 443: 0.7,
           81: 0.6, 5555: 0.6, 2323: 0.5},
    2022: {22: 2.7, 80: 1.4, 443: 1.3, 2375: 1.3, 2376: 1.2, 8080: 1.0,
           3389: 0.9, 81: 0.6, 5555: 0.6, 6379: 0.5},
    2023: {22: 1.8, 8080: 1.5, 80: 1.5, 3389: 1.3, 443: 1.1, 2323: 0.9,
           52869: 0.7, 60023: 0.7, 81: 0.5, 5555: 0.5},
    2024: {3389: 2.2, 22: 1.8, 80: 1.5, 443: 1.2, 8080: 1.2, 2323: 0.7,
           5900: 0.7, 81: 0.5, 5555: 0.5, 3306: 0.5},
}

#: Uniform-tail mass over the whole port range (port-space blanketing, §5.1).
_PORT_PACKET_TAIL: Dict[int, float] = {
    2015: 0.08, 2016: 0.10, 2017: 0.12, 2018: 0.40, 2019: 0.45,
    2020: 0.55, 2021: 0.60, 2022: 0.65, 2023: 0.72, 2024: 0.72,
}

#: Port weights for *source* counts (Table 1 "top ports by sources").
_PORT_SOURCE_WEIGHTS: Dict[int, Dict[int, float]] = {
    2015: {10073: 33.0, 3389: 11.3, 80: 5.8, 8080: 2.7, 22555: 2.0, 22: 2.0,
           23: 8.0, 445: 6.0, 21: 1.5, 443: 1.0},
    2016: {21: 10.2, 3389: 9.6, 20012: 5.2, 80: 3.3, 8080: 1.4, 23: 15.0,
           445: 8.0, 22: 1.5, 2323: 1.0},
    2017: {7545: 38.8, 2323: 25.3, 5358: 11.5, 22: 8.0, 23231: 7.4,
           80: 2.0, 8080: 1.5, 81: 1.0},
    2018: {8291: 38.8, 2323: 10.4, 21: 9.8, 22: 7.3, 80: 6.0, 8080: 4.0,
           5555: 3.0, 81: 2.0},
    2019: {80: 30.4, 8080: 30.3, 2323: 18.8, 5555: 11.7, 5900: 8.2,
           81: 5.0, 443: 2.0, 60001: 1.0},
    2020: {80: 35.9, 8080: 30.4, 81: 13.2, 5555: 11.0, 2323: 9.1,
           5900: 4.0, 443: 2.0},
    2021: {80: 46.0, 8080: 42.0, 5555: 13.5, 81: 9.8, 8443: 8.3,
           2323: 6.0, 5900: 3.0},
    2022: {80: 48.5, 8080: 41.9, 5555: 13.0, 81: 10.2, 8443: 7.7,
           2323: 6.0, 2375: 2.0, 2376: 2.0},
    2023: {80: 30.6, 8080: 27.1, 52869: 17.7, 60023: 17.4, 2323: 11.5,
           5555: 6.0, 81: 4.0, 443: 3.0},
    2024: {80: 37.4, 8080: 29.0, 443: 16.2, 2323: 12.1, 5900: 10.5,
           5555: 5.0, 81: 4.0, 22: 3.0},
}

#: Packet shares of the non-institutional campaign budget per cohort.
#: (hosting_fast, residential_botnet, enterprise, residual)
_COHORT_PACKET_SHARES: Dict[int, Tuple[float, float, float]] = {
    #      hosting  botnet  enterprise   (residual = 1 - sum)
    2015: (0.18,    0.00,   0.05),
    2016: (0.28,    0.00,   0.05),
    2017: (0.20,    0.38,   0.05),
    2018: (0.60,    0.13,   0.05),
    2019: (0.65,    0.09,   0.05),
    2020: (0.80,    0.04,   0.04),
    2021: (0.82,    0.02,   0.04),
    2022: (0.82,    0.01,   0.04),
    2023: (0.55,    0.05,   0.05),
    2024: (0.45,    0.02,   0.05),
}

#: Ports-per-scan mixtures (Figure 3 calibration).
_PORTS_PER_SCAN: Dict[int, PortsPerScanModel] = {
    2015: PortsPerScanModel(0.830, 0.1498, 0.0195, 0.00068, 0.00002),
    2016: PortsPerScanModel(0.820, 0.1555, 0.0235, 0.00095, 0.00005),
    2017: PortsPerScanModel(0.800, 0.1680, 0.0300, 0.00190, 0.00010),
    2018: PortsPerScanModel(0.780, 0.1790, 0.0380, 0.00250, 0.00050),
    2019: PortsPerScanModel(0.760, 0.1850, 0.0500, 0.00400, 0.00100),
    2020: PortsPerScanModel(0.740, 0.1800, 0.0700, 0.00520, 0.00480),
    2021: PortsPerScanModel(0.700, 0.2060, 0.0850, 0.00800, 0.00100),
    2022: PortsPerScanModel(0.650, 0.2400, 0.1000, 0.00900, 0.00100),
    2023: PortsPerScanModel(0.620, 0.2550, 0.1150, 0.00900, 0.00100),
    2024: PortsPerScanModel(0.580, 0.2500, 0.1500, 0.01800, 0.00200),
}

#: Country mixes for the residual (unattributed) cohorts.
_RESIDUAL_COUNTRIES: Dict[int, Dict[str, float]] = {
    2015: {"CN": 0.31, "US": 0.22, "KR": 0.06, "TW": 0.05, "RU": 0.05,
           "BR": 0.04, "DE": 0.03, "JP": 0.03, "IN": 0.03, "NL": 0.02,
           "FR": 0.02, "GB": 0.02, "VN": 0.02, "TR": 0.02, "UA": 0.02},
    2016: {"CN": 0.30, "US": 0.22, "RU": 0.06, "BR": 0.05, "KR": 0.04,
           "TW": 0.04, "IN": 0.04, "VN": 0.03, "DE": 0.03, "NL": 0.02,
           "TR": 0.02, "UA": 0.02, "JP": 0.02},
    2017: {"CN": 0.22, "US": 0.12, "BR": 0.08, "RU": 0.06, "IN": 0.06,
           "VN": 0.05, "TR": 0.04, "IR": 0.04, "KR": 0.04, "TW": 0.03,
           "ID": 0.03, "TH": 0.03, "UA": 0.03, "EG": 0.02, "NL": 0.02},
    2018: {"CN": 0.18, "US": 0.10, "RU": 0.09, "BR": 0.08, "IN": 0.06,
           "VN": 0.05, "IR": 0.04, "TR": 0.04, "ID": 0.04, "TW": 0.03,
           "TH": 0.03, "UA": 0.03, "EG": 0.03, "NL": 0.03, "KR": 0.03},
    2019: {"CN": 0.16, "BR": 0.08, "RU": 0.08, "IN": 0.07, "US": 0.06,
           "VN": 0.05, "IR": 0.05, "ID": 0.05, "TR": 0.04, "TW": 0.04,
           "TH": 0.04, "EG": 0.03, "UA": 0.03, "NL": 0.03, "MX": 0.03},
    2020: {"CN": 0.15, "BR": 0.08, "RU": 0.08, "IN": 0.08, "VN": 0.06,
           "IR": 0.06, "ID": 0.06, "US": 0.032, "TW": 0.04, "TR": 0.04,
           "TH": 0.04, "EG": 0.03, "UA": 0.03, "NL": 0.04, "MX": 0.03},
    2021: {"CN": 0.14, "RU": 0.08, "BR": 0.08, "IN": 0.08, "VN": 0.06,
           "IR": 0.05, "ID": 0.05, "US": 0.05, "NL": 0.05, "TW": 0.04,
           "TR": 0.04, "TH": 0.03, "UA": 0.03, "MX": 0.03, "EG": 0.03},
    2022: {"CN": 0.13, "US": 0.08, "RU": 0.07, "BR": 0.07, "IN": 0.07,
           "NL": 0.06, "VN": 0.05, "IR": 0.05, "ID": 0.04, "TW": 0.04,
           "TR": 0.04, "TH": 0.03, "UA": 0.03, "MX": 0.03, "DE": 0.03},
    2023: {"CN": 0.12, "US": 0.09, "NL": 0.08, "RU": 0.06, "BR": 0.06,
           "IN": 0.06, "VN": 0.05, "IR": 0.04, "ID": 0.04, "TW": 0.04,
           "TR": 0.03, "TH": 0.03, "UA": 0.03, "DE": 0.03, "GB": 0.03},
    2024: {"CN": 0.11, "US": 0.09, "NL": 0.09, "RU": 0.06, "BR": 0.06,
           "IN": 0.06, "VN": 0.05, "IR": 0.04, "ID": 0.04, "TW": 0.04,
           "TR": 0.03, "TH": 0.03, "UA": 0.03, "DE": 0.03, "GB": 0.03},
}

#: Hosting-cohort country mixes (Russia's 2018 Masscan surge, NL's rise).
_HOSTING_COUNTRIES: Dict[int, Dict[str, float]] = {
    2015: {"US": 0.35, "DE": 0.15, "NL": 0.12, "FR": 0.10, "RU": 0.08, "GB": 0.08, "SG": 0.06, "CN": 0.06},
    2016: {"US": 0.33, "DE": 0.14, "NL": 0.13, "FR": 0.10, "RU": 0.10, "GB": 0.08, "SG": 0.06, "CN": 0.06},
    2017: {"US": 0.30, "NL": 0.14, "DE": 0.13, "RU": 0.12, "FR": 0.09, "GB": 0.08, "CN": 0.08, "SG": 0.06},
    2018: {"RU": 0.60, "US": 0.12, "NL": 0.08, "DE": 0.06, "FR": 0.04, "GB": 0.04, "CN": 0.04, "SG": 0.02},
    2019: {"US": 0.25, "NL": 0.18, "RU": 0.15, "DE": 0.12, "FR": 0.08, "GB": 0.08, "CN": 0.08, "SG": 0.06},
    2020: {"US": 0.22, "NL": 0.20, "RU": 0.14, "DE": 0.12, "CN": 0.10, "FR": 0.08, "GB": 0.08, "SG": 0.06},
    2021: {"NL": 0.22, "US": 0.20, "RU": 0.13, "DE": 0.12, "CN": 0.11, "FR": 0.08, "GB": 0.08, "SG": 0.06},
    2022: {"NL": 0.24, "US": 0.20, "CN": 0.12, "RU": 0.12, "DE": 0.11, "FR": 0.08, "GB": 0.07, "SG": 0.06},
    2023: {"NL": 0.26, "US": 0.20, "CN": 0.12, "DE": 0.11, "RU": 0.10, "FR": 0.08, "GB": 0.07, "SG": 0.06},
    2024: {"NL": 0.26, "US": 0.21, "CN": 0.12, "DE": 0.11, "RU": 0.09, "FR": 0.08, "GB": 0.07, "SG": 0.06},
}

#: ZMap geography: "almost exclusively used from China and the US" (§6.5).
_ZMAP_COUNTRIES: Dict[str, float] = {"CN": 0.45, "US": 0.45, "NL": 0.05, "DE": 0.05}

#: Port-specific origin biases (§5.4).  Campaigns whose primary port matches
#: override their cohort's country mix with these weights.
_PORT_COUNTRY_OVERRIDES_BASE: Dict[int, Dict[str, float]] = {
    3389: {"CN": 0.77, "US": 0.05, "RU": 0.05, "KR": 0.04, "BR": 0.03, "NL": 0.03, "TW": 0.03},
    3306: {"CN": 0.85, "US": 0.04, "RU": 0.03, "KR": 0.03, "TW": 0.05},
    8545: {"VN": 0.70, "CN": 0.12, "US": 0.08, "KR": 0.05, "SG": 0.05},
}

#: HTTP (80) origin: US very active 2016–2018, then abandons it (§5.4).
_HTTP_US_SHARE: Dict[int, float] = {
    2015: 0.25, 2016: 0.38, 2017: 0.38, 2018: 0.35, 2019: 0.04,
    2020: 0.04, 2021: 0.05, 2022: 0.06, 2023: 0.07, 2024: 0.07,
}

#: Alias adoption (80→8080 coupling): 18% in 2015 → 87% by 2020, plateau.
_ALIAS_ADOPTION: Dict[int, float] = {
    2015: 0.18, 2016: 0.30, 2017: 0.45, 2018: 0.60, 2019: 0.75,
    2020: 0.87, 2021: 0.87, 2022: 0.88, 2023: 0.87, 2024: 0.88,
}

#: Sharding growth (collaborative scans, §4.1/§6.4).
_SHARDING: Dict[int, ShardingSpec] = {
    2015: ShardingSpec(0.01, 1.0),
    2016: ShardingSpec(0.01, 1.0),
    2017: ShardingSpec(0.02, 1.0),
    2018: ShardingSpec(0.03, 1.5),
    2019: ShardingSpec(0.04, 1.5),
    2020: ShardingSpec(0.08, 2.0),
    2021: ShardingSpec(0.12, 2.5),
    2022: ShardingSpec(0.30, 4.0),
    2023: ShardingSpec(0.35, 5.0),
    2024: ShardingSpec(0.45, 8.0),
}

#: Mirai-fingerprint share of background sources (none before the August
#: 2016 source release; the 2023 source spike shows in Table 1).
_BACKGROUND_MIRAI: Dict[int, float] = {
    2015: 0.0, 2016: 0.05, 2017: 0.70, 2018: 0.65, 2019: 0.60,
    2020: 0.55, 2021: 0.50, 2022: 0.45, 2023: 0.62, 2024: 0.50,
}

#: Per-tool campaign-size bias inside the hosting cohort: Masscan carries
#: the bulk of the traffic 2018–2022 while post-2022 ZMap scans are small
#: shards of distributed campaigns.
def _hosting_tool_bias(year: int) -> Dict[Tool, float]:
    if year <= 2017:
        return {Tool.MASSCAN: 1.5, Tool.ZMAP: 1.0}
    if year <= 2022:
        return {Tool.MASSCAN: 2.5, Tool.ZMAP: 0.6}
    return {Tool.MASSCAN: 1.0, Tool.ZMAP: 0.35}


#: Institutional activity per year (packet shares ramp to Appendix A's ~51%).
_INSTITUTIONAL: Dict[int, InstitutionalActivity] = {
    2015: InstitutionalActivity(0.05, 0.020),
    2016: InstitutionalActivity(0.07, 0.020),
    2017: InstitutionalActivity(0.08, 0.015),
    2018: InstitutionalActivity(0.10, 0.030),
    2019: InstitutionalActivity(0.12, 0.030),
    2020: InstitutionalActivity(0.15, 0.050),
    2021: InstitutionalActivity(0.20, 0.050),
    2022: InstitutionalActivity(0.28, 0.040),
    2023: InstitutionalActivity(0.50, 0.080, fingerprintable_fraction=0.5),
    2024: InstitutionalActivity(0.50, 0.100, fingerprintable_fraction=0.3),
}

#: Major disclosure events (Figure 1).  Day offsets are within the simulated
#: measurement period; magnitudes follow the "skyrocket then forget" shape.
_EVENTS: Dict[int, Tuple[DisclosureEvent, ...]] = {
    2016: (DisclosureEvent("Redis unauthenticated access", 6379, 8, 35.0, 2.5),),
    2017: (DisclosureEvent("Intel AMT CVE-2017-5689", 16992, 6, 60.0, 3.0),),
    2018: (DisclosureEvent("MikroTik WinBox CVE-2018-14847", 8291, 5, 80.0, 3.0),
           DisclosureEvent("Hadoop YARN ResourceManager", 8088, 12, 25.0, 2.0)),
    2019: (DisclosureEvent("BlueKeep CVE-2019-0708", 3389, 8, 50.0, 3.0),),
    2020: (DisclosureEvent("Citrix ADC CVE-2019-19781", 443, 4, 40.0, 2.5),
           DisclosureEvent("SaltStack CVE-2020-11651", 4506, 14, 30.0, 2.0)),
    2021: (DisclosureEvent("Exchange ProxyLogon", 443, 7, 45.0, 3.0),),
    2022: (DisclosureEvent("Spring4Shell CVE-2022-22965", 8080, 9, 35.0, 2.5),
           DisclosureEvent("Confluence CVE-2022-26134", 8090, 15, 30.0, 2.0)),
    2023: (DisclosureEvent("ESXiArgs ransomware wave", 427, 6, 55.0, 2.5),),
    2024: (DisclosureEvent("Ivanti Connect Secure", 443, 5, 40.0, 2.5),),
}

#: Botnet (Mirai-descendant) port weights per year.
_BOTNET_PORTS: Dict[int, Dict[int, float]] = {
    2017: {2323: 30.0, 5358: 14.0, 7574: 12.0, 6789: 6.0, 7547: 5.0,
           23231: 4.0, 80: 2.0, 8080: 2.0, 81: 1.0},
    2018: {2323: 25.0, 8291: 12.0, 5555: 8.0, 80: 6.0, 8080: 5.0,
           81: 4.0, 52869: 2.0, 60001: 2.0},
    2019: {2323: 22.0, 5555: 14.0, 80: 12.0, 8080: 11.0, 81: 8.0,
           5900: 4.0, 60001: 3.0, 52869: 2.0},
    2020: {80: 16.0, 8080: 13.0, 81: 12.0, 5555: 11.0, 2323: 10.0,
           5900: 4.0, 52869: 3.0, 60001: 2.0},
    2021: {80: 15.0, 8080: 13.0, 5555: 12.0, 81: 9.0, 2323: 8.0,
           8443: 6.0, 5900: 3.0},
    2022: {80: 15.0, 8080: 13.0, 5555: 12.0, 81: 9.0, 2323: 8.0,
           8443: 6.0, 5900: 3.0},
    2023: {52869: 18.0, 60023: 17.0, 2323: 12.0, 80: 10.0, 8080: 9.0,
           5555: 6.0, 81: 4.0},
    2024: {2323: 14.0, 80: 12.0, 8080: 10.0, 5900: 9.0, 5555: 6.0,
           81: 4.0, 52869: 3.0},
}

#: Enterprise cohort port weights (8545/JSON-RPC from 2018, DB ports).
def _enterprise_ports(year: int) -> Dict[int, float]:
    ports = {3306: 8.0, 1433: 6.0, 3389: 5.0, 21: 4.0, 22: 4.0, 25: 3.0,
             5432: 2.0, 6379: 2.0, 9200: 1.5, 11211: 1.5}
    if year >= 2018:
        ports[8545] = 12.0
        ports[2375] = 3.0 if year >= 2021 else 1.0
        ports[2376] = 3.0 if year >= 2021 else 1.0
    return ports


_BOTNET_COUNTRIES: Dict[str, float] = {
    "CN": 0.12, "BR": 0.11, "IN": 0.10, "VN": 0.08, "TR": 0.08, "RU": 0.07,
    "IR": 0.07, "ID": 0.06, "TW": 0.06, "TH": 0.05, "EG": 0.05, "UA": 0.05,
    "MX": 0.04, "AR": 0.03, "KR": 0.03,
}

_ENTERPRISE_COUNTRIES: Dict[str, float] = {
    "CN": 0.30, "US": 0.15, "VN": 0.15, "KR": 0.10, "JP": 0.08,
    "DE": 0.07, "IN": 0.05, "TW": 0.05, "GB": 0.05,
}


def _speed_for(year: int, kind: str) -> SpeedSpec:
    """Cohort speed specs; top-end grows over the years (§6.3)."""
    growth = 1.0 + 0.04 * (year - 2015)  # mild top-end growth
    if kind == "hosting":
        return SpeedSpec(median_pps=900.0, sigma=1.6 + 0.02 * (year - 2015),
                         cap_pps=2.5e6 * growth)
    if kind == "botnet":
        return SpeedSpec(median_pps=260.0, sigma=0.9)
    if kind == "enterprise":
        return SpeedSpec(median_pps=220.0, sigma=0.8)
    if kind == "residual":
        return SpeedSpec(median_pps=500.0, sigma=1.3, cap_pps=1.5e6 * growth)
    raise ValueError(f"unknown speed kind: {kind!r}")


def _nmap_multiplier(year: int) -> float:
    """NMap's per-year speed multiplier: the only tool with an increasing
    speed trend (§6.3, R = 0.12); NMap hosts consistently outpace Masscan
    ones in practice (§6.3's surprise finding)."""
    return 2.3 * (1.0 + 0.03 * (year - 2015))


def _build_cohorts(year: int) -> List[CohortConfig]:
    tool_share = _TOOL_SCAN_SHARE[year]
    inst = _INSTITUTIONAL[year]
    mirai_share = tool_share[Tool.MIRAI]
    masscan_share = tool_share[Tool.MASSCAN]
    zmap_share = tool_share[Tool.ZMAP]
    nmap_share = tool_share[Tool.NMAP]

    # Institutional scans run ZMap; the hosting cohort supplies the rest of
    # the observed ZMap share.
    zmap_hosting = max(0.0, zmap_share - inst.scan_share)
    hosting_share = masscan_share + zmap_hosting
    enterprise_share = 0.15
    residual_share = max(
        0.02,
        1.0 - inst.scan_share - mirai_share - hosting_share - enterprise_share,
    )

    hosting_pkts, botnet_pkts, enterprise_pkts = _COHORT_PACKET_SHARES[year]
    residual_pkts = max(0.0, 1.0 - hosting_pkts - botnet_pkts - enterprise_pkts)

    sharding = _SHARDING[year]
    alias = _ALIAS_ADOPTION[year]
    pps_model = _PORTS_PER_SCAN[year]
    tool_mult = {
        Tool.ZMAP: 4.0, Tool.MASSCAN: 1.0, Tool.NMAP: _nmap_multiplier(year),
        Tool.MIRAI: 0.4, Tool.UNICORN: 0.8, Tool.UNKNOWN: 0.9,
    }

    cohorts: List[CohortConfig] = []

    if hosting_share > 0:
        denominator = hosting_share
        cohorts.append(CohortConfig(
            name="hosting_fast",
            scanner_type=ScannerType.HOSTING,
            scan_share=hosting_share,
            packet_share=hosting_pkts,
            tool_weights={
                Tool.MASSCAN: masscan_share / denominator,
                Tool.ZMAP: zmap_hosting / denominator,
            },
            port_weights=_PORT_PACKET_WEIGHTS[year],
            tail_fraction=_PORT_PACKET_TAIL[year],
            ports_per_scan=pps_model,
            speed=_speed_for(year, "hosting"),
            country_weights=_HOSTING_COUNTRIES[year],
            alias_adoption=alias,
            sharding=sharding,
            tool_speed_multiplier=tool_mult,
            pareto_alpha=1.02,
            recurrence_probability=0.15,
            tool_packet_bias=_hosting_tool_bias(year),
        ))

    if mirai_share > 0:
        cohorts.append(CohortConfig(
            name="residential_botnet",
            scanner_type=ScannerType.RESIDENTIAL,
            scan_share=mirai_share,
            packet_share=botnet_pkts,
            tool_weights={Tool.MIRAI: 1.0},
            port_weights=_BOTNET_PORTS.get(year, {2323: 1.0}),
            # Mirai descendants re-point the scan routine at ever more
            # exploits: its port footprint blankets the range by 2020 (§6.2).
            tail_fraction=min(0.35, 0.02 + 0.08 * (year - 2017)),
            ports_per_scan=PortsPerScanModel(0.90, 0.095, 0.005, 0.0, 0.0),
            speed=_speed_for(year, "botnet"),
            country_weights=_BOTNET_COUNTRIES,
            alias_adoption=0.9,  # 23→2323 style coupling is built in
            tool_speed_multiplier=tool_mult,
            pareto_alpha=1.4,
            recurrence_probability=0.02,  # DHCP churn burns addresses
        ))

    cohorts.append(CohortConfig(
        name="enterprise_slow",
        scanner_type=ScannerType.ENTERPRISE,
        scan_share=enterprise_share,
        packet_share=enterprise_pkts,
        tool_weights={Tool.NMAP: min(0.5, nmap_share * 2.0), Tool.UNKNOWN: 1.0},
        port_weights=_enterprise_ports(year),
        tail_fraction=0.05,
        ports_per_scan=pps_model,
        speed=_speed_for(year, "enterprise"),
        country_weights=_ENTERPRISE_COUNTRIES,
        alias_adoption=alias * 0.5,
        tool_speed_multiplier=tool_mult,
        pareto_alpha=1.3,
        sequential_fraction=0.3,
        recurrence_probability=0.05,
    ))

    # Unattributed scanners, split two ways per allocation type:
    #
    # * *small* — the numerous light scans that dominate scan and source
    #   counts; their ports follow the by-sources popularity (Table 1's
    #   "top ports by sources/scans" blocks).
    # * *big* — the few heavy scans that dominate the residual packet
    #   volume; their ports follow the by-packets popularity with the
    #   year's uniform tail, which is what flattens the packet distribution
    #   over the decade (§4.2's classic-port collapse).
    nmap_residual = min(0.9, nmap_share / residual_share) if residual_share else 0.0
    residual_tools = {Tool.NMAP: nmap_residual, Tool.UNKNOWN: 1.0 - nmap_residual}
    for suffix, stype, share_fraction in (
        ("residential", ScannerType.RESIDENTIAL, 0.6),
        ("unknown", ScannerType.UNKNOWN, 0.4),
    ):
        cohorts.append(CohortConfig(
            name=f"residual_{suffix}_small",
            scanner_type=stype,
            scan_share=residual_share * share_fraction * 0.75,
            packet_share=residual_pkts * share_fraction * 0.15,
            tool_weights=residual_tools,
            port_weights=_PORT_SOURCE_WEIGHTS[year],
            tail_fraction=0.10,
            ports_per_scan=pps_model,
            speed=_speed_for(year, "residual"),
            country_weights=_RESIDUAL_COUNTRIES[year],
            alias_adoption=alias,
            tool_speed_multiplier=tool_mult,
            pareto_alpha=1.5,
            sequential_fraction=0.5 if year <= 2017 else 0.2,
            recurrence_probability=0.04 if suffix == "residential" else 0.10,
        ))
        cohorts.append(CohortConfig(
            name=f"residual_{suffix}_big",
            scanner_type=stype,
            scan_share=residual_share * share_fraction * 0.25,
            packet_share=residual_pkts * share_fraction * 0.85,
            tool_weights=residual_tools,
            port_weights=_PORT_PACKET_WEIGHTS[year],
            tail_fraction=_PORT_PACKET_TAIL[year],
            ports_per_scan=pps_model,
            speed=_speed_for(year, "residual"),
            country_weights=_RESIDUAL_COUNTRIES[year],
            alias_adoption=alias,
            tool_speed_multiplier=tool_mult,
            pareto_alpha=1.1,
            sequential_fraction=0.4 if year <= 2017 else 0.15,
            recurrence_probability=0.04 if suffix == "residential" else 0.10,
        ))

    return cohorts


def _port_country_overrides(year: int) -> Dict[int, Dict[str, float]]:
    overrides = {port: dict(mix) for port, mix in _PORT_COUNTRY_OVERRIDES_BASE.items()}
    us = _HTTP_US_SHARE[year]
    rest = 1.0 - us
    overrides[80] = {
        "US": us, "CN": rest * 0.25, "BR": rest * 0.15, "IN": rest * 0.12,
        "RU": rest * 0.10, "NL": rest * 0.10, "VN": rest * 0.08,
        "ID": rest * 0.07, "TR": rest * 0.07, "IR": rest * 0.06,
    }
    if year == 2017:
        # Port 5555's origin distribution shifts heavily in 2017 (§5.4).
        overrides[5555] = {"CN": 0.65, "KR": 0.15, "TW": 0.10, "US": 0.05, "RU": 0.05}
    return overrides


def year_config(year: int, days: int = DEFAULT_PERIOD_DAYS) -> YearConfig:
    """The calibrated configuration for ``year`` (2015–2024)."""
    if year not in _PACKETS_PER_DAY:
        raise ValueError(f"year {year} outside the study range {ALL_YEARS}")
    if not 1 <= days <= 61:
        raise ValueError("days must be within [1, 61] (the paper's windows)")
    return YearConfig(
        year=year,
        days=days,
        packets_per_day=_PACKETS_PER_DAY[year],
        scans_per_month=_SCANS_PER_MONTH[year],
        background_packet_fraction=0.10,
        background_port_weights=_PORT_SOURCE_WEIGHTS[year],
        background_tail_fraction=0.06,
        background_country_weights=_RESIDUAL_COUNTRIES[year],
        cohorts=tuple(_build_cohorts(year)),
        institutional=_INSTITUTIONAL[year],
        events=_EVENTS.get(year, ()),
        port_country_overrides=_port_country_overrides(year),
        background_mirai_fraction=_BACKGROUND_MIRAI[year],
        # Boosted beyond the scan-level single-port share because single-
        # packet sources can only ever show one port.
        background_multi_port_prob=min(0.9, 1.45 * (1.0 - _PORTS_PER_SCAN[year].p_single)),
    )


def all_year_configs(days: int = DEFAULT_PERIOD_DAYS) -> Dict[int, YearConfig]:
    """Configurations for every study year."""
    return {year: year_config(year, days=days) for year in ALL_YEARS}
