"""Multi-vantage observation (§7's 'Comparing vantage points').

The paper relies on a single telescope and flags that as a threat to
generalisability. The simulator can do what the authors could not: place a
*second* telescope and let it watch the **same** campaigns. Because every
campaign's telescope hit count scales with the vantage's share of the
address space, the same :class:`CampaignSpec` list can be re-materialised
for any telescope by scaling the planned hits.

The interesting question is then whether the *analysis* agrees across
vantages — speeds, tool shares and coverage estimates are all extrapolated
through the telescope's size, so agreement validates the §3.4 estimator
family. The vantage-comparison benchmark does exactly that.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro.simulation.campaigns import CampaignSpec, synthesize_campaign
from repro.telescope.packet import PacketBatch
from repro.telescope.sensor import Telescope


def rescale_campaign(
    spec: CampaignSpec, from_size: int, to_size: int, rng: RandomState = None
) -> CampaignSpec:
    """Re-plan a campaign's telescope hits for a different vantage size.

    Expected hits scale linearly with the monitored-address count; the
    fractional part is resolved stochastically so small campaigns don't all
    round the same way.
    """
    if from_size <= 0 or to_size <= 0:
        raise ValueError("telescope sizes must be positive")
    generator = as_generator(rng)
    exact = spec.telescope_hits * (to_size / from_size)
    hits = int(exact) + (1 if generator.random() < (exact - int(exact)) else 0)
    return replace(spec, telescope_hits=hits)


def observe_campaigns(
    campaigns: Sequence[CampaignSpec],
    telescope: Telescope,
    reference_size: int,
    year: int,
    period_end: Optional[float] = None,
    rng: RandomState = None,
) -> PacketBatch:
    """Materialise the given campaigns as seen by ``telescope``.

    ``reference_size`` is the telescope size the specs were originally
    planned for (``SimulationResult.telescope.size``). The output passes
    through the new telescope's ingress/SYN filtering, exactly like a
    primary capture.
    """
    generator = as_generator(rng)
    batches: List[PacketBatch] = []
    for spec in campaigns:
        scaled = rescale_campaign(spec, reference_size, telescope.size,
                                  generator)
        batch = synthesize_campaign(scaled, telescope, generator,
                                    period_end=period_end)
        if len(batch):
            batches.append(batch)
    raw = PacketBatch.concat(batches)
    return telescope.observe(raw, year)


def second_vantage(
    result,
    telescope: Telescope,
    rng: RandomState = None,
) -> PacketBatch:
    """The same simulated period, watched from another telescope.

    ``result`` is a :class:`~repro.simulation.world.SimulationResult`; only
    its campaigns are re-observed (background noise is vantage-local by
    nature and is deliberately not replayed — the comparison targets the
    campaign-level estimators).
    """
    period_end = result.days * 86_400.0
    return observe_campaigns(
        result.campaigns,
        telescope,
        reference_size=result.telescope.size,
        year=result.year,
        period_end=period_end,
        rng=rng,
    )
