"""Scenario builders: compose custom ecosystems beyond the study years.

The calibrated :func:`~repro.simulation.config.year_config` reproduces the
paper; this module is the kit for building *other* worlds — a single botnet
sweeping one port, an institutional-only sky, a disclosure-event stress test
— without hand-writing every cohort field. Each builder returns a complete
:class:`~repro.simulation.config.YearConfig` accepted by
:meth:`TelescopeWorld.simulate_year(config=...)`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro._util.validate import check_fraction, check_positive
from repro.enrichment.types import ScannerType
from repro.scanners.base import Tool
from repro.simulation.config import (
    CohortConfig,
    DisclosureEvent,
    InstitutionalActivity,
    ShardingSpec,
    SpeedSpec,
    YearConfig,
    year_config,
)
from repro.simulation.ports import PortsPerScanModel

#: A neutral ports-per-scan mixture for custom cohorts.
DEFAULT_PORTS_PER_SCAN = PortsPerScanModel(0.8, 0.15, 0.045, 0.004, 0.001)

#: A neutral origin mix for custom cohorts.
DEFAULT_COUNTRIES: Mapping[str, float] = {
    "US": 0.2, "CN": 0.2, "NL": 0.1, "RU": 0.1, "BR": 0.1,
    "DE": 0.1, "IN": 0.1, "VN": 0.1,
}


def make_cohort(
    name: str,
    scanner_type: ScannerType,
    tool: Tool,
    port_weights: Mapping[int, float],
    scan_share: float = 0.5,
    packet_share: float = 0.5,
    median_pps: float = 500.0,
    speed_sigma: float = 1.0,
    tail_fraction: float = 0.05,
    alias_adoption: float = 0.3,
    sharding: Optional[ShardingSpec] = None,
    country_weights: Optional[Mapping[str, float]] = None,
    ports_per_scan: Optional[PortsPerScanModel] = None,
) -> CohortConfig:
    """A single-tool cohort with sensible defaults for everything else."""
    check_positive("median_pps", median_pps)
    return CohortConfig(
        name=name,
        scanner_type=scanner_type,
        scan_share=check_fraction("scan_share", scan_share),
        packet_share=check_fraction("packet_share", packet_share),
        tool_weights={tool: 1.0},
        port_weights=dict(port_weights),
        tail_fraction=tail_fraction,
        ports_per_scan=ports_per_scan or DEFAULT_PORTS_PER_SCAN,
        speed=SpeedSpec(median_pps=median_pps, sigma=speed_sigma),
        country_weights=dict(country_weights or DEFAULT_COUNTRIES),
        alias_adoption=alias_adoption,
        sharding=sharding or ShardingSpec(),
    )


def scenario_single_botnet(
    port: int = 23,
    alt_port: int = 2323,
    days: int = 14,
    packets_per_day: float = 50e6,
    scans_per_month: float = 150e3,
    year_label: int = 2017,
) -> YearConfig:
    """A Mirai-style monoculture: one botnet drives nearly all scanning.

    Griffioen & Doerr attribute 87% of telnet traffic to Mirai variants;
    this scenario reproduces that world — useful for testing detection and
    attribution logic against a single dominant actor.
    """
    base = year_config(year_label, days=days)
    botnet = make_cohort(
        "mono_botnet", ScannerType.RESIDENTIAL, Tool.MIRAI,
        port_weights={port: 0.9, alt_port: 0.1},
        scan_share=0.9, packet_share=0.9,
        median_pps=260.0, speed_sigma=0.9, tail_fraction=0.0,
        ports_per_scan=PortsPerScanModel(0.9, 0.1, 0.0, 0.0, 0.0),
    )
    noise = make_cohort(
        "residual_noise", ScannerType.UNKNOWN, Tool.UNKNOWN,
        port_weights={22: 1.0, 80: 1.0, 443: 1.0},
        scan_share=0.1, packet_share=0.1,
    )
    return replace(
        base,
        packets_per_day=packets_per_day,
        scans_per_month=scans_per_month,
        cohorts=(botnet, noise),
        institutional=InstitutionalActivity(packet_share=0.02, scan_share=0.01),
        events=(),
        background_mirai_fraction=0.9,
        background_port_weights={port: 0.8, alt_port: 0.2},
    )


def scenario_institutional_sky(
    days: int = 14,
    packets_per_day: float = 300e6,
    scans_per_month: float = 400e3,
    year_label: int = 2024,
) -> YearConfig:
    """A world dominated by acknowledged scanners (the paper's warning:
    telescopes increasingly 'look into the mirror')."""
    base = year_config(year_label, days=days)
    residual = make_cohort(
        "residual_noise", ScannerType.UNKNOWN, Tool.UNKNOWN,
        port_weights={80: 1.0, 22: 1.0}, scan_share=1.0, packet_share=1.0,
    )
    return replace(
        base,
        packets_per_day=packets_per_day,
        scans_per_month=scans_per_month,
        cohorts=(residual,),
        institutional=InstitutionalActivity(
            packet_share=0.8, scan_share=0.3, fingerprintable_fraction=0.5,
        ),
        events=(),
        background_packet_fraction=0.05,
    )


def scenario_disclosure_storm(
    events: Sequence[Tuple[str, int, int]] = (
        ("event-a", 9200, 3), ("event-b", 6443, 8), ("event-c", 10250, 13),
    ),
    magnitude: float = 60.0,
    decay_days: float = 2.5,
    days: int = 21,
    year_label: int = 2020,
) -> YearConfig:
    """Several overlapping vulnerability disclosures in one window.

    ``events`` is a sequence of ``(name, port, day_offset)``; all get the
    same surge shape. Useful for stress-testing the event-response
    analysis when spikes overlap.
    """
    base = year_config(year_label, days=days)
    if not events:
        raise ValueError("need at least one event")
    storm = tuple(
        DisclosureEvent(name, port, day, magnitude=magnitude,
                        decay_days=decay_days)
        for name, port, day in events
    )
    for event in storm:
        if not 0 <= event.day_offset < days:
            raise ValueError(f"event {event.name} outside the period")
    return replace(base, events=storm)


def scenario_sharded_sweep(
    shards_mean: float = 16.0,
    days: int = 14,
    year_label: int = 2024,
) -> YearConfig:
    """Heavy collaborative scanning: most campaigns split over many hosts.

    Exercises the §6.4/§9 machinery — coverage modes, collaborating-subnet
    detection, single-source counting bias.
    """
    check_positive("shards_mean", shards_mean)
    base = year_config(year_label, days=days)
    sweepers = make_cohort(
        "sharded_sweepers", ScannerType.HOSTING, Tool.ZMAP,
        port_weights={443: 1.0, 80: 0.6, 22: 0.4},
        scan_share=0.8, packet_share=0.85,
        median_pps=2000.0, speed_sigma=1.0,
        sharding=ShardingSpec(prob_sharded=0.9, mean_extra_shards=shards_mean),
    )
    noise = make_cohort(
        "residual_noise", ScannerType.RESIDENTIAL, Tool.UNKNOWN,
        port_weights={80: 1.0, 8080: 0.7}, scan_share=0.2, packet_share=0.15,
    )
    return replace(
        base,
        cohorts=(sweepers, noise),
        institutional=InstitutionalActivity(packet_share=0.05, scan_share=0.02),
        events=(),
    )
