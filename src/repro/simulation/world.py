"""The telescope-world generator.

:class:`TelescopeWorld` turns a per-year :class:`~repro.simulation.config.
YearConfig` into the packets a network telescope would capture over a
measurement period, together with the ground-truth campaign list.

Two scale factors decouple simulation cost from fidelity (DESIGN.md §5):

* ``packet_scale`` — fraction of the real packet volume simulated; chosen so
  a period holds at most ``max_packets`` telescope packets.
* ``scan_scale`` — fraction of the real *observed-scan* count simulated; a
  ``min_scans`` floor keeps per-campaign statistics (ports per scan, tool
  shares, speeds) well-populated even for heavy-traffic years where the
  packet budget alone would leave too few campaigns.

Volume analyses divide by ``packet_scale``; campaign-count analyses divide by
``scan_scale``.  Per-campaign *rates* are never scaled; per-campaign hit
counts shrink when the two scales diverge, which distorts absolute coverage
estimates but preserves within-year orderings (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator, derive_rng
from repro.enrichment.knownscanners import (
    InstitutionProfile,
    institutions_active_in,
)
from repro.enrichment.registry import InternetRegistry, build_default_registry
from repro.enrichment.types import AllocationType, ScannerType
from repro.scanners.base import Tool
from repro.simulation.backscatter import sample_attacks, synthesize_backscatter
from repro.simulation.campaigns import (
    CampaignSpec,
    calibrate_pareto_bounds,
    sample_bounded_pareto,
    synthesize_campaign,
)
from repro.simulation.config import (
    DEFAULT_MAX_PACKETS,
    DEFAULT_PERIOD_DAYS,
    CohortConfig,
    YearConfig,
    year_config,
)
from repro.simulation.ports import PortSelector, alias_ports_of
from repro.telescope.addresses import IPV4_SPACE_SIZE
from repro.telescope.packet import FLAG_SYN, PacketBatch
from repro.telescope.sensor import Telescope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.cache import CaptureCache

_DAY = 86_400.0
_WEEK = 7 * _DAY

#: Map scanner types to the allocation classes their sources live in.
_ALLOC_FOR_TYPE: Dict[ScannerType, AllocationType] = {
    ScannerType.HOSTING: AllocationType.HOSTING,
    ScannerType.ENTERPRISE: AllocationType.ENTERPRISE,
    ScannerType.RESIDENTIAL: AllocationType.RESIDENTIAL,
    ScannerType.UNKNOWN: AllocationType.UNKNOWN,
    ScannerType.INSTITUTIONAL: AllocationType.INSTITUTIONAL,
}

#: Priority order used to decide *which* ports an institution covers first:
#: common service ports, then the rest of the range ascending.
_COMMON_PORTS_FIRST: Tuple[int, ...] = (
    443, 80, 22, 21, 25, 3389, 8080, 8443, 3306, 1433, 5900, 23, 110, 143,
    445, 53, 5432, 6379, 8000, 8888, 81, 2323, 5555, 9200, 11211, 2375,
)


@dataclass
class SimulationResult:
    """A simulated measurement period plus its ground truth."""

    year: int
    config: YearConfig
    telescope: Telescope
    registry: InternetRegistry
    batch: PacketBatch
    campaigns: List[CampaignSpec]
    packet_scale: float
    scan_scale: float
    background_sources: int
    #: Backscatter frames that reached the telescope (dropped by the SYN
    #: filter before analysis; §3.2's separation).
    backscatter_packets: int = 0
    #: Largest telescope-hit count any single campaign may produce, as a
    #: fraction of the telescope size.  Coverage estimates recovered by the
    #: analysis are compressed by this factor when packet and scan scales
    #: diverge; divide by it to compare against the paper's absolute numbers.
    coverage_cap: float = 1.0
    #: True when this result was materialised from a capture cache instead of
    #: being synthesized (see ``repro.exec.cache.CaptureCache``).
    cache_hit: bool = False

    @property
    def days(self) -> int:
        return self.config.days

    def syn_scan_share(self) -> float:
        """Share of unsolicited TCP traffic that is SYN scanning (≈98%)."""
        total = len(self.batch) + self.backscatter_packets
        return len(self.batch) / total if total else 0.0

    def packets_per_day_unscaled(self) -> float:
        """Observed packets/day projected back to real-world volume."""
        return len(self.batch) / self.days / self.packet_scale

    def scans_per_month_unscaled(self) -> float:
        """Ground-truth observed scans/month projected back to real volume."""
        observed = sum(spec.shards for spec in self.campaigns)
        return observed / (self.days / 30.0) / self.scan_scale


class TelescopeWorld:
    """Generates synthetic telescope captures for the study years."""

    def __init__(
        self,
        telescope: Optional[Telescope] = None,
        registry: Optional[InternetRegistry] = None,
        rng: RandomState = None,
    ):
        # Per-year streams are re-keyed off this root, so a year's draws
        # depend only on (world seed, year) — never on how many other years
        # were simulated first.  That order-independence is what makes
        # `simulate_years` safely parallelisable (repro.exec).
        self._stream_root = derive_rng(rng, "telescope-world")
        self._rng = as_generator(rng)
        self.telescope = telescope if telescope is not None else Telescope.paper_telescope(
            rng=self._rng
        )
        self.registry = registry if registry is not None else build_default_registry()
        self._prefix_cache: Dict[Tuple[Optional[str], AllocationType], List[int]] = {}
        self._weekly_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self._recurrence_pools: Dict[str, List[Tuple[int, str]]] = {}

    # -- public API -----------------------------------------------------------

    def simulate_year(
        self,
        year: int,
        days: int = DEFAULT_PERIOD_DAYS,
        max_packets: int = DEFAULT_MAX_PACKETS,
        min_scans: int = 1200,
        config: Optional[YearConfig] = None,
        cache: Optional["CaptureCache"] = None,
    ) -> SimulationResult:
        """Simulate one measurement period.

        Args:
            year: study year (2015–2024) — ignored if ``config`` is given.
            days: period length in days.
            max_packets: telescope-packet budget for the whole period.
            min_scans: floor on the number of observed scans simulated.
            config: override the calibrated :func:`year_config`.
            cache: optional capture cache; calibrated (``config is None``)
                periods are loaded from / stored into it, keyed on the world
                seed, telescope layout, year calibration and budgets.
        """
        cfg = config if config is not None else year_config(year, days=days)
        if cache is not None and config is None:
            key = cache.key_for(self, cfg.year, days=days, max_packets=max_packets,
                                min_scans=min_scans)
            hit = cache.load(key, self)
            if hit is not None:
                return hit
        scaled = cfg.scaled(max_packets)
        # The year's entire realisation comes from this derived stream: same
        # world seed + same year ⇒ byte-identical capture, in any call order
        # and at any `simulate_years` worker count.
        rng = derive_rng(self._stream_root, "simulate-year", cfg.year)
        self._recurrence_pools.clear()

        period = cfg.days * _DAY
        total_packets = scaled.period_packets
        raw_scans = scaled.period_scans
        n_scans = max(int(round(raw_scans)), min_scans)
        real_scans = cfg.scans_per_month * (cfg.days / 30.0)
        scan_scale = n_scans / real_scans

        budget_bg = cfg.background_packet_fraction * total_packets
        budget_rest = total_packets - budget_bg
        budget_inst = cfg.institutional.packet_share * budget_rest
        budget_cohorts = budget_rest - budget_inst

        # Every active organisation appears at least once; beyond that the
        # institutional scan count follows the calibrated share, so Table 1's
        # per-year tool mix is not distorted by recurrence floors.  (Analyses
        # that need the daily re-scan cadence, like Figure 6, use a larger
        # simulation budget so the share-driven count is high enough.)
        n_inst = max(
            int(round(cfg.institutional.scan_share * n_scans)),
            len(institutions_active_in(cfg.year)),
        )
        n_cohort_scans = max(1, n_scans - n_inst)

        # No single campaign may dominate the (scaled) capture: cap per-
        # campaign hits at ~3% of the period's packets.  At full scale the
        # cap reaches the telescope size, i.e. a true full-IPv4 sweep.
        hit_cap = int(min(self.telescope.size, max(900, 0.03 * total_packets)))

        specs: List[CampaignSpec] = []
        next_id = [0]

        specs.extend(
            self._cohort_campaigns(
                cfg, n_cohort_scans, budget_cohorts, period, hit_cap, rng, next_id
            )
        )
        self._apply_events(cfg, specs, period, rng)
        specs.extend(
            self._institutional_campaigns(
                cfg, n_inst, budget_inst, period, hit_cap, rng, next_id
            )
        )

        batches = [
            synthesize_campaign(spec, self.telescope, rng, period_end=period)
            for spec in specs
        ]
        bg_batch, n_bg_sources = self._background_traffic(cfg, budget_bg, period, rng)
        batches.append(bg_batch)

        # Backscatter rides on top of the scan budget: the paper's 98%-SYN
        # observation fixes its share of the raw unsolicited traffic.
        bs_fraction = cfg.backscatter_fraction
        bs_budget = total_packets * bs_fraction / max(1e-9, 1.0 - bs_fraction)
        attacks = sample_attacks(self.registry, bs_budget, period, rng)
        bs_batch = synthesize_backscatter(
            attacks, self.telescope, rng, period_end=period
        )
        batches.append(bs_batch)

        raw = PacketBatch.concat([b for b in batches if len(b)])
        observed = self.telescope.observe(raw, cfg.year)

        result = SimulationResult(
            year=cfg.year,
            config=cfg,
            telescope=self.telescope,
            registry=self.registry,
            batch=observed,
            campaigns=specs,
            packet_scale=scaled.scale,
            scan_scale=scan_scale,
            background_sources=n_bg_sources,
            backscatter_packets=len(bs_batch),
            coverage_cap=hit_cap / self.telescope.size,
        )
        if cache is not None and config is None:
            cache.store(key, result)
        return result

    def simulate_years(
        self,
        years: Sequence[int],
        days: int = DEFAULT_PERIOD_DAYS,
        max_packets: int = DEFAULT_MAX_PACKETS,
        min_scans: int = 1200,
        workers: int = 0,
        cache: Optional["CaptureCache"] = None,
    ) -> Dict[int, SimulationResult]:
        """Simulate several years with shared telescope and registry.

        ``workers=0`` runs serially in-process; ``workers >= 1`` fans the
        years out over a process pool (repro.exec).  Because every year's
        stream is derived from ``(world seed, year)`` alone, the output is
        byte-identical at any worker count and in any year order.
        """
        from repro.exec.parallel import simulate_years_parallel

        return simulate_years_parallel(
            self, years, days=days, max_packets=max_packets,
            min_scans=min_scans, workers=workers, cache=cache,
        )

    # -- cohort campaigns -------------------------------------------------------

    def _cohort_campaigns(
        self,
        cfg: YearConfig,
        n_observed: int,
        budget: float,
        period: float,
        hit_cap: int,
        rng: np.random.Generator,
        next_id: List[int],
    ) -> List[CampaignSpec]:
        share_total = sum(c.scan_share for c in cfg.cohorts)
        pkt_total = sum(c.packet_share for c in cfg.cohorts)
        specs: List[CampaignSpec] = []
        for cohort in cfg.cohorts:
            n_obs = max(1, int(round(n_observed * cohort.scan_share / share_total)))
            mean_shards = cohort.sharding.mean_shards()
            n_logical = max(1, int(round(n_obs / mean_shards)))
            cohort_budget = budget * cohort.packet_share / max(pkt_total, 1e-12)
            specs.extend(
                self._one_cohort(
                    cfg, cohort, n_logical, cohort_budget, period, hit_cap, rng, next_id
                )
            )
        return specs

    def _one_cohort(
        self,
        cfg: YearConfig,
        cohort: CohortConfig,
        n_logical: int,
        budget: float,
        period: float,
        hit_cap: int,
        rng: np.random.Generator,
        next_id: List[int],
    ) -> List[CampaignSpec]:
        selector = PortSelector(
            cohort.port_weights,
            tail_fraction=cohort.tail_fraction,
            alias_adoption=cohort.alias_adoption,
            rng=rng,
        )
        port_counts = cohort.ports_per_scan.sample_counts(rng, n_logical)
        primaries = selector.sample_primary(n_logical)
        # Alias coupling (§5.1's 80→8080 trend) applies to *all* scans of a
        # port with known aliases: an adopted scan always includes the
        # aliases, bumping single-port scans to multi-port.
        alias_bump = rng.random(n_logical) < cohort.alias_adoption
        for i in range(n_logical):
            if alias_bump[i]:
                aliases = alias_ports_of(int(primaries[i]))
                if aliases:
                    port_counts[i] = max(port_counts[i], 1 + min(len(aliases), 2))
        shard_counts = cohort.sharding.sample_shards(rng, n_logical)

        tools = list(cohort.tool_weights)
        tool_probs = np.array([cohort.tool_weights[t] for t in tools], dtype=float)
        tool_probs /= tool_probs.sum()
        tool_draws = rng.choice(len(tools), size=n_logical, p=tool_probs)

        mean_target = max(budget / n_logical, 135.0)
        low, high = calibrate_pareto_bounds(
            cohort.pareto_alpha, mean_target, floor=125.0, cap=float(hit_cap)
        )
        sizes = sample_bounded_pareto(
            rng, cohort.pareto_alpha, low, high, n_logical
        )
        if cohort.tool_packet_bias:
            bias = np.array([
                cohort.tool_packet_bias.get(tools[d], 1.0) for d in tool_draws
            ])
            sizes = sizes * bias
            # Re-normalise so the cohort budget is preserved in expectation.
            sizes *= budget / max(sizes.sum(), 1.0)
        sizes = np.minimum(sizes, hit_cap).astype(np.int64)
        sizes = np.maximum(sizes, (shard_counts * 121))

        speeds = cohort.speed.sample(rng, n_logical)
        starts = rng.uniform(0.0, period, size=n_logical)

        port_sets = [
            selector.sample_port_set(
                int(primaries[i]), int(port_counts[i]),
                force_alias=bool(alias_bump[i]),
            )
            for i in range(n_logical)
        ]
        pps_arr = np.empty(n_logical)
        for i in range(n_logical):
            tool = tools[tool_draws[i]]
            per_host = float(speeds[i]) * cohort.tool_speed_multiplier.get(tool, 1.0)
            # Sharded campaigns run every collaborating host at its own full
            # rate; the campaign's aggregate rate is the sum over shards.
            pps = per_host * int(shard_counts[i])
            probes = float(sizes[i]) * (IPV4_SPACE_SIZE / self.telescope.size)
            # A campaign may outlive the measurement window (the capture
            # then sees only part of it), but not by much — beyond 1.5
            # windows the tool is simply run faster.  Each shard must itself
            # clear the 100 pps detection threshold.
            pps_arr[i] = max(pps, probes / (1.5 * period),
                             135.0 * int(shard_counts[i]))

        # Compensate period-edge censoring: campaigns running past the window
        # lose their tail, so the planned sizes are boosted to meet the
        # cohort's packet budget in expectation.
        extrapolation = IPV4_SPACE_SIZE / self.telescope.size
        durations = sizes * extrapolation / pps_arr
        window_fraction = np.clip((period - starts) / np.maximum(durations, 1e-9), 0.0, 1.0)
        expected = float((sizes * window_fraction).sum())
        if expected > 0:
            boost = min(2.0, budget / expected)
            sizes = np.minimum((sizes * boost).astype(np.int64), hit_cap)
            sizes = np.maximum(sizes, shard_counts * 121)

        specs: List[CampaignSpec] = []
        for i in range(n_logical):
            tool = tools[tool_draws[i]]
            pps = float(pps_arr[i])
            ports = port_sets[i]
            hits = int(sizes[i])
            coverage = min(1.0, hits / (self.telescope.size * len(ports)))
            sequential = tool == Tool.NMAP or (
                tool == Tool.UNKNOWN and rng.random() < cohort.sequential_fraction
            )
            country = self._campaign_country(cfg, cohort, int(primaries[i]), rng)
            src_ips = self._draw_sources(
                cfg.year, cohort, country, starts[i], int(shard_counts[i]), rng
            )
            specs.append(CampaignSpec(
                campaign_id=next_id[0],
                cohort=cohort.name,
                scanner_type=cohort.scanner_type,
                tool=tool,
                country=country,
                src_ips=tuple(int(s) for s in src_ips),
                ports=tuple(int(p) for p in ports),
                start=float(starts[i]),
                rate_pps=pps,
                telescope_hits=hits,
                ipv4_coverage=max(coverage, 1e-9),
                sequential=sequential,
            ))
            next_id[0] += 1
        return specs

    def _campaign_country(
        self,
        cfg: YearConfig,
        cohort: CohortConfig,
        primary_port: int,
        rng: np.random.Generator,
    ) -> str:
        override = cfg.port_country_overrides.get(primary_port)
        weights = override if (override and rng.random() < 0.85) else cohort.country_weights
        names = list(weights)
        probs = np.array([weights[c] for c in names], dtype=float)
        return names[int(rng.choice(len(names), p=probs / probs.sum()))]

    # -- source-address selection -------------------------------------------------

    def _prefixes(self, country: Optional[str], alloc: AllocationType) -> List[int]:
        key = (country, alloc)
        if key not in self._prefix_cache:
            indices = self.registry.matching_prefix_indices(
                country=country, alloc_type=alloc
            )
            if not indices:
                indices = self.registry.matching_prefix_indices(alloc_type=alloc)
            self._prefix_cache[key] = indices
        return self._prefix_cache[key]

    def _weekly_weights(self, year: int, week: int) -> np.ndarray:
        """Per-prefix activity multipliers for one week.

        Deterministic in (year, week): activity concentrates in a changing
        subset of netblocks, producing the factor-2+ weekly swings of
        Figure 2.
        """
        key = (year, week)
        if key not in self._weekly_cache:
            # The exact entropy words are load-bearing: weekly weights are
            # calibrated against this stream, and derive_rng mixes tokens
            # differently.  Keep the pinned construction, suppressed.
            gen = np.random.default_rng([year, week, 0x5CA9])  # repro-lint: disable=RPR002
            self._weekly_cache[key] = gen.lognormal(0.0, 1.1, size=len(self.registry))
        return self._weekly_cache[key]

    def _draw_sources(
        self,
        year: int,
        cohort: CohortConfig,
        country: str,
        start: float,
        shards: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        pool = self._recurrence_pools.setdefault(cohort.name, [])
        if shards == 1 and pool and rng.random() < cohort.recurrence_probability:
            ip, _ = pool[int(rng.integers(0, len(pool)))]
            return np.array([ip], dtype=np.uint32)

        alloc = _ALLOC_FOR_TYPE[cohort.scanner_type]
        indices = self._prefixes(country, alloc)
        weekly = self._weekly_weights(year, int(start // _WEEK))
        weights = weekly[indices] * np.array(
            [self.registry.records[i].block.size for i in indices], dtype=float
        )
        if shards == 1:
            ips = self.registry.sample_from_prefixes(rng, indices, 1, weights=weights)
        else:
            # Shards cluster in one subnet (collaborating hosts, §6.4).
            chosen = int(rng.choice(len(indices), p=weights / weights.sum()))
            block = self.registry.records[indices[chosen]].block
            base = int(rng.integers(block.first, max(block.first + 1, block.last - shards)))
            ips = np.arange(base, base + shards, dtype=np.uint32)
        for ip in ips.tolist():
            pool.append((int(ip), country))
        if len(pool) > 4000:
            del pool[: len(pool) - 4000]
        return ips

    # -- events ----------------------------------------------------------------

    def _apply_events(
        self,
        cfg: YearConfig,
        specs: List[CampaignSpec],
        period: float,
        rng: np.random.Generator,
    ) -> None:
        """Re-target a subset of campaigns onto disclosure-event ports.

        Conversion keeps scan counts and packet budgets intact while
        concentrating activity on the event port right after the disclosure
        (Figure 1's spike-and-decay).
        """
        if not cfg.events or not specs:
            return
        convertible = [
            i for i, s in enumerate(specs)
            if s.scanner_type in (ScannerType.HOSTING, ScannerType.UNKNOWN,
                                  ScannerType.RESIDENTIAL)
            and s.tool != Tool.MIRAI
        ]
        rng.shuffle(convertible)
        cursor = 0
        per_day_baseline = len(specs) / cfg.days
        for event in cfg.events:
            # Total surge integral: magnitude decaying with the given
            # half-life, expressed in units of daily baseline campaigns.
            integral_days = event.magnitude * event.decay_days / math.log(2.0)
            n_extra = int(min(0.05 * len(specs), 0.004 * per_day_baseline * integral_days))
            for _ in range(n_extra):
                if cursor >= len(convertible):
                    break
                idx = convertible[cursor]
                cursor += 1
                days_since = rng.exponential(event.decay_days / math.log(2.0))
                start = min((event.day_offset + days_since) * _DAY, period - 1.0)
                old = specs[idx]
                specs[idx] = replace(
                    old,
                    ports=(event.port,),
                    start=float(start),
                    ipv4_coverage=min(
                        1.0, old.telescope_hits / self.telescope.size
                    ),
                )

    # -- institutional campaigns --------------------------------------------------

    def _institutional_campaigns(
        self,
        cfg: YearConfig,
        n_inst: int,
        budget: float,
        period: float,
        hit_cap: int,
        rng: np.random.Generator,
        next_id: List[int],
    ) -> List[CampaignSpec]:
        profiles = institutions_active_in(cfg.year)
        if not profiles or n_inst <= 0 or budget <= 0:
            return []
        # Budget weight grows superlinearly with port coverage: an
        # organisation sweeping the whole range sends disproportionally more
        # probes than one covering half of it at the same cadence.
        weights = np.array([
            p.daily_campaigns * max(p.coverage_in(cfg.year), 0.003) ** 1.5
            for p in profiles
        ])
        weights /= weights.sum()
        campaign_counts = np.maximum(1, np.round(weights * n_inst).astype(int))
        # Organisations near a daily cadence snap to exactly one scan per
        # day: real institutions re-scan daily, and Figure 6's institutional
        # downtime mode depends on it.  Campaign counts are capped at one
        # per day per source pool.
        campaign_counts = np.where(
            campaign_counts >= 0.5 * cfg.days, cfg.days, campaign_counts
        )
        campaign_counts = np.minimum(campaign_counts, 4 * cfg.days)
        budgets = budget * weights

        specs: List[CampaignSpec] = []
        inst_cfg = cfg.institutional
        named_ports = list(inst_cfg.port_weights)
        named_probs = np.array([inst_cfg.port_weights[p] for p in named_ports], dtype=float)
        named_probs /= named_probs.sum()

        for profile, n_campaigns, org_budget in zip(profiles, campaign_counts, budgets):
            covered = max(1, profile.ports_in(cfg.year))
            port_priority = self._port_priority(covered)
            n_sources = max(1, min(4, int(round(n_campaigns / cfg.days))))
            pool = self._org_pool(profile.name, n_sources, rng)
            hits_per = min(hit_cap, max(130, int(org_budget / n_campaigns)))
            # Rotate finely enough that a campaign's hit budget can touch
            # every port of its chunk at least once; otherwise the observed
            # port footprint would be capped by packets, not by the
            # organisation's actual coverage.
            min_rotation = int(np.ceil(covered / hits_per))
            rotation = max(1, min(
                max(inst_cfg.rotation_days * n_sources, min_rotation),
                int(n_campaigns),
            ))
            day_anchor = float(rng.uniform(0, _DAY * 0.5))

            named_period = max(1, int(round(1.0 / max(inst_cfg.named_port_fraction, 1e-6))))
            for j in range(int(n_campaigns)):
                day = (j * cfg.days) // int(n_campaigns)
                start = day * _DAY + day_anchor + float(rng.uniform(0, 600.0))
                # Named-port sweeps run on a deterministic cadence (every
                # Nth campaign) so an organisation's port footprint is
                # stable run-to-run even with few campaigns.
                if (j + 1) % named_period == 0:
                    k = int(rng.integers(1, min(4, len(named_ports)) + 1))
                    ports = tuple(sorted({
                        int(named_ports[int(rng.choice(len(named_ports), p=named_probs))])
                        for _ in range(k)
                    }))
                else:
                    chunk = port_priority[j % rotation::rotation]
                    ports = tuple(int(p) for p in chunk) or (443,)
                coverage = min(1.0, hits_per / (self.telescope.size * len(ports)))
                probes = coverage * IPV4_SPACE_SIZE * len(ports)
                pps = float(rng.lognormal(np.log(profile.speed_pps), 0.5))
                pps = max(pps, probes / (0.9 * _DAY), 1000.0)
                fingerprintable = rng.random() < inst_cfg.fingerprintable_fraction
                specs.append(CampaignSpec(
                    campaign_id=next_id[0],
                    cohort="institutional",
                    scanner_type=ScannerType.INSTITUTIONAL,
                    tool=Tool.ZMAP,
                    country=profile.country,
                    src_ips=(int(pool[j % len(pool)]),),
                    ports=ports,
                    start=start,
                    rate_pps=pps,
                    telescope_hits=hits_per,
                    ipv4_coverage=max(coverage, 1e-9),
                    fingerprintable=fingerprintable,
                    organisation=profile.name,
                ))
                next_id[0] += 1
        return specs

    @staticmethod
    def _port_priority(covered: int) -> np.ndarray:
        """First ``covered`` ports in institutional priority order."""
        rest = np.setdiff1d(
            np.arange(1, 65536, dtype=np.int64),
            np.array(_COMMON_PORTS_FIRST, dtype=np.int64),
            assume_unique=False,
        )
        priority = np.concatenate([np.array(_COMMON_PORTS_FIRST, dtype=np.int64), rest])
        return priority[:covered]

    def _org_pool(self, organisation: str, n_sources: int, rng: np.random.Generator) -> np.ndarray:
        """Stable source-IP pool for one organisation."""
        records = self.registry.prefixes_of_org(organisation)
        if not records:
            raise ValueError(f"organisation {organisation!r} has no registry prefixes")
        block = records[0].block
        return np.arange(block.first + 10, block.first + 10 + n_sources, dtype=np.uint32)

    # -- background (sub-threshold) sources ----------------------------------------

    def _background_traffic(
        self,
        cfg: YearConfig,
        budget: float,
        period: float,
        rng: np.random.Generator,
    ) -> Tuple[PacketBatch, int]:
        """Sources below the campaign thresholds: few probes each, many IPs.

        These drive the *source*-count statistics (Table 1's "top ports by
        sources") and are dominated by Mirai-descendant residential devices
        (§4.2), so most carry the Mirai sequence-number fingerprint.
        """
        n_sources = max(1, int(budget / cfg.background_mean_hits))
        # Geometric sizes, capped below the campaign threshold.
        sizes = np.minimum(
            rng.geometric(1.0 / cfg.background_mean_hits, size=n_sources), 90
        )

        selector = PortSelector(
            cfg.background_port_weights,
            tail_fraction=cfg.background_tail_fraction,
            alias_adoption=0.8,
            rng=rng,
        )
        primary_port = selector.sample_primary(n_sources).astype(np.uint16)
        # A growing minority of background sources probes several ports
        # (alias-coupled), tracking Figure 3's single-port decline.
        multi = rng.random(n_sources) < cfg.background_multi_port_prob
        extra_counts = np.where(
            multi, rng.integers(2, 6, size=n_sources), 1
        )
        extra_counts = np.minimum(extra_counts, np.maximum(sizes, 1))

        weeks = rng.integers(0, max(1, int(period // _WEEK) + 1), size=n_sources)
        alloc_draw = rng.random(n_sources)
        src_ips = np.zeros(n_sources, dtype=np.uint32)
        countries = list(cfg.background_country_weights)
        country_probs = np.array(
            [cfg.background_country_weights[c] for c in countries], dtype=float
        )
        country_probs /= country_probs.sum()

        for week in np.unique(weeks):
            weekly = self._weekly_weights(cfg.year, int(week))
            for alloc, lo, hi in (
                (AllocationType.RESIDENTIAL, 0.0, 0.7),
                (AllocationType.UNKNOWN, 0.7, 1.0),
            ):
                mask = (weeks == week) & (alloc_draw >= lo) & (alloc_draw < hi)
                count = int(mask.sum())
                if count == 0:
                    continue
                indices = self._prefixes(None, alloc)
                sizes_arr = np.array(
                    [self.registry.records[i].block.size for i in indices], dtype=float
                )
                country_of_prefix = np.array(
                    [self.registry.records[i].country for i in indices]
                )
                country_factor = np.array([
                    cfg.background_country_weights.get(c, 0.01)
                    for c in country_of_prefix
                ])
                weights = weekly[indices] * sizes_arr * country_factor
                src_ips[mask] = self.registry.sample_from_prefixes(
                    rng, indices, count, weights=weights
                )

        # Expand per-source rows into packets; multi-port sources cycle
        # through their (alias-heavy) port set packet by packet.
        total = int(sizes.sum())
        src_rep = np.repeat(src_ips, sizes)
        port_rep = np.repeat(primary_port, sizes)
        packet_pos = np.arange(total) - np.repeat(np.cumsum(sizes) - sizes, sizes)
        extra_rep = np.repeat(extra_counts, sizes)
        needs_alias = extra_rep > 1
        if np.any(needs_alias):
            # Each source owns a fixed set of up to 5 ports: slot 0 is its
            # primary, slots 1+ are drawn once per source (not per packet,
            # which would inflate distinct-port counts).
            max_slots = 5
            alt_table = selector.sample_primary(n_sources * (max_slots - 1)).astype(
                np.uint16
            ).reshape(n_sources, max_slots - 1)
            src_row = np.repeat(np.arange(n_sources), sizes)
            alias_slot = packet_pos % np.maximum(extra_rep, 1)
            use_alt = needs_alias & (alias_slot > 0)
            port_rep = port_rep.copy()
            port_rep[use_alt] = alt_table[
                src_row[use_alt], (alias_slot[use_alt] - 1) % (max_slots - 1)
            ]
        week_rep = np.repeat(weeks, sizes)
        # Each source is active in a burst window of a few hours in its week.
        burst_start = np.repeat(
            rng.uniform(0.0, _WEEK - 4 * 3600.0, size=n_sources), sizes
        )
        t = np.minimum(
            week_rep * _WEEK + burst_start + rng.uniform(0, 4 * 3600.0, size=total),
            period - 1.0,
        )

        mirai_mask = np.repeat(
            rng.random(n_sources) < cfg.background_mirai_fraction, sizes
        )
        dst = self.telescope.sample_destinations(rng, total)
        seq = np.where(
            mirai_mask, dst, rng.integers(0, 2**32, size=total, dtype=np.uint32)
        ).astype(np.uint32)

        batch = PacketBatch(
            time=t,
            src_ip=src_rep,
            dst_ip=dst,
            src_port=rng.integers(1024, 65535, size=total, dtype=np.uint16),
            dst_port=port_rep,
            ip_id=rng.integers(0, 2**16, size=total, dtype=np.uint16),
            seq=seq,
            ttl=rng.integers(38, 120, size=total).astype(np.uint8),
            window=rng.integers(1024, 65535, size=total, dtype=np.uint16),
            flags=np.full(total, FLAG_SYN, dtype=np.uint8),
        )
        return batch, n_sources
