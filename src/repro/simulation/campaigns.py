"""Campaign specifications and telescope-hit synthesis.

A :class:`CampaignSpec` fully describes one *logical* scan campaign: who runs
it (source IPs — several when the scan is sharded over collaborating hosts),
with which tool, against which ports, how much of IPv4 it sweeps, how fast,
and when.  :func:`synthesize_campaign` turns a spec into the packets the
telescope captures, using analytic thinning: rather than generating the
billions of probes an Internet-wide scan sends, only the probes that land in
the telescope's address space are materialised (see DESIGN.md, "Analytic
thinning").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro.enrichment.types import ScannerType
from repro.scanners import (
    CustomToolModel,
    MasscanModel,
    MiraiModel,
    NMapModel,
    ScannerToolModel,
    Tool,
    UnicornModel,
    ZMapModel,
)
from repro.telescope.addresses import IPV4_SPACE_SIZE
from repro.telescope.packet import FLAG_SYN, PacketBatch
from repro.telescope.sensor import Telescope


@dataclass(frozen=True)
class CampaignSpec:
    """Ground-truth description of one logical scan campaign."""

    campaign_id: int
    cohort: str
    scanner_type: ScannerType
    tool: Tool
    country: str
    src_ips: Tuple[int, ...]          # one per shard
    ports: Tuple[int, ...]
    start: float                      # seconds from period start
    rate_pps: float                   # Internet-wide aggregate probe rate
    telescope_hits: int               # planned hits across all shards
    ipv4_coverage: float              # per-port fraction of IPv4 swept
    sequential: bool = False
    fingerprintable: bool = True      # ZMap IP-ID marking present?
    organisation: str = ""

    def __post_init__(self) -> None:
        if not self.src_ips:
            raise ValueError("campaign needs at least one source IP")
        if not self.ports:
            raise ValueError("campaign needs at least one port")
        if self.rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if self.telescope_hits < 0:
            raise ValueError("telescope_hits must be non-negative")
        if not 0.0 < self.ipv4_coverage <= 1.0:
            raise ValueError("ipv4_coverage must be in (0, 1]")

    @property
    def shards(self) -> int:
        return len(self.src_ips)

    @property
    def total_probes(self) -> float:
        """Internet-wide probes the campaign sends (all ports, all shards)."""
        return self.ipv4_coverage * IPV4_SPACE_SIZE * len(self.ports)

    @property
    def duration(self) -> float:
        """Seconds the campaign takes at its aggregate rate."""
        return self.total_probes / self.rate_pps

    @property
    def end(self) -> float:
        return self.start + self.duration


def _tool_model(spec: CampaignSpec, shard: int, rng: np.random.Generator) -> ScannerToolModel:
    """Instantiate the crafting model for one shard of a campaign."""
    if spec.tool == Tool.ZMAP:
        return ZMapModel(
            rng=rng,
            fingerprintable=spec.fingerprintable,
            shard=shard,
            shards=spec.shards,
        )
    if spec.tool == Tool.MASSCAN:
        return MasscanModel(rng=rng)
    if spec.tool == Tool.NMAP:
        return NMapModel(rng=rng)
    if spec.tool == Tool.MIRAI:
        return MiraiModel(rng=rng)
    if spec.tool == Tool.UNICORN:
        return UnicornModel(rng=rng)
    return CustomToolModel(rng=rng, sequential=spec.sequential)


def synthesize_campaign(
    spec: CampaignSpec,
    telescope: Telescope,
    rng: RandomState = None,
    period_end: Optional[float] = None,
) -> PacketBatch:
    """Materialise the telescope's view of ``spec``.

    The planned hit count is split evenly over shards (each shard covers an
    even slice of the target permutation); hit destinations are uniform over
    the telescope, ports cycle through the campaign's port set, and
    timestamps follow the tool's target ordering — uniform order statistics
    for permutation scanners, address-proportional sweep times for
    sequential ones.  Hits after ``period_end`` are censored, exactly like a
    real capture window would.
    """
    generator = as_generator(rng)
    if spec.telescope_hits == 0:
        return PacketBatch.empty()

    batches: List[PacketBatch] = []
    base_hits = spec.telescope_hits // spec.shards
    remainder = spec.telescope_hits - base_hits * spec.shards

    for shard, src_ip in enumerate(spec.src_ips):
        hits = base_hits + (1 if shard < remainder else 0)
        if hits == 0:
            continue
        dst = telescope.sample_destinations(generator, hits)
        ports = np.asarray(spec.ports, dtype=np.uint16)
        if ports.size == 1:
            dst_port = np.full(hits, ports[0], dtype=np.uint16)
        else:
            # Scanners iterate the (address, port) product, so telescope
            # hits cycle through the port set evenly; a random phase avoids
            # every campaign starting at the same port.
            phase = int(generator.integers(0, ports.size))
            dst_port = ports[(np.arange(hits) + phase) % ports.size]

        if spec.sequential:
            # A linear sweep reaches each address at a time proportional to
            # its position in the space; per-probe jitter is on network
            # timescales (tens of milliseconds), far below the time the
            # sweep needs to cross a /16.
            t = spec.start + (dst.astype(np.float64) / IPV4_SPACE_SIZE) * spec.duration
            t += generator.uniform(0, 0.005, size=hits)
        else:
            t = generator.uniform(spec.start, spec.end, size=hits)

        if period_end is not None:
            keep = t < period_end
            if not np.any(keep):
                continue
            dst, dst_port, t = dst[keep], dst_port[keep], t[keep]

        model = _tool_model(spec, shard, generator)
        fields = model.craft(dst, dst_port)
        n = dst.size
        batches.append(PacketBatch(
            time=t,
            src_ip=np.full(n, src_ip, dtype=np.uint32),
            dst_ip=dst,
            src_port=fields.src_port,
            dst_port=dst_port,
            ip_id=fields.ip_id,
            seq=fields.seq,
            ttl=fields.ttl,
            window=fields.window,
            flags=np.full(n, FLAG_SYN, dtype=np.uint8),
        ))

    return PacketBatch.concat(batches)


# -- bounded-Pareto hit sizing -------------------------------------------------


def bounded_pareto_mean(alpha: float, low: float, high: float) -> float:
    """Mean of a Pareto distribution truncated to ``[low, high]``."""
    if not low < high:
        raise ValueError("low must be < high")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if np.isclose(alpha, 1.0):
        # Limit form for alpha -> 1.
        return float(np.log(high / low) / (1.0 / low - 1.0 / high))
    ratio = (low / high) ** alpha
    return float(
        (alpha * low**alpha) / (1 - ratio)
        * (high ** (1 - alpha) - low ** (1 - alpha)) / (1 - alpha)
    )


def calibrate_pareto_bounds(
    alpha: float,
    target_mean: float,
    floor: float,
    cap: float,
) -> Tuple[float, float]:
    """Bounds of a bounded Pareto whose mean hits ``target_mean``.

    Prefers raising the lower bound above ``floor``; when the floor alone
    already overshoots the target (small budgets with a heavy tail), the
    upper bound is lowered instead.  Always returns ``floor <= low < high <=
    cap``.
    """
    if floor >= cap:
        raise ValueError("floor must be < cap")
    if target_mean <= 0:
        raise ValueError("target_mean must be positive")
    floor_mean = bounded_pareto_mean(alpha, floor, cap)
    if floor_mean <= target_mean:
        return solve_pareto_low(alpha, target_mean, cap, low_floor=floor), cap
    # Shrink the cap until the floor-anchored mean matches the target.
    lo, hi = floor * 1.001, cap
    for _ in range(80):
        mid = np.sqrt(lo * hi)
        if bounded_pareto_mean(alpha, floor, mid) > target_mean:
            hi = mid
        else:
            lo = mid
    return floor, float(np.sqrt(lo * hi))


def solve_pareto_low(
    alpha: float, target_mean: float, high: float, low_floor: float = 110.0
) -> float:
    """Find the lower bound of a bounded Pareto with the desired mean.

    Used by the world generator to auto-calibrate each cohort's campaign-size
    distribution so its packet budget is met in expectation (DESIGN.md §5).
    Falls back to the floor when even the floor overshoots the target (the
    generator then thins campaign sizes directly).
    """
    if target_mean <= low_floor:
        return low_floor
    lo, hi = low_floor, high * 0.999
    if bounded_pareto_mean(alpha, hi, high) < target_mean:
        return hi
    for _ in range(80):
        mid = np.sqrt(lo * hi)  # geometric bisection suits the scale
        if bounded_pareto_mean(alpha, mid, high) < target_mean:
            lo = mid
        else:
            hi = mid
    return float(np.sqrt(lo * hi))


def sample_bounded_pareto(
    rng: RandomState, alpha: float, low: float, high: float, size: int
) -> np.ndarray:
    """Inverse-CDF sampling of a bounded Pareto."""
    if not low < high:
        raise ValueError("low must be < high")
    generator = as_generator(rng)
    u = generator.random(size)
    la, ha = low**-alpha, high**-alpha
    return (la - u * (la - ha)) ** (-1.0 / alpha)
