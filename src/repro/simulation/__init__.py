"""Ecosystem simulator: the synthetic stand-in for the proprietary traces.

Generates per-year telescope captures whose aggregates are calibrated to the
paper's published numbers (see DESIGN.md §2 for the substitution argument).
"""

from repro.simulation.config import (
    ALL_YEARS,
    DEFAULT_MAX_PACKETS,
    DEFAULT_PERIOD_DAYS,
    CohortConfig,
    DisclosureEvent,
    InstitutionalActivity,
    ScaledYear,
    ShardingSpec,
    SpeedSpec,
    YearConfig,
    all_year_configs,
    year_config,
)
from repro.simulation.ports import (
    ALIAS_GROUPS,
    PortSelector,
    PortsPerScanModel,
    alias_ports_of,
)
from repro.simulation.campaigns import (
    CampaignSpec,
    bounded_pareto_mean,
    sample_bounded_pareto,
    solve_pareto_low,
    synthesize_campaign,
)
from repro.simulation.services import (
    DEFAULT_SERVICE_PREVALENCE,
    ServiceWorld,
    VerticalScanResult,
    vertical_scan,
)
from repro.simulation.backscatter import (
    AttackSpec,
    sample_attacks,
    synthesize_backscatter,
)
from repro.simulation.scenarios import (
    make_cohort,
    scenario_disclosure_storm,
    scenario_institutional_sky,
    scenario_sharded_sweep,
    scenario_single_botnet,
)
from repro.simulation.vantage import (
    observe_campaigns,
    rescale_campaign,
    second_vantage,
)
from repro.simulation.world import SimulationResult, TelescopeWorld

__all__ = [
    "ALL_YEARS",
    "DEFAULT_MAX_PACKETS",
    "DEFAULT_PERIOD_DAYS",
    "CohortConfig",
    "DisclosureEvent",
    "InstitutionalActivity",
    "ScaledYear",
    "ShardingSpec",
    "SpeedSpec",
    "YearConfig",
    "all_year_configs",
    "year_config",
    "ALIAS_GROUPS",
    "PortSelector",
    "PortsPerScanModel",
    "alias_ports_of",
    "CampaignSpec",
    "bounded_pareto_mean",
    "sample_bounded_pareto",
    "solve_pareto_low",
    "synthesize_campaign",
    "DEFAULT_SERVICE_PREVALENCE",
    "ServiceWorld",
    "VerticalScanResult",
    "vertical_scan",
    "AttackSpec",
    "sample_attacks",
    "synthesize_backscatter",
    "make_cohort",
    "scenario_disclosure_storm",
    "scenario_institutional_sky",
    "scenario_sharded_sweep",
    "scenario_single_botnet",
    "observe_campaigns",
    "rescale_campaign",
    "second_vantage",
    "SimulationResult",
    "TelescopeWorld",
]
