"""Port-selection models for simulated campaigns.

Three behaviours the paper measures are produced here:

* **Weighted port popularity** — each cohort draws its primary target port
  from a year-calibrated weight table, with a uniform tail over the rest of
  the port range (the tail grows over the years until "all ports receive more
  than 1,000 probes per day by 2022", §5.1).
* **Alias affinity** — multi-port scans preferentially add *alias ports* of
  the same protocol (80→8080, 443→8443, 22→2222, 23→2323 …).  The paper
  finds 18% of port-80 scans also probing 8080 in 2015, rising to 87% by
  2020 (§5.1) — the adoption parameter reproduces that trend.
* **Vertical scans** — rare campaigns sweeping hundreds to tens of thousands
  of ports (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro._util.validate import check_fraction, check_port

#: Protocol alias groups: primary port -> alternative ports commonly hosting
#: the same service (the "move it to a non-standard port" pattern of §5.1).
ALIAS_GROUPS: Dict[int, Tuple[int, ...]] = {
    80: (8080, 81, 8000, 8888),
    443: (8443, 1443, 4443),
    22: (2222, 2022, 22222),
    23: (2323, 23231),
    21: (2121,),
    3389: (3390, 33890),
    5900: (5901, 5902),
    1433: (14433,),
    3306: (33060,),
    6379: (6380,),
    5555: (5556,),
    8545: (8546,),
}


def alias_ports_of(port: int) -> Tuple[int, ...]:
    """Alias ports of ``port`` (empty when it has no known aliases)."""
    return ALIAS_GROUPS.get(port, ())


@dataclass(frozen=True)
class PortsPerScanModel:
    """Mixture model for the number of distinct ports per scan (Figure 3).

    Probabilities for the size classes; within a class the count is drawn
    log-uniformly.  ``p_single`` is the headline statistic the paper tracks
    (83% in 2015 → 65% in 2022).
    """

    p_single: float
    p_few: float        # 2–4 ports
    p_several: float    # 5–100 ports
    p_many: float       # 101–10,000 ports
    p_vertical: float   # >10,000 ports

    def __post_init__(self) -> None:
        total = self.p_single + self.p_few + self.p_several + self.p_many + self.p_vertical
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"ports-per-scan probabilities sum to {total}, not 1")
        for name in ("p_single", "p_few", "p_several", "p_many", "p_vertical"):
            check_fraction(name, getattr(self, name))

    _BOUNDS = ((1, 1), (2, 4), (5, 100), (101, 10_000), (10_001, 65_536))

    def sample_counts(self, rng: RandomState, size: int) -> np.ndarray:
        """Draw ``size`` ports-per-scan counts."""
        generator = as_generator(rng)
        probs = np.array(
            [self.p_single, self.p_few, self.p_several, self.p_many, self.p_vertical]
        )
        classes = generator.choice(5, size=size, p=probs)
        counts = np.empty(size, dtype=np.int64)
        for cls, (lo, hi) in enumerate(self._BOUNDS):
            mask = classes == cls
            n = int(mask.sum())
            if n == 0:
                continue
            if lo == hi:
                counts[mask] = lo
            else:
                # Log-uniform keeps small counts common within a class.
                logs = generator.uniform(np.log(lo), np.log(hi + 1), size=n)
                counts[mask] = np.minimum(np.exp(logs).astype(np.int64), hi)
        return counts


class PortSelector:
    """Draws the port sets of campaigns for one cohort in one year."""

    def __init__(
        self,
        port_weights: Mapping[int, float],
        tail_fraction: float = 0.0,
        tail_port_range: Tuple[int, int] = (1, 65535),
        alias_adoption: float = 0.0,
        rng: RandomState = None,
    ):
        """
        Args:
            port_weights: popularity weights of named ports.
            tail_fraction: probability mass assigned to a uniform tail over
                ``tail_port_range`` instead of the named ports.
            alias_adoption: probability that a multi-port scan whose primary
                port has aliases includes those aliases first (the 80→8080
                coupling of §5.1).
        """
        if not port_weights and tail_fraction <= 0:
            raise ValueError("need port weights or a positive tail fraction")
        check_fraction("tail_fraction", tail_fraction)
        check_fraction("alias_adoption", alias_adoption)
        lo, hi = tail_port_range
        check_port("tail_port_range[0]", lo)
        check_port("tail_port_range[1]", hi)
        if hi < lo:
            raise ValueError("tail_port_range must be (low, high)")
        self._ports = np.array(sorted(port_weights), dtype=np.int64)
        weights = np.array([port_weights[p] for p in self._ports], dtype=float)
        if np.any(weights < 0) or (weights.sum() <= 0 and tail_fraction < 1):
            raise ValueError("port weights must be non-negative and not all zero")
        self._probs = weights / weights.sum() if weights.sum() > 0 else weights
        self._tail_fraction = tail_fraction
        self._tail_range = (lo, hi)
        self._alias_adoption = alias_adoption
        self._rng = as_generator(rng)

    def sample_primary(self, size: int) -> np.ndarray:
        """Primary target port per campaign."""
        generator = self._rng
        out = np.empty(size, dtype=np.int64)
        tail = generator.random(size) < self._tail_fraction
        n_tail = int(tail.sum())
        if n_tail:
            lo, hi = self._tail_range
            out[tail] = generator.integers(lo, hi + 1, size=n_tail)
        n_named = size - n_tail
        if n_named:
            if self._ports.size == 0:
                lo, hi = self._tail_range
                out[~tail] = generator.integers(lo, hi + 1, size=n_named)
            else:
                out[~tail] = generator.choice(self._ports, size=n_named, p=self._probs)
        return out

    def sample_port_set(
        self, primary: int, count: int, force_alias: Optional[bool] = None
    ) -> np.ndarray:
        """Expand a primary port into a set of ``count`` distinct ports.

        Aliases of the primary are added first with probability
        ``alias_adoption`` (or deterministically when ``force_alias`` is
        set); the remainder is filled with popular ports and a random tail.
        For vertical scans (count beyond the named ports) a contiguous
        random window of the port range is used, mirroring how real vertical
        scans sweep ranges.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        primary = check_port("primary", primary)
        if count == 1:
            return np.array([primary], dtype=np.int64)
        chosen: List[int] = [primary]
        if count > 1000:
            # Vertical scan: primary plus a contiguous window.
            start = int(self._rng.integers(1, max(2, 65536 - count)))
            window = np.arange(start, start + count - 1, dtype=np.int64)
            ports = np.unique(np.concatenate([np.array([primary]), window]))[:count]
            return ports
        aliases = alias_ports_of(primary)
        include_aliases = (
            force_alias if force_alias is not None
            else self._rng.random() < self._alias_adoption
        )
        if aliases and include_aliases:
            chosen.extend(aliases[: count - 1])
        # The reachable pool may be smaller than ``count`` (few named ports,
        # no tail); bound the rejection sampling and top up with adjacent
        # ports, which is what small multi-port scans do in practice.
        attempts = 0
        while len(chosen) < count and attempts < 20 * count:
            extra = int(self.sample_primary(1)[0])
            attempts += 1
            if extra not in chosen:
                chosen.append(extra)
        offset = 1
        while len(chosen) < count:
            candidate = (primary + offset - 1) % 65535 + 1
            if candidate not in chosen:
                chosen.append(candidate)
            offset += 1
        return np.array(sorted(set(chosen))[:count], dtype=np.int64)
