"""Synthetic open-port / service model (§5.1's vertical-scan experiment).

The paper performs a complete vertical scan of 100,000 random IPv4 addresses
and compares the distribution of *open* ports against scanning intensities,
finding **no** relation (R = 0.047): scanners do not target the ports where
most services actually live.

This module provides the service-side world: a Zipf-like distribution of
which ports hold services, drawn independently of any scanning behaviour so
the non-correlation finding is reproducible by construction, plus a
:class:`VerticalScanner` that samples hosts the way the paper's probe did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro._util.validate import check_fraction, check_positive

#: Ports that commonly hold services, with relative prevalence.  Deliberately
#: *not* the scanning-weight tables: service density and scan intensity are
#: independent inputs, which is the point of §5.1's experiment.
DEFAULT_SERVICE_PREVALENCE: Dict[int, float] = {
    443: 30.0, 80: 28.0, 22: 14.0, 21: 6.0, 25: 6.0, 53: 5.0, 110: 3.0,
    143: 3.0, 993: 3.0, 995: 2.5, 587: 2.5, 8080: 2.0, 3306: 2.0,
    5432: 1.0, 8443: 1.5, 465: 1.2, 990: 0.4, 2222: 0.6, 8000: 0.8,
    8888: 0.5, 1723: 0.4, 500: 0.4, 5060: 0.5, 3389: 1.8, 5900: 0.7,
}


@dataclass(frozen=True)
class ServiceWorld:
    """A model of which (host, port) pairs expose a service.

    ``host_service_rate`` is the expected number of open ports per reachable
    host; ``reachable_fraction`` the fraction of probed addresses that are
    responsive at all.  Services on a responsive host are distributed over
    ports by ``prevalence`` with a small uniform tail (services on entirely
    unexpected ports — the LZR observation that only 3% of HTTP sits on
    port 80).
    """

    prevalence: Mapping[int, float]
    reachable_fraction: float = 0.08
    host_service_rate: float = 1.8
    offport_tail: float = 0.10

    def __post_init__(self) -> None:
        check_fraction("reachable_fraction", self.reachable_fraction)
        check_positive("host_service_rate", self.host_service_rate)
        check_fraction("offport_tail", self.offport_tail)
        if not self.prevalence:
            raise ValueError("prevalence must not be empty")

    @classmethod
    def default(cls) -> "ServiceWorld":
        return cls(prevalence=dict(DEFAULT_SERVICE_PREVALENCE))

    def sample_open_ports(
        self, rng: RandomState, n_hosts: int
    ) -> List[np.ndarray]:
        """Open-port sets for ``n_hosts`` random addresses.

        Unreachable hosts yield empty arrays.
        """
        generator = as_generator(rng)
        ports = np.array(sorted(self.prevalence), dtype=np.int64)
        weights = np.array([self.prevalence[p] for p in ports], dtype=float)
        probs = weights / weights.sum()
        out: List[np.ndarray] = []
        reachable = generator.random(n_hosts) < self.reachable_fraction
        counts = generator.poisson(self.host_service_rate, size=n_hosts)
        for is_up, count in zip(reachable, counts):
            if not is_up or count == 0:
                out.append(np.array([], dtype=np.int64))
                continue
            chosen = set()
            for _ in range(int(count)):
                if generator.random() < self.offport_tail:
                    chosen.add(int(generator.integers(1, 65536)))
                else:
                    chosen.add(int(generator.choice(ports, p=probs)))
            out.append(np.array(sorted(chosen), dtype=np.int64))
        return out


@dataclass(frozen=True)
class VerticalScanResult:
    """Outcome of a synthetic complete vertical scan."""

    hosts_probed: int
    open_port_counts: Dict[int, int]

    def density(self) -> Dict[int, float]:
        """Open-service density per port (fraction of probed hosts)."""
        return {p: c / self.hosts_probed for p, c in self.open_port_counts.items()}


def vertical_scan(
    world: ServiceWorld, n_hosts: int = 100_000, rng: RandomState = None
) -> VerticalScanResult:
    """Probe all 65,536 ports on ``n_hosts`` random addresses (simulated).

    Mirrors the paper's §5.1 ground-truth experiment: the result is the
    per-port count of open services in the sample.
    """
    if n_hosts <= 0:
        raise ValueError("n_hosts must be positive")
    open_sets = world.sample_open_ports(rng, n_hosts)
    counts: Dict[int, int] = {}
    for ports in open_sets:
        for port in ports.tolist():
            counts[port] = counts.get(port, 0) + 1
    return VerticalScanResult(hosts_probed=n_hosts, open_port_counts=counts)
