"""Backscatter generation — the *other* kind of darknet traffic.

A telescope receives two things (paper §3.2): scan probes, and **Internet
backscatter** — the responses of DDoS victims to attack packets whose source
addresses were spoofed uniformly over IPv4, a fraction of which land in the
telescope's space (Moore et al.'s classic backscatter technique).  The paper
separates the two by keeping only pure-SYN frames, noting that by now 98 %
of unsolicited TCP traffic consists of SYN scans.

This module generates the backscatter side so the sensor's separation logic
is exercised end-to-end: victims under randomly spoofed SYN floods emit
SYN/ACKs (open service) or RSTs (closed port) back towards the spoofed
addresses, a telescope-share of which is captured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro._util.validate import check_fraction, check_positive
from repro.enrichment.registry import InternetRegistry
from repro.telescope.packet import FLAG_ACK, FLAG_RST, FLAG_SYN, PacketBatch
from repro.telescope.sensor import Telescope

#: Services typically hit by SYN floods, with relative weights.
ATTACKED_SERVICE_WEIGHTS: Tuple[Tuple[int, float], ...] = (
    (80, 30.0), (443, 25.0), (53, 10.0), (25, 5.0), (22, 5.0),
    (6667, 3.0), (8080, 5.0), (27015, 4.0), (25565, 4.0), (3074, 3.0),
)

#: Share of victim responses that are SYN/ACKs (service open and answering)
#: versus RSTs (port closed / SYN cookies exhausted).
SYNACK_SHARE = 0.7


@dataclass(frozen=True)
class AttackSpec:
    """One spoofed-source DoS attack, as seen through its backscatter."""

    victim_ip: int
    service_port: int
    start: float
    duration: float
    telescope_hits: int


def sample_attacks(
    registry: InternetRegistry,
    budget_packets: float,
    period: float,
    rng: RandomState = None,
    mean_hits_per_attack: float = 400.0,
) -> List[AttackSpec]:
    """Draw a period's worth of attacks totalling ``budget_packets`` hits.

    Attack sizes are heavy-tailed (a few large floods dominate, as in the
    backscatter literature); victims are arbitrary registry addresses.
    """
    check_positive("period", period)
    generator = as_generator(rng)
    if budget_packets < 1:
        return []
    n_attacks = max(1, int(budget_packets / mean_hits_per_attack))
    raw = generator.pareto(1.2, size=n_attacks) + 1.0
    sizes = np.maximum(1, (raw / raw.sum() * budget_packets).astype(np.int64))

    ports = np.array([p for p, _ in ATTACKED_SERVICE_WEIGHTS], dtype=np.int64)
    weights = np.array([w for _, w in ATTACKED_SERVICE_WEIGHTS], dtype=float)
    weights /= weights.sum()
    chosen_ports = generator.choice(ports, size=n_attacks, p=weights)

    victims = registry.sample_addresses(generator, n_attacks)
    starts = generator.uniform(0.0, period, size=n_attacks)
    durations = generator.lognormal(np.log(1800.0), 1.0, size=n_attacks)

    return [
        AttackSpec(
            victim_ip=int(victims[i]),
            service_port=int(chosen_ports[i]),
            start=float(starts[i]),
            duration=float(min(durations[i], period - starts[i] + 1.0)),
            telescope_hits=int(sizes[i]),
        )
        for i in range(n_attacks)
    ]


def synthesize_backscatter(
    attacks: Sequence[AttackSpec],
    telescope: Telescope,
    rng: RandomState = None,
    period_end: Optional[float] = None,
) -> PacketBatch:
    """Materialise the telescope's view of the attacks' backscatter.

    For each attack, the victim answers spoofed SYNs whose forged sources
    were uniform over IPv4 — the responses landing in the telescope go to
    uniform monitored addresses.  Responses come *from* the attacked
    service port with SYN/ACK or RST flags; the "client" port and the
    acknowledged sequence number are whatever the attacker forged, i.e.
    random.
    """
    generator = as_generator(rng)
    total = int(sum(a.telescope_hits for a in attacks))
    if total == 0:
        return PacketBatch.empty()

    times = np.empty(total)
    src_ip = np.empty(total, dtype=np.uint32)
    src_port = np.empty(total, dtype=np.uint16)
    flags = np.empty(total, dtype=np.uint8)
    cursor = 0
    for attack in attacks:
        n = attack.telescope_hits
        sl = slice(cursor, cursor + n)
        times[sl] = generator.uniform(
            attack.start, attack.start + max(attack.duration, 1.0), size=n
        )
        src_ip[sl] = attack.victim_ip
        src_port[sl] = attack.service_port
        synack = generator.random(n) < SYNACK_SHARE
        flags[sl] = np.where(synack, FLAG_SYN | FLAG_ACK, FLAG_RST | FLAG_ACK)
        cursor += n

    if period_end is not None:
        keep = times < period_end
        times, src_ip, src_port, flags = (
            times[keep], src_ip[keep], src_port[keep], flags[keep]
        )
    n = times.size
    return PacketBatch(
        time=times,
        src_ip=src_ip,
        dst_ip=telescope.sample_destinations(generator, n),
        src_port=src_port,
        dst_port=generator.integers(1024, 65535, size=n, dtype=np.uint16),
        ip_id=generator.integers(0, 2**16, size=n, dtype=np.uint16),
        seq=generator.integers(0, 2**32, size=n, dtype=np.uint32),
        ttl=generator.integers(38, 120, size=n).astype(np.uint8),
        window=generator.integers(1024, 65535, size=n, dtype=np.uint16),
        flags=flags,
    )
