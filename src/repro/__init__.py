"""repro — reproduction of *Have you SYN me? Characterizing Ten Years of
Internet Scanning* (Griffioen, Koursiounis, Smaragdakis & Doerr, IMC 2024).

The package splits into:

* :mod:`repro.telescope` — the darknet measurement substrate (packets,
  address space, sensor, trace IO);
* :mod:`repro.scanners` — wire-behaviour models of the scanning tools the
  paper fingerprints (ZMap, Masscan, NMap, Mirai, Unicorn);
* :mod:`repro.simulation` — the calibrated ecosystem simulator standing in
  for the proprietary ten-year traces;
* :mod:`repro.enrichment` — synthetic registry, known-scanner feed and the
  Appendix-A ETL;
* :mod:`repro.core` — the paper's analysis pipeline (campaign
  identification, tool fingerprinting, and every evaluation analysis);
* :mod:`repro.reporting` — table renderers and figure-series extraction.

Quickstart::

    from repro import TelescopeWorld, analyze_simulation, summarize_period

    world = TelescopeWorld(rng=7)
    sim = world.simulate_year(2020, days=14, max_packets=200_000)
    analysis = analyze_simulation(sim)
    print(summarize_period(analysis))
"""

from repro.core import (
    CampaignCriteria,
    PeriodAnalysis,
    ScanTable,
    ToolFingerprinter,
    analyze_period,
    analyze_simulation,
    identify_scans,
    summarize_period,
)
from repro.enrichment import (
    InternetRegistry,
    KnownScannerFeed,
    ScannerClassifier,
    ScannerType,
    build_default_registry,
)
from repro.scanners import Tool
from repro.simulation import (
    ALL_YEARS,
    SimulationResult,
    TelescopeWorld,
    year_config,
)
from repro.telescope import (
    PacketBatch,
    SynPacket,
    Telescope,
    read_trace,
    write_trace,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignCriteria",
    "PeriodAnalysis",
    "ScanTable",
    "ToolFingerprinter",
    "analyze_period",
    "analyze_simulation",
    "identify_scans",
    "summarize_period",
    "InternetRegistry",
    "KnownScannerFeed",
    "ScannerClassifier",
    "ScannerType",
    "build_default_registry",
    "Tool",
    "ALL_YEARS",
    "SimulationResult",
    "TelescopeWorld",
    "year_config",
    "PacketBatch",
    "SynPacket",
    "Telescope",
    "read_trace",
    "write_trace",
    "__version__",
]
