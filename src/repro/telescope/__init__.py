"""Network telescope substrate: packets, address space, sensor and trace IO.

This package models the measurement infrastructure of the paper's Section 3.2:
a darknet built from partially populated /16 blocks, an ingress policy, and a
column-oriented trace format for captured SYN probes.
"""

from repro.telescope.addresses import (
    IPV4_SPACE_SIZE,
    AddressSet,
    CidrBlock,
    int_to_ip,
    ip_to_int,
    slash16_of,
    slash24_of,
)
from repro.telescope.packet import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    FLAG_URG,
    PacketBatch,
    SynPacket,
)
from repro.telescope.sensor import (
    DEFAULT_BLOCKED_PORTS,
    INGRESS_BLOCK_SINCE_YEAR,
    PAPER_TELESCOPE_SIZE,
    IngressPolicy,
    ObservationStats,
    Telescope,
    coverage_estimate,
    detection_probability,
    hit_probability_per_probe,
    internet_wide_rate,
    time_to_detection,
)
from repro.telescope.anonymize import (
    PrefixPreservingAnonymizer,
    shared_prefix_length,
)
from repro.telescope.pcap import (
    PcapFormatError,
    iter_pcap,
    read_pcap,
    write_pcap,
)
from repro.telescope.trace import (
    MappedTraceReader,
    TraceFormatError,
    TraceIndex,
    TraceReader,
    TraceWriter,
    iter_trace,
    mmap_supported,
    open_trace_reader,
    read_trace,
    read_trace_meta,
    write_trace,
)

__all__ = [
    "IPV4_SPACE_SIZE",
    "AddressSet",
    "CidrBlock",
    "int_to_ip",
    "ip_to_int",
    "slash16_of",
    "slash24_of",
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "FLAG_URG",
    "PacketBatch",
    "SynPacket",
    "DEFAULT_BLOCKED_PORTS",
    "INGRESS_BLOCK_SINCE_YEAR",
    "PAPER_TELESCOPE_SIZE",
    "IngressPolicy",
    "ObservationStats",
    "Telescope",
    "coverage_estimate",
    "detection_probability",
    "hit_probability_per_probe",
    "internet_wide_rate",
    "time_to_detection",
    "PrefixPreservingAnonymizer",
    "shared_prefix_length",
    "PcapFormatError",
    "iter_pcap",
    "read_pcap",
    "write_pcap",
    "MappedTraceReader",
    "TraceFormatError",
    "TraceIndex",
    "TraceReader",
    "TraceWriter",
    "iter_trace",
    "mmap_supported",
    "open_trace_reader",
    "read_trace",
    "read_trace_meta",
    "write_trace",
]
