"""Prefix-preserving address anonymisation (Crypto-PAn style).

Sharing telescope captures requires anonymising source addresses without
destroying the structure the analyses depend on: two addresses sharing a
k-bit prefix must still share a k-bit prefix after anonymisation, so
/16-volatility, /24-collaboration and AS-level aggregations survive.

The classic construction (Xu et al., Crypto-PAn) decides each output bit
from a keyed PRF of the input's prefix up to that bit::

    out_bit_i = in_bit_i XOR f_key(in_bits_0..i-1)

which is exactly what :class:`PrefixPreservingAnonymizer` implements, with a
64-bit multiply-xor PRF standing in for AES (this is a research tool, not a
cryptographic boundary — see the class docstring).  The map is a bijection
on the IPv4 space, deterministic per key, and prefix-preserving by
construction; all three properties are pinned by property-based tests.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.telescope.packet import PacketBatch

_MASK64 = (1 << 64) - 1


class PrefixPreservingAnonymizer:
    """Deterministic, bijective, prefix-preserving IPv4 anonymiser.

    Security note: the PRF is a keyed integer mix, not AES.  It protects
    shared research data against casual re-identification, matching how the
    construction is used here (tests, examples, data exchange between
    simulation runs); do not treat it as resistant to a motivated
    cryptographic adversary.
    """

    #: Addresses processed per block in :meth:`anonymize`; bounds the
    #: (32, chunk) round matrices to a few megabytes regardless of input size.
    _CHUNK = 1 << 16

    def __init__(self, key: int):
        if not 0 <= key < 2**64:
            raise ValueError("key must be a 64-bit integer")
        self._key = np.uint64(key)
        with np.errstate(over="ignore"):
            self._round_constants = np.arange(32, dtype=np.uint64) * np.uint64(
                0x9E3779B97F4A7C15
            )

    def _prf_bit(self, prefixes: np.ndarray, bit_index: int) -> np.ndarray:
        """One pseudorandom bit per row, keyed on (prefix, bit position).

        ``prefixes`` holds the high ``bit_index`` bits of each address,
        right-aligned (the canonical Crypto-PAn prefix encoding).
        """
        round_constant = np.uint64((bit_index * 0x9E3779B97F4A7C15) & _MASK64)
        mixed = prefixes.astype(np.uint64)
        mixed ^= self._key
        mixed ^= round_constant
        # uint64 arithmetic wraps; silence numpy's overflow chatter locally.
        with np.errstate(over="ignore"):
            mixed = mixed * np.uint64(0xFF51AFD7ED558CCD)
            mixed ^= mixed >> np.uint64(33)
            mixed = mixed * np.uint64(0xC4CEB9FE1A85EC53)
        return ((mixed >> np.uint64(63)) & np.uint64(1)).astype(np.uint32)

    def _anonymize_chunk(self, addresses: np.ndarray) -> np.ndarray:
        """All 32 PRF rounds of one flat uint32 block as a (32, n) pass.

        Round ``i``'s PRF input is the *plaintext* prefix of the high ``i``
        bits — it never depends on earlier rounds' outputs — so the round
        loop of :meth:`_prf_bit` unrolls into broadcast arithmetic: build
        every prefix with one shift, mix them all at once, and XOR the
        assembled flip mask into the input.
        """
        addr64 = addresses.astype(np.uint64)
        shifts = np.uint64(32) - np.arange(32, dtype=np.uint64)
        prefixes = addr64[None, :] >> shifts[:, None]
        mixed = prefixes ^ self._key ^ self._round_constants[:, None]
        with np.errstate(over="ignore"):
            mixed *= np.uint64(0xFF51AFD7ED558CCD)
            mixed ^= mixed >> np.uint64(33)
            mixed *= np.uint64(0xC4CEB9FE1A85EC53)
        flips = (mixed >> np.uint64(63)).astype(np.uint32)
        out_shifts = np.uint32(31) - np.arange(32, dtype=np.uint32)
        mask = np.bitwise_or.reduce(flips << out_shifts[:, None], axis=0)
        return addresses ^ mask

    def anonymize(self, addresses: np.ndarray) -> np.ndarray:
        """Anonymise a uint32 address array (vectorised, 32 PRF rounds)."""
        addresses = np.asarray(addresses, dtype=np.uint32)
        flat = addresses.reshape(-1)
        out = np.empty_like(flat)
        for start in range(0, flat.size, self._CHUNK):
            block = slice(start, start + self._CHUNK)
            out[block] = self._anonymize_chunk(flat[block])
        return out.reshape(addresses.shape)

    def anonymize_one(self, address: int) -> int:
        """Anonymise a single address."""
        return int(self.anonymize(np.array([address], dtype=np.uint32))[0])

    def anonymize_batch(
        self, batch: PacketBatch, sources_only: bool = True
    ) -> PacketBatch:
        """Anonymise a capture's addresses.

        By default only source addresses are rewritten — destination
        addresses are the telescope's own (already public) space and the
        coverage analyses depend on their true values.  Pass
        ``sources_only=False`` to rewrite both sides.
        """
        cols = batch.columns()
        cols["src_ip"] = self.anonymize(cols["src_ip"])
        if not sources_only:
            cols["dst_ip"] = self.anonymize(cols["dst_ip"])
        return PacketBatch(**cols)


def shared_prefix_length(a: Union[int, np.ndarray], b: Union[int, np.ndarray]):
    """Length of the common bit-prefix of two addresses (or arrays)."""
    diff = np.bitwise_xor(np.uint32(a), np.uint32(b)).astype(np.uint32)
    if np.ndim(diff) == 0:
        return 32 if diff == 0 else 31 - int(diff).bit_length() + 1
    out = np.full(diff.shape, 32, dtype=np.int64)
    nonzero = diff != 0
    # bit_length via log2 on the nonzero entries.
    out[nonzero] = 31 - np.floor(np.log2(diff[nonzero].astype(np.float64))).astype(np.int64)
    return out
