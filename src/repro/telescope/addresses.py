"""IPv4 address arithmetic.

Addresses are represented as unsigned 32-bit integers throughout the library
(vectorisable with numpy); this module provides parsing, formatting and CIDR
block handling on top of that representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

IPV4_SPACE_SIZE = 2**32

IPLike = Union[int, str]


def ip_to_int(address: IPLike) -> int:
    """Parse a dotted-quad string (or pass through an int) into a uint32."""
    if isinstance(address, (int, np.integer)):
        value = int(address)
        if not 0 <= value < IPV4_SPACE_SIZE:
            raise ValueError(f"IPv4 integer out of range: {value}")
        return value
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address: {address!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a uint32 as a dotted-quad string."""
    value = int(value)
    if not 0 <= value < IPV4_SPACE_SIZE:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def slash16_of(addresses: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
    """The /16 netblock index (upper 16 bits) of one or many addresses.

    The paper's volatility analysis (Figure 2) aggregates scanning sources by
    their /16 netblock.
    """
    return np.right_shift(addresses, 16) if isinstance(addresses, np.ndarray) else int(addresses) >> 16


def slash24_of(addresses: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
    """The /24 netblock index (upper 24 bits) of one or many addresses."""
    return np.right_shift(addresses, 8) if isinstance(addresses, np.ndarray) else int(addresses) >> 8


@dataclass(frozen=True)
class CidrBlock:
    """A CIDR prefix, e.g. ``203.0.0.0/16``.

    Attributes:
        network: integer value of the network address (low bits must be 0).
        prefix_len: number of leading network bits (0–32).
    """

    network: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if not 0 <= self.network < IPV4_SPACE_SIZE:
            raise ValueError(f"network address out of range: {self.network}")
        if self.network & (self.size - 1):
            raise ValueError(
                f"network {int_to_ip(self.network)} has host bits set for /{self.prefix_len}"
            )

    @classmethod
    def parse(cls, text: str) -> "CidrBlock":
        """Parse ``'a.b.c.d/len'`` notation."""
        try:
            addr, length = text.split("/")
        except ValueError:
            raise ValueError(f"malformed CIDR: {text!r}") from None
        return cls(ip_to_int(addr), int(length))

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.prefix_len)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network + self.size - 1

    def __contains__(self, address: IPLike) -> bool:
        value = ip_to_int(address)
        return self.first <= value <= self.last

    def contains_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised membership test over a uint32 array."""
        return (addresses >= self.first) & (addresses <= self.last)

    def addresses(self) -> np.ndarray:
        """All addresses in the block as a uint32 array (careful with /0!)."""
        if self.prefix_len < 8:
            raise ValueError("refusing to materialise a block larger than /8")
        return np.arange(self.first, self.last + 1, dtype=np.uint32)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample ``count`` addresses uniformly (with replacement)."""
        return rng.integers(self.first, self.last + 1, size=count, dtype=np.uint32)

    def overlap(self, other: "CidrBlock") -> int:
        """Number of addresses shared with ``other``."""
        lo = max(self.first, other.first)
        hi = min(self.last, other.last)
        return max(0, hi - lo + 1)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix_len}"


class AddressSet:
    """An arbitrary set of IPv4 addresses with fast vectorised membership.

    Used to model a *partially populated* telescope: the monitored addresses
    are a subset of the announced blocks (live hosts are excluded).
    """

    def __init__(self, addresses: Iterable[int]):
        arr = np.asarray(sorted(set(int(a) for a in addresses)), dtype=np.uint32)
        if arr.size and (int(arr[-1]) >= IPV4_SPACE_SIZE):
            raise ValueError("address out of IPv4 range")
        self._addresses = arr

    @classmethod
    def from_blocks(
        cls,
        blocks: Sequence[CidrBlock],
        population: float = 1.0,
        rng: "np.random.Generator | None" = None,
    ) -> "AddressSet":
        """Build from CIDR blocks, keeping a ``population`` fraction of each.

        ``population < 1`` models partially populated telescope ranges: a
        random subset of each block is monitored, the rest is assumed to host
        live services and is excluded.
        """
        if not 0.0 < population <= 1.0:
            raise ValueError("population must be in (0, 1]")
        chunks: List[np.ndarray] = []
        for block in blocks:
            addrs = block.addresses()
            if population < 1.0:
                if rng is None:
                    raise ValueError("population < 1 requires an rng")
                keep = max(1, int(round(addrs.size * population)))
                addrs = rng.choice(addrs, size=keep, replace=False)
            chunks.append(addrs)
        merged = np.concatenate(chunks) if chunks else np.array([], dtype=np.uint32)
        return cls(merged)

    @property
    def addresses(self) -> np.ndarray:
        """Sorted uint32 array of member addresses (do not mutate)."""
        return self._addresses

    def __len__(self) -> int:
        return int(self._addresses.size)

    def __iter__(self) -> Iterator[int]:
        return iter(int(a) for a in self._addresses)

    def __contains__(self, address: IPLike) -> bool:
        value = ip_to_int(address)
        idx = np.searchsorted(self._addresses, value)
        return bool(idx < self._addresses.size and self._addresses[idx] == value)

    def contains_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised membership over a uint32 array."""
        idx = np.searchsorted(self._addresses, addresses)
        idx = np.clip(idx, 0, max(0, self._addresses.size - 1))
        if self._addresses.size == 0:
            return np.zeros(addresses.shape, dtype=bool)
        return self._addresses[idx] == addresses

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample ``count`` member addresses uniformly with replacement."""
        if len(self) == 0:
            raise ValueError("cannot sample from an empty address set")
        idx = rng.integers(0, self._addresses.size, size=count)
        return self._addresses[idx]

    def overlap_fraction_of_space(self) -> float:
        """Fraction of the full IPv4 space covered by this set."""
        return self._addresses.size / IPV4_SPACE_SIZE
