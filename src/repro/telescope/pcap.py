"""PCAP interoperability.

Real telescopes capture raw frames into libpcap files; this module writes
and reads classic pcap (magic ``0xa1b2c3d4``, microsecond timestamps,
LINKTYPE_ETHERNET) so synthetic captures can be inspected with tcpdump or
Wireshark, and so externally captured SYN traffic can be fed into the
analysis pipeline.

Each :class:`~repro.telescope.packet.SynPacket` becomes a minimal
Ethernet/IPv4/TCP frame (54 bytes on the wire): the fields the analysis
needs — addresses, ports, IP identification, TCP sequence number, TTL,
window, flags — are encoded in their real header positions, with correct
IPv4 header checksums. Reading tolerates (and skips) non-TCP frames and
both pcap endiannesses.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.telescope.packet import PacketBatch, SynPacket

PathLike = Union[str, Path]

PCAP_MAGIC_LE = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETH_HEADER = struct.Struct("!6s6sH")
_ETHERTYPE_IPV4 = 0x0800
_IP_PROTO_TCP = 6

#: Synthetic MAC addresses for the Ethernet layer.
_SRC_MAC = bytes.fromhex("020000000001")
_DST_MAC = bytes.fromhex("020000000002")


class PcapFormatError(ValueError):
    """Raised on malformed or unsupported pcap input."""


def _ipv4_checksum(header: bytes) -> int:
    """RFC 1071 ones'-complement checksum over an IPv4 header."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _build_frame(packet: SynPacket) -> bytes:
    """Serialise one packet as an Ethernet/IPv4/TCP frame."""
    tcp = struct.pack(
        "!HHIIBBHHH",
        packet.src_port,
        packet.dst_port,
        packet.seq,
        0,                       # ack number
        5 << 4,                  # data offset: 5 words
        packet.flags,
        packet.window,
        0,                       # checksum left zero (no payload either way)
        0,                       # urgent pointer
    )
    total_length = 20 + len(tcp)
    ip_wo_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        0x45,                    # version 4, IHL 5
        0,
        total_length,
        packet.ip_id,
        0,                       # flags/fragment
        packet.ttl,
        _IP_PROTO_TCP,
        0,                       # checksum placeholder
        struct.pack("!I", packet.src_ip),
        struct.pack("!I", packet.dst_ip),
    )
    checksum = _ipv4_checksum(ip_wo_checksum)
    ip = ip_wo_checksum[:10] + struct.pack("!H", checksum) + ip_wo_checksum[12:]
    eth = _ETH_HEADER.pack(_DST_MAC, _SRC_MAC, _ETHERTYPE_IPV4)
    return eth + ip + tcp


def write_pcap(path: PathLike, batch: PacketBatch) -> int:
    """Write a batch as a classic pcap file; returns frames written."""
    with open(path, "wb") as handle:
        handle.write(_GLOBAL_HEADER.pack(
            PCAP_MAGIC_LE, 2, 4, 0, 0, 65535, LINKTYPE_ETHERNET
        ))
        for packet in batch:
            frame = _build_frame(packet)
            seconds = int(packet.time)
            micros = int(round((packet.time - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            handle.write(_RECORD_HEADER.pack(seconds, micros,
                                             len(frame), len(frame)))
            handle.write(frame)
    return len(batch)


def _parse_frame(data: bytes, time: float) -> Optional[SynPacket]:
    """Parse one captured frame; ``None`` for anything that is not
    Ethernet/IPv4/TCP."""
    if len(data) < 14:
        return None
    ethertype = struct.unpack("!H", data[12:14])[0]
    if ethertype != _ETHERTYPE_IPV4:
        return None
    ip = data[14:]
    if len(ip) < 20 or (ip[0] >> 4) != 4:
        return None
    ihl = (ip[0] & 0x0F) * 4
    if len(ip) < ihl + 20 or ip[9] != _IP_PROTO_TCP:
        return None
    ip_id, = struct.unpack("!H", ip[4:6])
    ttl = ip[8]
    src_ip, = struct.unpack("!I", ip[12:16])
    dst_ip, = struct.unpack("!I", ip[16:20])
    tcp = ip[ihl:]
    src_port, dst_port, seq = struct.unpack("!HHI", tcp[0:8])
    flags = tcp[13]
    window, = struct.unpack("!H", tcp[14:16])
    return SynPacket(
        time=time, src_ip=src_ip, dst_ip=dst_ip,
        src_port=src_port, dst_port=dst_port,
        ip_id=ip_id, seq=seq, ttl=ttl, window=window, flags=flags,
    )


def iter_pcap(path: PathLike) -> Iterator[SynPacket]:
    """Iterate the TCP packets of a pcap file (non-TCP frames skipped)."""
    with open(path, "rb") as handle:
        header = handle.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapFormatError(f"truncated pcap header: {path}")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC_LE:
            endian = "<"
        elif magic == struct.unpack(">I", struct.pack("<I", PCAP_MAGIC_LE))[0]:
            endian = ">"
        else:
            raise PcapFormatError(f"bad pcap magic {magic:#010x}: {path}")
        record = struct.Struct(endian + "IIII")
        while True:
            raw = handle.read(record.size)
            if not raw:
                return
            if len(raw) < record.size:
                raise PcapFormatError(f"truncated pcap record header: {path}")
            seconds, micros, caplen, _origlen = record.unpack(raw)
            data = handle.read(caplen)
            if len(data) < caplen:
                raise PcapFormatError(f"truncated pcap frame: {path}")
            packet = _parse_frame(data, seconds + micros / 1e6)
            if packet is not None:
                yield packet


def read_pcap(path: PathLike) -> PacketBatch:
    """Read all TCP packets of a pcap file into a batch."""
    return PacketBatch.from_packets(iter_pcap(path))
