"""Packet records.

Two representations coexist:

* :class:`SynPacket` — a frozen dataclass for single-packet code paths and
  tests; readable but slow.
* :class:`PacketBatch` — a numpy column store holding millions of packets;
  the workhorse of the simulator and the analysis pipeline.

Only the header fields the paper's methodology touches are modelled: the
timestamp, the IPv4 addresses, TCP ports, the IP Identification field, the TCP
sequence number, TTL, window size and TCP flags.  Fingerprinting (Section 3.3
of the paper) operates exclusively on these.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro._util.validate import check_header_field
from repro.telescope.addresses import int_to_ip

# TCP control-bit masks (RFC 793).
FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20

#: Wire widths (bits) of the modelled integer header fields; the single
#: source of truth for both runtime validation and the RPR003 lint rule.
_FIELD_BITS = {
    "src_ip": 32,
    "dst_ip": 32,
    "seq": 32,
    "src_port": 16,
    "dst_port": 16,
    "ip_id": 16,
    "window": 16,
    "ttl": 8,
    "flags": 8,
}

#: Columns of the batch store, in serialisation order.
_COLUMNS = (
    ("time", np.float64),
    ("src_ip", np.uint32),
    ("dst_ip", np.uint32),
    ("src_port", np.uint16),
    ("dst_port", np.uint16),
    ("ip_id", np.uint16),
    ("seq", np.uint32),
    ("ttl", np.uint8),
    ("window", np.uint16),
    ("flags", np.uint8),
)


@dataclass(frozen=True)
class SynPacket:
    """A single observed TCP packet (header subset).

    Despite the name the flags field may encode any combination; the sensor
    filters to pure SYN when separating scans from backscatter.
    """

    time: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    ip_id: int = 0
    seq: int = 0
    ttl: int = 64
    window: int = 65535
    flags: int = FLAG_SYN

    def __post_init__(self) -> None:
        for name, bits in _FIELD_BITS.items():
            check_header_field(name, getattr(self, name), bits)

    @property
    def is_syn_only(self) -> bool:
        """True when only the SYN control bit is set (a scan probe)."""
        return self.flags == FLAG_SYN

    @property
    def is_backscatter(self) -> bool:
        """True for SYN/ACK or RST frames — responses to spoofed attacks."""
        return bool(self.flags & (FLAG_ACK | FLAG_RST)) and not self.is_syn_only

    def describe(self) -> str:
        """Human-readable one-liner, e.g. for example scripts."""
        return (
            f"{self.time:12.3f}  {int_to_ip(self.src_ip)}:{self.src_port}"
            f" -> {int_to_ip(self.dst_ip)}:{self.dst_port}"
            f"  ipid={self.ip_id} seq={self.seq:#010x} flags={self.flags:#04x}"
        )


class PacketBatch:
    """Column-oriented packet store.

    All columns are numpy arrays of equal length; the batch is immutable
    (operations return new batches sharing or copying arrays, never mutating
    in place), which keeps analysis code free of aliasing bugs.  The
    invariant is enforced both statically (lint rule RPR004) and at runtime:
    the batch holds non-writeable views, so ``batch.ttl[0] = 1`` raises
    ``ValueError``.  Callers that handed arrays to the constructor keep
    their own writable references — freezing protects against mutation
    *through the batch*, it does not snapshot shared buffers.
    """

    __slots__ = ("_cols",)

    def __init__(self, **columns: np.ndarray):
        missing = [name for name, _ in _COLUMNS if name not in columns]
        extra = [name for name in columns if name not in dict(_COLUMNS)]
        if missing:
            raise ValueError(f"missing columns: {missing}")
        if extra:
            raise ValueError(f"unknown columns: {extra}")
        cols: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for name, dtype in _COLUMNS:
            arr = np.asarray(columns[name], dtype=dtype)
            if arr.ndim != 1:
                raise ValueError(f"column {name} must be 1-D")
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise ValueError(
                    f"column {name} has length {arr.size}, expected {length}"
                )
            # Hold a non-writeable view so the immutability invariant is a
            # runtime guarantee, not a convention (the caller's own
            # reference, if any, keeps its original flags).
            frozen = arr.view()
            frozen.setflags(write=False)
            cols[name] = frozen
        self._cols = cols

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "PacketBatch":
        """A batch with zero packets."""
        return cls(**{name: np.array([], dtype=dt) for name, dt in _COLUMNS})

    @classmethod
    def from_packets(cls, packets: Iterable[SynPacket]) -> "PacketBatch":
        """Build a batch from individual :class:`SynPacket` records."""
        items = list(packets)
        return cls(
            time=np.array([p.time for p in items], dtype=np.float64),
            src_ip=np.array([p.src_ip for p in items], dtype=np.uint32),
            dst_ip=np.array([p.dst_ip for p in items], dtype=np.uint32),
            src_port=np.array([p.src_port for p in items], dtype=np.uint16),
            dst_port=np.array([p.dst_port for p in items], dtype=np.uint16),
            ip_id=np.array([p.ip_id for p in items], dtype=np.uint16),
            seq=np.array([p.seq for p in items], dtype=np.uint32),
            ttl=np.array([p.ttl for p in items], dtype=np.uint8),
            window=np.array([p.window for p in items], dtype=np.uint16),
            flags=np.array([p.flags for p in items], dtype=np.uint8),
        )

    @classmethod
    def concat(cls, batches: Sequence["PacketBatch"]) -> "PacketBatch":
        """Concatenate batches (order preserved, no sorting)."""
        if not batches:
            return cls.empty()
        return cls(**{
            name: np.concatenate([b._cols[name] for b in batches])
            for name, _ in _COLUMNS
        })

    # -- column access -----------------------------------------------------

    @property
    def time(self) -> np.ndarray:
        return self._cols["time"]

    @property
    def src_ip(self) -> np.ndarray:
        return self._cols["src_ip"]

    @property
    def dst_ip(self) -> np.ndarray:
        return self._cols["dst_ip"]

    @property
    def src_port(self) -> np.ndarray:
        return self._cols["src_port"]

    @property
    def dst_port(self) -> np.ndarray:
        return self._cols["dst_port"]

    @property
    def ip_id(self) -> np.ndarray:
        return self._cols["ip_id"]

    @property
    def seq(self) -> np.ndarray:
        return self._cols["seq"]

    @property
    def ttl(self) -> np.ndarray:
        return self._cols["ttl"]

    @property
    def window(self) -> np.ndarray:
        return self._cols["window"]

    @property
    def flags(self) -> np.ndarray:
        return self._cols["flags"]

    # -- protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return int(self._cols["time"].size)

    def __getitem__(self, index) -> "PacketBatch":
        """Slice / boolean-mask / fancy-index into a new batch."""
        if isinstance(index, (int, np.integer)):
            raise TypeError("use .packet(i) for single-packet access")
        return PacketBatch(**{name: col[index] for name, col in self._cols.items()})

    def packet(self, index: int) -> SynPacket:
        """Materialise packet ``index`` as a :class:`SynPacket`."""
        return SynPacket(
            time=float(self.time[index]),
            src_ip=int(self.src_ip[index]),
            dst_ip=int(self.dst_ip[index]),
            src_port=int(self.src_port[index]),
            dst_port=int(self.dst_port[index]),
            ip_id=int(self.ip_id[index]),
            seq=int(self.seq[index]),
            ttl=int(self.ttl[index]),
            window=int(self.window[index]),
            flags=int(self.flags[index]),
        )

    def __iter__(self) -> Iterator[SynPacket]:
        for i in range(len(self)):
            yield self.packet(i)

    # -- transformations ---------------------------------------------------

    def sorted_by_time(self) -> "PacketBatch":
        """Return a copy ordered by timestamp (stable)."""
        order = np.argsort(self.time, kind="stable")
        return self[order]

    def where(self, mask: np.ndarray) -> "PacketBatch":
        """Select packets where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask length does not match batch length")
        return self[mask]

    def syn_only(self) -> "PacketBatch":
        """Keep only pure-SYN frames (scan probes, Section 3.1)."""
        return self.where(self.flags == FLAG_SYN)

    def time_window(self, start: float, end: float) -> "PacketBatch":
        """Packets with ``start <= time < end``."""
        if end < start:
            raise ValueError("end must be >= start")
        return self.where((self.time >= start) & (self.time < end))

    def group_by_source(self) -> Dict[int, np.ndarray]:
        """Index arrays per distinct source IP (sorted by first appearance
        of the source in ascending IP order)."""
        if len(self) == 0:
            return {}
        order = np.argsort(self.src_ip, kind="stable")
        sorted_src = self.src_ip[order]
        uniques, starts = np.unique(sorted_src, return_index=True)
        out: Dict[int, np.ndarray] = {}
        bounds = list(starts) + [sorted_src.size]
        for i, src in enumerate(uniques):
            out[int(src)] = order[bounds[i]:bounds[i + 1]]
        return out

    def distinct_sources(self) -> int:
        """Number of distinct source IPs."""
        return int(np.unique(self.src_ip).size) if len(self) else 0

    def distinct_ports(self) -> int:
        """Number of distinct destination ports."""
        return int(np.unique(self.dst_port).size) if len(self) else 0

    def port_packet_counts(self) -> Dict[int, int]:
        """Packets per destination port."""
        ports, counts = np.unique(self.dst_port, return_counts=True)
        return {int(p): int(c) for p, c in zip(ports, counts)}

    # -- misc ----------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the column arrays."""
        return int(sum(col.nbytes for col in self._cols.values()))

    def columns(self) -> Dict[str, np.ndarray]:
        """A fresh dict of the column arrays.

        The dict itself is a copy (re-keying it is fine — see
        ``Anonymizer.anonymize_batch``); the arrays are the batch's own
        non-writeable views, so element assignment raises ``ValueError``.
        Call ``np.array(col)`` for a writable copy.
        """
        return dict(self._cols)

    def __repr__(self) -> str:
        span = ""
        if len(self):
            span = f", t=[{self.time.min():.1f}, {self.time.max():.1f}]"
        return f"PacketBatch({len(self)} packets{span})"
