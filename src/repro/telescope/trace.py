"""Binary trace serialisation (``.rtrace`` files).

A compact column-oriented on-disk format for telescope captures, replacing
raw pcap for this reproduction (pcap carries full frames; the analyses only
need the header subset in :class:`~repro.telescope.packet.PacketBatch`).

Layout::

    magic      8 bytes  b"RTRACE01"
    meta_len   4 bytes  little-endian uint32
    meta       meta_len bytes, UTF-8 JSON (arbitrary user metadata)
    chunks     repeated until EOF:
        n_packets   4 bytes little-endian uint32   (0 terminates the stream)
        columns     raw little-endian arrays, in fixed column order

Chunking lets a writer stream a multi-day capture without holding it in
memory, and lets a reader iterate chunk-by-chunk.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.telescope.packet import PacketBatch

try:  # pragma: no cover - mmap is stdlib on every supported platform
    import mmap as _mmap
except ImportError:  # pragma: no cover - exotic builds without mmap
    _mmap = None

MAGIC = b"RTRACE01"

_COLUMN_ORDER: Tuple[Tuple[str, str], ...] = (
    ("time", "<f8"),
    ("src_ip", "<u4"),
    ("dst_ip", "<u4"),
    ("src_port", "<u2"),
    ("dst_port", "<u2"),
    ("ip_id", "<u2"),
    ("seq", "<u4"),
    ("ttl", "<u1"),
    ("window", "<u2"),
    ("flags", "<u1"),
)

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or truncated."""


class TraceWriter:
    """Streaming trace writer; use as a context manager.

    Example::

        with TraceWriter(path, meta={"year": 2020}) as w:
            for batch in batches:
                w.write(batch)
    """

    def __init__(self, path: PathLike, meta: Optional[Dict[str, Any]] = None):
        self._path = Path(path)
        self._file: Optional[io.BufferedWriter] = None
        self._meta = dict(meta or {})
        self._packets_written = 0

    def __enter__(self) -> "TraceWriter":
        self._file = open(self._path, "wb")
        self._file.write(MAGIC)
        meta_bytes = json.dumps(self._meta, sort_keys=True).encode("utf-8")
        self._file.write(struct.pack("<I", len(meta_bytes)))
        self._file.write(meta_bytes)
        return self

    def write(self, batch: PacketBatch) -> None:
        """Append one chunk. Empty batches are skipped (0 marks EOF)."""
        if self._file is None:
            raise RuntimeError("TraceWriter must be used as a context manager")
        if len(batch) == 0:
            return
        self._file.write(struct.pack("<I", len(batch)))
        cols = batch.columns()
        for name, dtype in _COLUMN_ORDER:
            self._file.write(np.ascontiguousarray(cols[name], dtype=dtype).tobytes())
        self._packets_written += len(batch)

    @property
    def packets_written(self) -> int:
        return self._packets_written

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._file is not None:
            # Explicit terminator so a truncated tail is detectable.
            self._file.write(struct.pack("<I", 0))
            self._file.close()
            self._file = None


#: Bytes per packet across all serialised columns (one row of a chunk).
_ROW_BYTES = sum(np.dtype(dtype).itemsize for _, dtype in _COLUMN_ORDER)


class TraceReader:
    """Streaming trace reader; iterates chunks as :class:`PacketBatch`.

    ``strict=True`` (the default) raises :class:`TraceFormatError` on any
    truncated or corrupt batch, reporting the byte offset and batch index of
    the damage.  ``strict=False`` tolerates a cleanly-truncated final batch
    — a writer killed mid-chunk — by dropping the partial batch and ending
    the stream (``reader.truncated`` records that this happened).  Structural
    damage before the chunks (bad magic, unreadable metadata) always raises.
    """

    def __init__(self, path: PathLike, strict: bool = True):
        self._path = Path(path)
        self._strict = strict
        self._offset = 0
        self._batch_index = 0
        self.meta: Dict[str, Any] = {}
        self.truncated = False

    def __enter__(self) -> "TraceReader":
        self._file = open(self._path, "rb")
        magic = self._file.read(len(MAGIC))
        self._offset = len(magic)
        if magic != MAGIC:
            self._file.close()
            if magic.startswith(b"RTRACE"):
                # Same family, different format revision: name both
                # versions so multi-trace runs can tell which file is old.
                raise TraceFormatError(
                    f"unsupported trace format version {magic!r} in "
                    f"{self._path}: this reader supports {MAGIC!r}"
                )
            raise TraceFormatError(f"bad magic in {self._path}: {magic!r}")
        (meta_len,) = struct.unpack("<I", self._read_exact(4, "metadata length"))
        self.meta = json.loads(
            self._read_exact(meta_len, "metadata block").decode("utf-8")
        )
        return self

    def _read_exact(self, count: int, context: str) -> bytes:
        data = self._file.read(count)
        self._offset += len(data)
        if len(data) != count:
            raise TraceFormatError(
                f"truncated trace file {self._path}: short read of {context} "
                f"at byte offset {self._offset} "
                f"(batch {self._batch_index}, got {len(data)} of {count} bytes)"
            )
        return data

    def _read_chunk(self) -> Optional[PacketBatch]:
        """Read the next chunk, or ``None`` at end of stream.

        In non-strict mode a truncated final chunk (including a partial
        chunk header) ends the stream instead of raising.
        """
        header = self._file.read(4)
        self._offset += len(header)
        if len(header) == 0:
            # Missing terminator: tolerate but treat as end of stream.
            return None
        try:
            if len(header) != 4:
                raise TraceFormatError(
                    f"truncated trace file {self._path}: partial chunk header "
                    f"at byte offset {self._offset} (batch {self._batch_index})"
                )
            (count,) = struct.unpack("<I", header)
            if count == 0:
                return None
            cols: Dict[str, np.ndarray] = {}
            for name, dtype in _COLUMN_ORDER:
                nbytes = count * np.dtype(dtype).itemsize
                cols[name] = np.frombuffer(
                    self._read_exact(nbytes, f"column {name!r}"), dtype=dtype
                ).copy()
        except TraceFormatError:
            if self._strict:
                raise
            # A short read on a regular file means EOF: the writer died
            # mid-chunk.  Drop the partial batch and end the stream cleanly.
            self.truncated = True
            return None
        self._batch_index += 1
        return PacketBatch(**cols)

    def skip_packets(self, count: int) -> PacketBatch:
        """Advance past ``count`` packets with seeks; returns the remainder.

        Whole chunks are skipped without deserialising them (a single seek
        per chunk), so fast-forwarding a resumed stream costs almost no I/O.
        When ``count`` lands inside a chunk, that chunk is read and the part
        after the skip point is returned (possibly empty).  Raises
        ``ValueError`` when the trace holds fewer than ``count`` packets.
        """
        if count < 0:
            raise ValueError("cannot skip a negative packet count")
        remaining = count
        while remaining > 0:
            header = self._file.read(4)
            self._offset += len(header)
            if len(header) == 0:
                raise ValueError(
                    f"cannot skip {count} packets: {self._path} ends "
                    f"{remaining} packets short"
                )
            if len(header) != 4:
                raise TraceFormatError(
                    f"truncated trace file {self._path}: partial chunk header "
                    f"at byte offset {self._offset} (batch {self._batch_index})"
                )
            (n,) = struct.unpack("<I", header)
            if n == 0:
                raise ValueError(
                    f"cannot skip {count} packets: {self._path} ends "
                    f"{remaining} packets short"
                )
            if n <= remaining:
                self._file.seek(n * _ROW_BYTES, io.SEEK_CUR)
                self._offset += n * _ROW_BYTES
                self._batch_index += 1
                remaining -= n
                continue
            # Skip point lands inside this chunk: rewind to its header and
            # read it normally, then drop the consumed prefix.
            self._file.seek(-4, io.SEEK_CUR)
            self._offset -= 4
            chunk = self._read_chunk()
            if chunk is None:  # pragma: no cover - only on non-strict damage
                raise ValueError(
                    f"cannot skip {count} packets: {self._path} ends "
                    f"{remaining} packets short"
                )
            return chunk[remaining:]
        return PacketBatch.empty()

    def __iter__(self) -> Iterator[PacketBatch]:
        while True:
            chunk = self._read_chunk()
            if chunk is None:
                return
            yield chunk

    def __exit__(self, exc_type, exc, tb) -> None:
        self._file.close()


#: Byte offset of each column inside a chunk's data block, per packet: the
#: columns are laid out back to back, so column ``k`` of an ``n``-packet
#: chunk starts ``n * _COL_PREFIX[k]`` bytes into the block.
_COL_PREFIX: Tuple[int, ...] = tuple(
    sum(np.dtype(dtype).itemsize for _, dtype in _COLUMN_ORDER[:k])
    for k in range(len(_COLUMN_ORDER))
)


def mmap_supported() -> bool:
    """True when this platform can memory-map trace files."""
    return _mmap is not None


class TraceIndex:
    """Chunk directory of an ``.rtrace`` file, built from the headers alone.

    One forward walk over the chunk headers (a few bytes per chunk, no
    column deserialisation) yields, per chunk, the byte offset of its data
    block and its packet count.  With the index in hand, random access is
    O(log chunks): ``skip_packets`` becomes a binary search over the
    cumulative packet counts instead of a header-by-header scan.
    """

    __slots__ = ("offsets", "counts", "cum_counts", "truncated")

    def __init__(
        self,
        offsets: List[int],
        counts: List[int],
        truncated: bool,
    ):
        #: Byte offset of each chunk's column data (past its 4-byte header).
        self.offsets = offsets
        #: Packets per chunk.
        self.counts = counts
        #: ``cum_counts[i]`` = packets in chunks ``0..i`` inclusive.
        self.cum_counts = np.cumsum(np.asarray(counts, dtype=np.int64))
        #: True when a cleanly-truncated final chunk was dropped
        #: (``strict=False`` only).
        self.truncated = truncated

    @property
    def n_chunks(self) -> int:
        return len(self.offsets)

    @property
    def total_packets(self) -> int:
        return int(self.cum_counts[-1]) if len(self.counts) else 0

    @classmethod
    def build(
        cls, buf, start: int, size: int, path: Path, strict: bool
    ) -> "TraceIndex":
        """Walk the chunk headers of ``buf[start:size]``.

        ``buf`` is any random-access byte buffer (an ``mmap``, a ``bytes``).
        Raises :class:`TraceFormatError` on damage under ``strict=True``;
        otherwise a truncated tail ends the index with ``truncated`` set,
        mirroring :class:`TraceReader`'s non-strict semantics.
        """
        offsets: List[int] = []
        counts: List[int] = []
        truncated = False
        pos = start
        batch_index = 0
        while True:
            if pos + 4 > size:
                if pos == size:
                    break  # missing terminator: tolerate as end of stream
                if strict:
                    raise TraceFormatError(
                        f"truncated trace file {path}: partial chunk header "
                        f"at byte offset {size} (batch {batch_index})"
                    )
                truncated = True
                break
            (count,) = struct.unpack("<I", buf[pos:pos + 4])
            if count == 0:
                break
            data = pos + 4
            nbytes = count * _ROW_BYTES
            if data + nbytes > size:
                if strict:
                    raise TraceFormatError(
                        f"truncated trace file {path}: short read of chunk "
                        f"data at byte offset {size} (batch {batch_index}, "
                        f"got {size - data} of {nbytes} bytes)"
                    )
                truncated = True
                break
            offsets.append(data)
            counts.append(count)
            batch_index += 1
            pos = data + nbytes
        return cls(offsets, counts, truncated)


class MappedTraceReader:
    """Zero-copy ``.rtrace`` reader over a memory-mapped file.

    Drop-in for :class:`TraceReader` on the read side (context manager,
    chunk iteration, ``skip_packets``, ``meta``, ``truncated``), with two
    structural differences:

    * chunks come back as :class:`PacketBatch` columns that are **read-only
      views straight into the mapped file** — no deserialisation copy, no
      per-column allocation; the OS pages data in on first touch and is
      free to evict it again, so reading a capture larger than RAM costs
      only page-cache churn;
    * the chunk directory is built once from the headers
      (:class:`TraceIndex`), so ``skip_packets`` is a binary search plus a
      view construction instead of a header-by-header seek scan, and random
      chunk access (:meth:`chunk`) is O(1).

    Format validation happens while the index is built, so a damaged file
    fails on ``__enter__`` (or, with ``strict=False``, drops the partial
    tail exactly like :class:`TraceReader`).

    Lifetime: batches handed out remain valid after the reader closes —
    the mapping is only released once the last view is garbage-collected
    (``close`` drops the file descriptor immediately but unmaps lazily).
    Use :func:`mmap_supported` / ``TraceStreamSource(mmap=False)`` on
    platforms without ``mmap``.
    """

    def __init__(self, path: PathLike, strict: bool = True):
        if _mmap is None:  # pragma: no cover - exotic builds without mmap
            raise TraceFormatError(
                f"cannot memory-map {path}: this platform has no mmap "
                "support; use the buffered TraceReader instead"
            )
        self._path = Path(path)
        self._strict = strict
        self.meta: Dict[str, Any] = {}
        self.truncated = False
        self.index: Optional[TraceIndex] = None
        self._mm = None
        self._next_chunk = 0

    def __enter__(self) -> "MappedTraceReader":
        fh = open(self._path, "rb")
        try:
            try:
                self._mm = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
            except ValueError:
                # Zero-length file: cannot be mapped, and cannot be a trace.
                raise TraceFormatError(f"bad magic in {self._path}: b''")
        finally:
            # The mapping outlives the descriptor on every platform.
            fh.close()
        mm = self._mm
        size = len(mm)
        magic = bytes(mm[: len(MAGIC)])
        if magic != MAGIC:
            self.close()
            if magic.startswith(b"RTRACE"):
                raise TraceFormatError(
                    f"unsupported trace format version {magic!r} in "
                    f"{self._path}: this reader supports {MAGIC!r}"
                )
            raise TraceFormatError(f"bad magic in {self._path}: {magic!r}")
        try:
            if size < len(MAGIC) + 4:
                raise TraceFormatError(
                    f"truncated trace file {self._path}: short read of "
                    f"metadata length at byte offset {size} (batch 0)"
                )
            (meta_len,) = struct.unpack(
                "<I", mm[len(MAGIC): len(MAGIC) + 4]
            )
            meta_end = len(MAGIC) + 4 + meta_len
            if meta_end > size:
                raise TraceFormatError(
                    f"truncated trace file {self._path}: short read of "
                    f"metadata block at byte offset {size} (batch 0)"
                )
            self.meta = json.loads(bytes(mm[len(MAGIC) + 4: meta_end]))
            self.index = TraceIndex.build(
                mm, meta_end, size, self._path, self._strict
            )
        except TraceFormatError:
            self.close()
            raise
        self.truncated = self.index.truncated
        self._next_chunk = 0
        return self

    # -- access --------------------------------------------------------------

    @property
    def total_packets(self) -> int:
        """Packets in the capture (index lookup, no data touched)."""
        if self.index is None:
            raise RuntimeError("MappedTraceReader must be entered first")
        return self.index.total_packets

    def chunk(self, i: int, start: int = 0) -> PacketBatch:
        """Chunk ``i`` (optionally from packet ``start``) as zero-copy views."""
        if self.index is None:
            raise RuntimeError("MappedTraceReader must be entered first")
        data = self.index.offsets[i]
        count = self.index.counts[i]
        cols: Dict[str, np.ndarray] = {}
        for (name, dtype), prefix in zip(_COLUMN_ORDER, _COL_PREFIX):
            col = np.frombuffer(
                self._mm, dtype=dtype, count=count, offset=data + count * prefix
            )
            cols[name] = col if start == 0 else col[start:]
        return PacketBatch(**cols)

    def skip_packets(self, count: int) -> PacketBatch:
        """Advance past ``count`` packets via the index; returns the remainder.

        Equivalent to :meth:`TraceReader.skip_packets`, but a binary search
        over the cumulative chunk counts replaces the header-by-header seek
        scan, and the mid-chunk remainder comes back as a zero-copy view.
        """
        if self.index is None:
            raise RuntimeError("MappedTraceReader must be entered first")
        if count < 0:
            raise ValueError("cannot skip a negative packet count")
        if count == 0:
            self._next_chunk = 0
            return PacketBatch.empty()
        total = self.index.total_packets
        if count > total:
            raise ValueError(
                f"cannot skip {count} packets: {self._path} ends "
                f"{count - total} packets short"
            )
        # First chunk whose cumulative count exceeds the skip point.
        i = int(np.searchsorted(self.index.cum_counts, count, side="left"))
        if self.index.cum_counts[i] == count:
            # Skip point lands exactly on a chunk boundary.
            self._next_chunk = i + 1
            return PacketBatch.empty()
        before = int(self.index.cum_counts[i - 1]) if i else 0
        self._next_chunk = i + 1
        return self.chunk(i, start=count - before)

    def __iter__(self) -> Iterator[PacketBatch]:
        if self.index is None:
            raise RuntimeError("MappedTraceReader must be entered first")
        while self._next_chunk < self.index.n_chunks:
            i = self._next_chunk
            self._next_chunk = i + 1
            yield self.chunk(i)

    def close(self) -> None:
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                # Zero-copy views into the map are still alive; the mapping
                # is released when the last of them is garbage-collected.
                pass
            self._mm = None

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def open_trace_reader(
    path: PathLike,
    strict: bool = True,
    use_mmap: Optional[bool] = None,
) -> Union[TraceReader, MappedTraceReader]:
    """Pick a trace reader: mapped when possible, buffered otherwise.

    ``use_mmap=None`` (the default) selects the zero-copy mapped reader on
    platforms that support it and falls back to the buffered reader
    elsewhere; ``True`` requires the mapped reader (raising
    :class:`TraceFormatError` where unavailable); ``False`` forces the
    buffered reader.  Both readers share the iteration / ``skip_packets``
    interface, so callers need no further branching.
    """
    if use_mmap is None:
        use_mmap = mmap_supported()
    if use_mmap:
        return MappedTraceReader(path, strict=strict)
    return TraceReader(path, strict=strict)


def write_trace(
    path: PathLike,
    batch: PacketBatch,
    meta: Optional[Dict[str, Any]] = None,
    chunk_size: int = 1_000_000,
) -> int:
    """Write a whole batch to ``path`` in chunks; returns packets written."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    with TraceWriter(path, meta=meta) as writer:
        for start in range(0, len(batch), chunk_size):
            writer.write(batch[start:start + chunk_size])
        return writer.packets_written


def read_trace_meta(path: PathLike) -> Dict[str, Any]:
    """Read only a trace's metadata block, without touching the chunks.

    Cache lookups and capture inventories need the meta (key, year, scales)
    far more often than the packets; this stops after the JSON header, so it
    costs a few kilobytes of I/O regardless of capture size.
    """
    with TraceReader(path) as reader:
        return reader.meta


def read_trace(
    path: PathLike, strict: bool = True
) -> Tuple[PacketBatch, Dict[str, Any]]:
    """Read a whole trace into memory; returns ``(batch, meta)``."""
    with TraceReader(path, strict=strict) as reader:
        chunks = list(reader)
        return PacketBatch.concat(chunks), reader.meta


def iter_trace(path: PathLike, strict: bool = True) -> Iterator[PacketBatch]:
    """Iterate a trace chunk-by-chunk without loading it all.

    This is the substrate of the streaming layer: ``repro.stream`` re-chunks
    these native batches into fixed-size / time-aligned windows.
    """
    with TraceReader(path, strict=strict) as reader:
        yield from reader
