"""Binary trace serialisation (``.rtrace`` files).

A compact column-oriented on-disk format for telescope captures, replacing
raw pcap for this reproduction (pcap carries full frames; the analyses only
need the header subset in :class:`~repro.telescope.packet.PacketBatch`).

Layout::

    magic      8 bytes  b"RTRACE01"
    meta_len   4 bytes  little-endian uint32
    meta       meta_len bytes, UTF-8 JSON (arbitrary user metadata)
    chunks     repeated until EOF:
        n_packets   4 bytes little-endian uint32   (0 terminates the stream)
        columns     raw little-endian arrays, in fixed column order

Chunking lets a writer stream a multi-day capture without holding it in
memory, and lets a reader iterate chunk-by-chunk.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.telescope.packet import PacketBatch

MAGIC = b"RTRACE01"

_COLUMN_ORDER: Tuple[Tuple[str, str], ...] = (
    ("time", "<f8"),
    ("src_ip", "<u4"),
    ("dst_ip", "<u4"),
    ("src_port", "<u2"),
    ("dst_port", "<u2"),
    ("ip_id", "<u2"),
    ("seq", "<u4"),
    ("ttl", "<u1"),
    ("window", "<u2"),
    ("flags", "<u1"),
)

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or truncated."""


class TraceWriter:
    """Streaming trace writer; use as a context manager.

    Example::

        with TraceWriter(path, meta={"year": 2020}) as w:
            for batch in batches:
                w.write(batch)
    """

    def __init__(self, path: PathLike, meta: Optional[Dict[str, Any]] = None):
        self._path = Path(path)
        self._file: Optional[io.BufferedWriter] = None
        self._meta = dict(meta or {})
        self._packets_written = 0

    def __enter__(self) -> "TraceWriter":
        self._file = open(self._path, "wb")
        self._file.write(MAGIC)
        meta_bytes = json.dumps(self._meta, sort_keys=True).encode("utf-8")
        self._file.write(struct.pack("<I", len(meta_bytes)))
        self._file.write(meta_bytes)
        return self

    def write(self, batch: PacketBatch) -> None:
        """Append one chunk. Empty batches are skipped (0 marks EOF)."""
        if self._file is None:
            raise RuntimeError("TraceWriter must be used as a context manager")
        if len(batch) == 0:
            return
        self._file.write(struct.pack("<I", len(batch)))
        cols = batch.columns()
        for name, dtype in _COLUMN_ORDER:
            self._file.write(np.ascontiguousarray(cols[name], dtype=dtype).tobytes())
        self._packets_written += len(batch)

    @property
    def packets_written(self) -> int:
        return self._packets_written

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._file is not None:
            # Explicit terminator so a truncated tail is detectable.
            self._file.write(struct.pack("<I", 0))
            self._file.close()
            self._file = None


#: Bytes per packet across all serialised columns (one row of a chunk).
_ROW_BYTES = sum(np.dtype(dtype).itemsize for _, dtype in _COLUMN_ORDER)


class TraceReader:
    """Streaming trace reader; iterates chunks as :class:`PacketBatch`.

    ``strict=True`` (the default) raises :class:`TraceFormatError` on any
    truncated or corrupt batch, reporting the byte offset and batch index of
    the damage.  ``strict=False`` tolerates a cleanly-truncated final batch
    — a writer killed mid-chunk — by dropping the partial batch and ending
    the stream (``reader.truncated`` records that this happened).  Structural
    damage before the chunks (bad magic, unreadable metadata) always raises.
    """

    def __init__(self, path: PathLike, strict: bool = True):
        self._path = Path(path)
        self._strict = strict
        self._offset = 0
        self._batch_index = 0
        self.meta: Dict[str, Any] = {}
        self.truncated = False

    def __enter__(self) -> "TraceReader":
        self._file = open(self._path, "rb")
        magic = self._file.read(len(MAGIC))
        self._offset = len(magic)
        if magic != MAGIC:
            self._file.close()
            if magic.startswith(b"RTRACE"):
                # Same family, different format revision: name both
                # versions so multi-trace runs can tell which file is old.
                raise TraceFormatError(
                    f"unsupported trace format version {magic!r} in "
                    f"{self._path}: this reader supports {MAGIC!r}"
                )
            raise TraceFormatError(f"bad magic in {self._path}: {magic!r}")
        (meta_len,) = struct.unpack("<I", self._read_exact(4, "metadata length"))
        self.meta = json.loads(
            self._read_exact(meta_len, "metadata block").decode("utf-8")
        )
        return self

    def _read_exact(self, count: int, context: str) -> bytes:
        data = self._file.read(count)
        self._offset += len(data)
        if len(data) != count:
            raise TraceFormatError(
                f"truncated trace file {self._path}: short read of {context} "
                f"at byte offset {self._offset} "
                f"(batch {self._batch_index}, got {len(data)} of {count} bytes)"
            )
        return data

    def _read_chunk(self) -> Optional[PacketBatch]:
        """Read the next chunk, or ``None`` at end of stream.

        In non-strict mode a truncated final chunk (including a partial
        chunk header) ends the stream instead of raising.
        """
        header = self._file.read(4)
        self._offset += len(header)
        if len(header) == 0:
            # Missing terminator: tolerate but treat as end of stream.
            return None
        try:
            if len(header) != 4:
                raise TraceFormatError(
                    f"truncated trace file {self._path}: partial chunk header "
                    f"at byte offset {self._offset} (batch {self._batch_index})"
                )
            (count,) = struct.unpack("<I", header)
            if count == 0:
                return None
            cols: Dict[str, np.ndarray] = {}
            for name, dtype in _COLUMN_ORDER:
                nbytes = count * np.dtype(dtype).itemsize
                cols[name] = np.frombuffer(
                    self._read_exact(nbytes, f"column {name!r}"), dtype=dtype
                ).copy()
        except TraceFormatError:
            if self._strict:
                raise
            # A short read on a regular file means EOF: the writer died
            # mid-chunk.  Drop the partial batch and end the stream cleanly.
            self.truncated = True
            return None
        self._batch_index += 1
        return PacketBatch(**cols)

    def skip_packets(self, count: int) -> PacketBatch:
        """Advance past ``count`` packets with seeks; returns the remainder.

        Whole chunks are skipped without deserialising them (a single seek
        per chunk), so fast-forwarding a resumed stream costs almost no I/O.
        When ``count`` lands inside a chunk, that chunk is read and the part
        after the skip point is returned (possibly empty).  Raises
        ``ValueError`` when the trace holds fewer than ``count`` packets.
        """
        if count < 0:
            raise ValueError("cannot skip a negative packet count")
        remaining = count
        while remaining > 0:
            header = self._file.read(4)
            self._offset += len(header)
            if len(header) == 0:
                raise ValueError(
                    f"cannot skip {count} packets: {self._path} ends "
                    f"{remaining} packets short"
                )
            if len(header) != 4:
                raise TraceFormatError(
                    f"truncated trace file {self._path}: partial chunk header "
                    f"at byte offset {self._offset} (batch {self._batch_index})"
                )
            (n,) = struct.unpack("<I", header)
            if n == 0:
                raise ValueError(
                    f"cannot skip {count} packets: {self._path} ends "
                    f"{remaining} packets short"
                )
            if n <= remaining:
                self._file.seek(n * _ROW_BYTES, io.SEEK_CUR)
                self._offset += n * _ROW_BYTES
                self._batch_index += 1
                remaining -= n
                continue
            # Skip point lands inside this chunk: rewind to its header and
            # read it normally, then drop the consumed prefix.
            self._file.seek(-4, io.SEEK_CUR)
            self._offset -= 4
            chunk = self._read_chunk()
            if chunk is None:  # pragma: no cover - only on non-strict damage
                raise ValueError(
                    f"cannot skip {count} packets: {self._path} ends "
                    f"{remaining} packets short"
                )
            return chunk[remaining:]
        return PacketBatch.empty()

    def __iter__(self) -> Iterator[PacketBatch]:
        while True:
            chunk = self._read_chunk()
            if chunk is None:
                return
            yield chunk

    def __exit__(self, exc_type, exc, tb) -> None:
        self._file.close()


def write_trace(
    path: PathLike,
    batch: PacketBatch,
    meta: Optional[Dict[str, Any]] = None,
    chunk_size: int = 1_000_000,
) -> int:
    """Write a whole batch to ``path`` in chunks; returns packets written."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    with TraceWriter(path, meta=meta) as writer:
        for start in range(0, len(batch), chunk_size):
            writer.write(batch[start:start + chunk_size])
        return writer.packets_written


def read_trace_meta(path: PathLike) -> Dict[str, Any]:
    """Read only a trace's metadata block, without touching the chunks.

    Cache lookups and capture inventories need the meta (key, year, scales)
    far more often than the packets; this stops after the JSON header, so it
    costs a few kilobytes of I/O regardless of capture size.
    """
    with TraceReader(path) as reader:
        return reader.meta


def read_trace(
    path: PathLike, strict: bool = True
) -> Tuple[PacketBatch, Dict[str, Any]]:
    """Read a whole trace into memory; returns ``(batch, meta)``."""
    with TraceReader(path, strict=strict) as reader:
        chunks = list(reader)
        return PacketBatch.concat(chunks), reader.meta


def iter_trace(path: PathLike, strict: bool = True) -> Iterator[PacketBatch]:
    """Iterate a trace chunk-by-chunk without loading it all.

    This is the substrate of the streaming layer: ``repro.stream`` re-chunks
    these native batches into fixed-size / time-aligned windows.
    """
    with TraceReader(path, strict=strict) as reader:
        yield from reader
