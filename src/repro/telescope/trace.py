"""Binary trace serialisation (``.rtrace`` files).

A compact column-oriented on-disk format for telescope captures, replacing
raw pcap for this reproduction (pcap carries full frames; the analyses only
need the header subset in :class:`~repro.telescope.packet.PacketBatch`).

Layout::

    magic      8 bytes  b"RTRACE01"
    meta_len   4 bytes  little-endian uint32
    meta       meta_len bytes, UTF-8 JSON (arbitrary user metadata)
    chunks     repeated until EOF:
        n_packets   4 bytes little-endian uint32   (0 terminates the stream)
        columns     raw little-endian arrays, in fixed column order

Chunking lets a writer stream a multi-day capture without holding it in
memory, and lets a reader iterate chunk-by-chunk.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.telescope.packet import PacketBatch

MAGIC = b"RTRACE01"

_COLUMN_ORDER: Tuple[Tuple[str, str], ...] = (
    ("time", "<f8"),
    ("src_ip", "<u4"),
    ("dst_ip", "<u4"),
    ("src_port", "<u2"),
    ("dst_port", "<u2"),
    ("ip_id", "<u2"),
    ("seq", "<u4"),
    ("ttl", "<u1"),
    ("window", "<u2"),
    ("flags", "<u1"),
)

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or truncated."""


class TraceWriter:
    """Streaming trace writer; use as a context manager.

    Example::

        with TraceWriter(path, meta={"year": 2020}) as w:
            for batch in batches:
                w.write(batch)
    """

    def __init__(self, path: PathLike, meta: Optional[Dict[str, Any]] = None):
        self._path = Path(path)
        self._file: Optional[io.BufferedWriter] = None
        self._meta = dict(meta or {})
        self._packets_written = 0

    def __enter__(self) -> "TraceWriter":
        self._file = open(self._path, "wb")
        self._file.write(MAGIC)
        meta_bytes = json.dumps(self._meta, sort_keys=True).encode("utf-8")
        self._file.write(struct.pack("<I", len(meta_bytes)))
        self._file.write(meta_bytes)
        return self

    def write(self, batch: PacketBatch) -> None:
        """Append one chunk. Empty batches are skipped (0 marks EOF)."""
        if self._file is None:
            raise RuntimeError("TraceWriter must be used as a context manager")
        if len(batch) == 0:
            return
        self._file.write(struct.pack("<I", len(batch)))
        cols = batch.columns()
        for name, dtype in _COLUMN_ORDER:
            self._file.write(np.ascontiguousarray(cols[name], dtype=dtype).tobytes())
        self._packets_written += len(batch)

    @property
    def packets_written(self) -> int:
        return self._packets_written

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._file is not None:
            # Explicit terminator so a truncated tail is detectable.
            self._file.write(struct.pack("<I", 0))
            self._file.close()
            self._file = None


class TraceReader:
    """Streaming trace reader; iterates chunks as :class:`PacketBatch`."""

    def __init__(self, path: PathLike):
        self._path = Path(path)
        self.meta: Dict[str, Any] = {}

    def __enter__(self) -> "TraceReader":
        self._file = open(self._path, "rb")
        magic = self._file.read(len(MAGIC))
        if magic != MAGIC:
            self._file.close()
            raise TraceFormatError(f"bad magic in {self._path}: {magic!r}")
        (meta_len,) = struct.unpack("<I", self._read_exact(4))
        self.meta = json.loads(self._read_exact(meta_len).decode("utf-8"))
        return self

    def _read_exact(self, count: int) -> bytes:
        data = self._file.read(count)
        if len(data) != count:
            raise TraceFormatError(f"truncated trace file: {self._path}")
        return data

    def __iter__(self) -> Iterator[PacketBatch]:
        while True:
            header = self._file.read(4)
            if len(header) == 0:
                # Missing terminator: tolerate but treat as end of stream.
                return
            if len(header) != 4:
                raise TraceFormatError(f"truncated chunk header: {self._path}")
            (count,) = struct.unpack("<I", header)
            if count == 0:
                return
            cols: Dict[str, np.ndarray] = {}
            for name, dtype in _COLUMN_ORDER:
                nbytes = count * np.dtype(dtype).itemsize
                cols[name] = np.frombuffer(self._read_exact(nbytes), dtype=dtype).copy()
            yield PacketBatch(**cols)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._file.close()


def write_trace(
    path: PathLike,
    batch: PacketBatch,
    meta: Optional[Dict[str, Any]] = None,
    chunk_size: int = 1_000_000,
) -> int:
    """Write a whole batch to ``path`` in chunks; returns packets written."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    with TraceWriter(path, meta=meta) as writer:
        for start in range(0, len(batch), chunk_size):
            writer.write(batch[start:start + chunk_size])
        return writer.packets_written


def read_trace_meta(path: PathLike) -> Dict[str, Any]:
    """Read only a trace's metadata block, without touching the chunks.

    Cache lookups and capture inventories need the meta (key, year, scales)
    far more often than the packets; this stops after the JSON header, so it
    costs a few kilobytes of I/O regardless of capture size.
    """
    with TraceReader(path) as reader:
        return reader.meta


def read_trace(path: PathLike) -> Tuple[PacketBatch, Dict[str, Any]]:
    """Read a whole trace into memory; returns ``(batch, meta)``."""
    with TraceReader(path) as reader:
        chunks = list(reader)
        return PacketBatch.concat(chunks), reader.meta


def iter_trace(path: PathLike) -> Iterator[PacketBatch]:
    """Iterate a trace chunk-by-chunk without loading it all."""
    with TraceReader(path) as reader:
        yield from reader
