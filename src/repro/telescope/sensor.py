"""The network telescope sensor.

Models the measurement infrastructure of the paper (Section 3.2): three
partially populated /16 blocks adding up to roughly one full /16 of unrouted
addresses, an ingress policy that drops Samba (445/TCP) and Telnet (23/TCP)
traffic from 2017 onwards, and the SYN-flag filter separating scan probes from
attack backscatter.

Also implements the telescope *detection model* (Moore et al.): the
probability that an Internet-wide scanner at a given probe rate appears in the
telescope within a given time, modelled with a geometric distribution.  The
campaign-identification thresholds of Section 3.4 are justified through this
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro._util.rng import RandomState, as_generator
from repro._util.validate import check_fraction, check_positive
from repro.telescope.addresses import (
    IPV4_SPACE_SIZE,
    AddressSet,
    CidrBlock,
)
from repro.telescope.packet import FLAG_SYN, PacketBatch

#: Ports dropped at the network ingress since the advent of Mirai (paper §3.2).
DEFAULT_BLOCKED_PORTS: FrozenSet[int] = frozenset({23, 445})

#: Year from which the ingress block is active.
INGRESS_BLOCK_SINCE_YEAR = 2017

#: Average number of monitored (unrouted) addresses over the study (paper §3.2).
PAPER_TELESCOPE_SIZE = 71_536


@dataclass(frozen=True)
class IngressPolicy:
    """Ports dropped before traffic reaches the telescope's capture.

    Attributes:
        blocked_ports: destination ports dropped at the ingress.
        active_since_year: first year (inclusive) the block applies.
    """

    blocked_ports: FrozenSet[int] = DEFAULT_BLOCKED_PORTS
    active_since_year: int = INGRESS_BLOCK_SINCE_YEAR

    def is_active(self, year: int) -> bool:
        return year >= self.active_since_year

    def apply(self, batch: PacketBatch, year: int) -> PacketBatch:
        """Drop packets to blocked ports when the policy is active."""
        if not self.is_active(year) or not self.blocked_ports or len(batch) == 0:
            return batch
        blocked = np.array(sorted(self.blocked_ports), dtype=np.uint16)
        mask = ~np.isin(batch.dst_port, blocked)
        return batch.where(mask)


@dataclass
class ObservationStats:
    """Counters accumulated by :meth:`Telescope.observe`."""

    total_seen: int = 0
    outside_telescope: int = 0
    ingress_dropped: int = 0
    backscatter: int = 0
    scan_probes: int = 0

    def merge(self, other: "ObservationStats") -> None:
        self.total_seen += other.total_seen
        self.outside_telescope += other.outside_telescope
        self.ingress_dropped += other.ingress_dropped
        self.backscatter += other.backscatter
        self.scan_probes += other.scan_probes


class Telescope:
    """A darknet sensor over a set of unrouted IPv4 addresses.

    The sensor accepts raw packet batches, keeps only those destined for
    monitored addresses, applies the ingress policy, and splits pure-SYN scan
    probes from backscatter.
    """

    def __init__(
        self,
        monitored: AddressSet,
        ingress: Optional[IngressPolicy] = None,
    ):
        if len(monitored) == 0:
            raise ValueError("telescope must monitor at least one address")
        self._monitored = monitored
        self._ingress = ingress if ingress is not None else IngressPolicy()
        self._stats = ObservationStats()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_blocks(
        cls,
        blocks: Sequence[CidrBlock],
        population: float = 1.0,
        rng: RandomState = None,
        ingress: Optional[IngressPolicy] = None,
    ) -> "Telescope":
        """Build a telescope monitoring a ``population`` fraction of ``blocks``."""
        monitored = AddressSet.from_blocks(
            blocks, population=population, rng=as_generator(rng)
        )
        return cls(monitored, ingress=ingress)

    @classmethod
    def paper_telescope(cls, rng: RandomState = None) -> "Telescope":
        """The study's vantage point: three partially populated /16 blocks
        whose monitored addresses add up to roughly one full /16
        (~71,536 unrouted addresses on average)."""
        generator = as_generator(rng)
        blocks = [
            CidrBlock.parse("100.64.0.0/16"),
            CidrBlock.parse("100.65.0.0/16"),
            CidrBlock.parse("100.66.0.0/16"),
        ]
        population = PAPER_TELESCOPE_SIZE / (3 * 2**16)
        return cls.from_blocks(blocks, population=population, rng=generator)

    # -- properties -----------------------------------------------------------

    @property
    def monitored(self) -> AddressSet:
        return self._monitored

    @property
    def size(self) -> int:
        """Number of monitored addresses."""
        return len(self._monitored)

    @property
    def ingress(self) -> IngressPolicy:
        return self._ingress

    @property
    def stats(self) -> ObservationStats:
        return self._stats

    @property
    def space_fraction(self) -> float:
        """Fraction of the IPv4 space the telescope covers."""
        return self.size / IPV4_SPACE_SIZE

    # -- observation ----------------------------------------------------------

    def observe(self, batch: PacketBatch, year: int) -> PacketBatch:
        """Filter a raw batch down to scan probes captured by the telescope.

        Steps, mirroring the paper's collection methodology:

        1. keep packets destined to monitored (unrouted) addresses;
        2. drop ingress-blocked ports (23/445 from 2017 on);
        3. keep pure-SYN frames (scans); everything else is counted as
           backscatter and dropped.

        Returns the accepted scan probes sorted by time; accounting is
        accumulated in :attr:`stats`.
        """
        stats = ObservationStats(total_seen=len(batch))
        inside = batch.where(self._monitored.contains_array(batch.dst_ip))
        stats.outside_telescope = len(batch) - len(inside)

        passed = self._ingress.apply(inside, year)
        stats.ingress_dropped = len(inside) - len(passed)

        scans = passed.where(passed.flags == FLAG_SYN)
        stats.backscatter = len(passed) - len(scans)
        stats.scan_probes = len(scans)

        self._stats.merge(stats)
        return scans.sorted_by_time()

    def sample_destinations(self, rng: RandomState, count: int) -> np.ndarray:
        """Sample monitored destination addresses (used by the simulator when
        thinning a campaign's probe stream down to telescope hits)."""
        return self._monitored.sample(as_generator(rng), count)


# -- detection model (Moore et al., Network Telescopes) -----------------------


def hit_probability_per_probe(telescope_size: int) -> float:
    """Probability a uniform-random IPv4 probe lands in the telescope."""
    check_positive("telescope_size", telescope_size)
    return telescope_size / IPV4_SPACE_SIZE


def detection_probability(
    rate_pps: float, duration_s: float, telescope_size: int = PAPER_TELESCOPE_SIZE
) -> float:
    """Probability a random-target scanner is observed within ``duration_s``.

    Geometric model: each probe independently hits the telescope with
    probability ``telescope_size / 2^32``; a scanner sending at ``rate_pps``
    for ``duration_s`` seconds is detected unless *all* probes miss.
    """
    check_positive("rate_pps", rate_pps)
    check_positive("duration_s", duration_s)
    p = hit_probability_per_probe(telescope_size)
    probes = rate_pps * duration_s
    return 1.0 - (1.0 - p) ** probes


def time_to_detection(
    rate_pps: float,
    confidence: float = 0.999,
    telescope_size: int = PAPER_TELESCOPE_SIZE,
) -> float:
    """Seconds until a scanner at ``rate_pps`` is seen with ``confidence``.

    The paper reports that a 100 pps random scanner appears within 1 hour with
    probability 99.9% — this function reproduces that calculation.
    """
    check_positive("rate_pps", rate_pps)
    check_fraction("confidence", confidence)
    if confidence >= 1.0:
        raise ValueError("confidence must be < 1")
    p = hit_probability_per_probe(telescope_size)
    probes_needed = np.log(1.0 - confidence) / np.log(1.0 - p)
    return float(probes_needed / rate_pps)


def internet_wide_rate(
    telescope_pps: float, telescope_size: int = PAPER_TELESCOPE_SIZE
) -> float:
    """Extrapolate a telescope-local packet rate to an Internet-wide rate.

    A campaign hitting the telescope at ``telescope_pps`` and targeting the
    whole space uniformly is probing the Internet at
    ``telescope_pps / (telescope_size / 2^32)`` packets per second.
    """
    check_positive("telescope_pps", telescope_pps)
    return telescope_pps / hit_probability_per_probe(telescope_size)


def coverage_estimate(
    distinct_destinations: int, telescope_size: int = PAPER_TELESCOPE_SIZE
) -> float:
    """Estimate a scan's IPv4 coverage from the telescope addresses it hit.

    A uniform scan covering fraction ``c`` of IPv4 is expected to hit
    ``c * telescope_size`` distinct monitored addresses; inverting gives the
    estimator used in Sections 6.4 and 6.8.  Clamped to [0, 1].
    """
    check_positive("telescope_size", telescope_size)
    if distinct_destinations < 0:
        raise ValueError("distinct_destinations must be non-negative")
    return min(1.0, distinct_destinations / telescope_size)
