"""Human-readable formatting used by the reporting layer and benchmarks."""

from __future__ import annotations

from typing import List, Sequence


def format_count(value: float) -> str:
    """Format a count the way the paper does: ``11 million``, ``33 K``, ``1.3 M``."""
    value = float(value)
    if value >= 1e9:
        return f"{value / 1e9:.1f} B"
    if value >= 1e6:
        scaled = value / 1e6
        return f"{scaled:.0f} million" if scaled >= 10 else f"{scaled:.1f} M"
    if value >= 1e3:
        return f"{value / 1e3:.0f} K"
    return f"{value:.0f}"


def format_percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string, e.g. ``0.153 -> '15.3%'``."""
    return f"{fraction * 100:.{digits}f}%"


def format_rate_bps(bits_per_second: float) -> str:
    """Format a bit rate: ``14 Mbps``, ``0.3 Gbps``."""
    if bits_per_second >= 1e9:
        return f"{bits_per_second / 1e9:.1f} Gbps"
    if bits_per_second >= 1e6:
        return f"{bits_per_second / 1e6:.1f} Mbps"
    if bits_per_second >= 1e3:
        return f"{bits_per_second / 1e3:.1f} Kbps"
    return f"{bits_per_second:.1f} bps"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], align_right: bool = True
) -> str:
    """Render a plain-text table with aligned columns.

    Every row must have the same number of cells as ``headers``; cells are
    stringified with ``str``.
    """
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(cells):
            parts.append(cell.rjust(widths[j]) if align_right and j > 0 else cell.ljust(widths[j]))
        return "  ".join(parts).rstrip()

    lines = [fmt_row(list(headers)), fmt_row(["-" * w for w in widths])]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
