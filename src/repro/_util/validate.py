"""Argument validation helpers.

These raise ``ValueError``/``TypeError`` with uniform messages so that the
public API fails loudly and consistently on bad input.
"""

from __future__ import annotations

import numbers
from typing import Optional


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    _check_number(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    _check_number(name, value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    _check_number(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def check_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> float:
    """Require ``low <= value <= high`` (either bound may be ``None``)."""
    _check_number(name, value)
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value!r}")
    return value


def check_header_field(name: str, value: int, bits: int) -> int:
    """Require an integer fitting an unsigned ``bits``-wide wire field.

    The single bound check behind :func:`check_port` / :func:`check_ttl` /
    :func:`check_ip` and :class:`repro.telescope.packet.SynPacket`; the
    static rule RPR003 checks the same widths at lint time.
    """
    if isinstance(bits, bool) or not isinstance(bits, numbers.Integral) or bits <= 0:
        raise ValueError(f"bits must be a positive integer, got {bits!r}")
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    bound = 1 << int(bits)
    if not 0 <= int(value) < bound:
        raise ValueError(f"{name} must be within [0, {bound - 1}], got {value!r}")
    return int(value)


def check_port(name: str, value: int) -> int:
    """Require a valid TCP port number (0–65535)."""
    return check_header_field(name, value, 16)


def check_ttl(name: str, value: int) -> int:
    """Require a valid IPv4 TTL (0–255)."""
    return check_header_field(name, value, 8)


def check_ip(name: str, value: int) -> int:
    """Require an IPv4 address as an unsigned 32-bit integer."""
    return check_header_field(name, value, 32)


def _check_number(name: str, value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
