"""Argument validation helpers.

These raise ``ValueError``/``TypeError`` with uniform messages so that the
public API fails loudly and consistently on bad input.
"""

from __future__ import annotations

import numbers
from typing import Optional


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    _check_number(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    _check_number(name, value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    _check_number(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def check_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> float:
    """Require ``low <= value <= high`` (either bound may be ``None``)."""
    _check_number(name, value)
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value!r}")
    return value


def check_port(name: str, value: int) -> int:
    """Require a valid TCP port number (0–65535)."""
    if not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer port, got {type(value).__name__}")
    if not 0 <= int(value) <= 0xFFFF:
        raise ValueError(f"{name} must be within [0, 65535], got {value!r}")
    return int(value)


def _check_number(name: str, value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
