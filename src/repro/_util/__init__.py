"""Internal shared helpers for the :mod:`repro` package.

Nothing in this package is part of the public API; external code should
import from :mod:`repro` or its documented subpackages instead.
"""

from repro._util.rng import RandomState, as_generator, derive_rng, spawn_rngs
from repro._util.validate import (
    check_fraction,
    check_header_field,
    check_ip,
    check_non_negative,
    check_port,
    check_positive,
    check_range,
    check_ttl,
)
from repro._util.stats import (
    empirical_cdf,
    fraction_at_most,
    pearson_r,
    quantiles,
    weighted_choice_indices,
)
from repro._util.fmt import (
    format_count,
    format_percent,
    format_rate_bps,
    format_table,
)

__all__ = [
    "RandomState",
    "as_generator",
    "derive_rng",
    "spawn_rngs",
    "check_fraction",
    "check_header_field",
    "check_ip",
    "check_non_negative",
    "check_port",
    "check_positive",
    "check_range",
    "check_ttl",
    "empirical_cdf",
    "fraction_at_most",
    "pearson_r",
    "quantiles",
    "weighted_choice_indices",
    "format_count",
    "format_percent",
    "format_rate_bps",
    "format_table",
]
