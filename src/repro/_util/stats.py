"""Small statistics helpers shared across analyses.

The heavy lifting (KS tests, correlation p-values) uses :mod:`scipy.stats`;
these wrappers exist to centralise edge-case handling (empty inputs, constant
series) so analysis modules stay readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np
from scipy import stats as _sps


def empirical_cdf(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``.

    Returns ``(xs, ps)`` where ``ps[i]`` is the fraction of observations
    ``<= xs[i]``.  ``xs`` is sorted and deduplicated.  Empty input yields two
    empty arrays.
    """
    arr = np.asarray(sorted(values), dtype=float)
    if arr.size == 0:
        return np.array([]), np.array([])
    xs, counts = np.unique(arr, return_counts=True)
    ps = np.cumsum(counts) / arr.size
    return xs, ps


def fraction_at_most(values: Iterable[float], threshold: float) -> float:
    """Fraction of ``values`` that are ``<= threshold`` (0.0 for empty)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.count_nonzero(arr <= threshold) / arr.size)


def quantiles(values: Iterable[float], qs: Sequence[float]) -> np.ndarray:
    """Quantiles of ``values`` at probabilities ``qs``.

    Raises ``ValueError`` on empty input — silently returning NaNs would let
    downstream report code print nonsense.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take quantiles of an empty sequence")
    return np.quantile(arr, qs)


def pearson_r(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Pearson correlation ``(r, p)``; ``(nan, 1.0)`` for degenerate input.

    Degenerate means fewer than 3 points or a constant series — scipy would
    raise or warn, and the paper's correlations are only quoted on real
    spreads anyway.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape:
        raise ValueError("x and y must have the same length")
    if xa.size < 3 or np.all(xa == xa[0]) or np.all(ya == ya[0]):
        return float("nan"), 1.0
    r, p = _sps.pearsonr(xa, ya)
    return float(r), float(p)


def ks_two_sample(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Two-sample Kolmogorov–Smirnov test ``(statistic, pvalue)``.

    Used by the vulnerability-event analysis to decide whether post-event
    scanning has returned to the baseline distribution.
    """
    aa = np.asarray(a, dtype=float)
    ba = np.asarray(b, dtype=float)
    if aa.size == 0 or ba.size == 0:
        raise ValueError("KS test requires non-empty samples")
    stat, p = _sps.ks_2samp(aa, ba)
    return float(stat), float(p)


def weighted_choice_indices(
    rng: np.random.Generator, weights: Sequence[float], size: int
) -> np.ndarray:
    """Sample ``size`` indices proportionally to ``weights``."""
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return rng.choice(w.size, size=size, p=w / total)


def gini_coefficient(values: Iterable[float]) -> float:
    """Gini coefficient of ``values`` — used to quantify traffic skew
    (a few scans producing most packets, cf. Richter & Berger)."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot compute Gini of an empty sequence")
    if np.any(arr < 0):
        raise ValueError("Gini is undefined for negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    # Standard formula over sorted values.
    index = np.arange(1, n + 1)
    return float((2 * np.sum(index * arr) / (n * total)) - (n + 1) / n)
