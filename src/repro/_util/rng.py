"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  The helpers here normalise both into
generators and derive independent child streams so that adding a new
stochastic consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple, Union

import numpy as np

#: Anything accepted where a source of randomness is required.
RandomState = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0x5CA9  # arbitrary but fixed: "SCAN" leetish


def as_generator(state: RandomState) -> np.random.Generator:
    """Normalise ``state`` into a :class:`numpy.random.Generator`.

    ``None`` maps to a fixed default seed so that library behaviour is
    reproducible unless the caller explicitly asks for variation.  An existing
    generator is returned as-is (shared, not copied).
    """
    if state is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(state, np.random.Generator):
        return state
    if isinstance(state, (int, np.integer)):
        return np.random.default_rng(int(state))
    raise TypeError(f"cannot build a Generator from {type(state).__name__}")


def derive_rng(state: RandomState, *tokens: object) -> np.random.Generator:
    """Derive an independent generator keyed by ``tokens``.

    The derivation is stable: the same ``state`` and tokens always produce the
    same stream, regardless of how many other streams were derived in between
    and without consuming draws from ``state`` (except for the documented
    fallback below).  Tokens are hashed structurally (via ``repr``) so
    strings, ints and tuples all work.

    The child seed is built from the *entropy words* of ``state`` (seed
    integers, including ``SeedSequence`` list entropy and spawn keys) plus a
    128-bit digest of the tokens.  Only a generator whose bit generator does
    not expose its seed sequence falls back to consuming one draw for
    entropy.
    """
    seed_seq = np.random.SeedSequence(_entropy_words(state) + _token_words(tokens))
    return np.random.default_rng(seed_seq)


def _token_words(tokens: tuple) -> List[int]:
    """Mix tokens into two stable 64-bit words (keyed, order-sensitive)."""
    digest = hashlib.blake2b(digest_size=16, person=b"repro.rng")
    for token in tokens:
        digest.update(repr(token).encode("utf-8"))
        digest.update(b"\x1f")  # separator: ("ab",) != ("a", "b")
    raw = digest.digest()
    return [
        int.from_bytes(raw[:8], "little"),
        int.from_bytes(raw[8:], "little"),
    ]


def _entropy_words(state: RandomState) -> List[int]:
    """Seed integers identifying ``state`` without consuming draws."""
    if state is None:
        return [_DEFAULT_SEED, 1]
    if isinstance(state, (int, np.integer)):
        # Same shape as the Generator branch (one word + length, no spawn
        # key) so derive_rng(7, ...) == derive_rng(default_rng(7), ...).
        return [int(state), 1]
    if isinstance(state, np.random.Generator):
        seq = getattr(state.bit_generator, "seed_seq", None)
        if isinstance(seq, np.random.SeedSequence):
            entropy = seq.entropy
            if entropy is None:
                words: List[int] = []
            elif isinstance(entropy, (int, np.integer)):
                words = [int(entropy)]
            else:  # list-seeded: SeedSequence([a, b, ...])
                words = [int(word) for word in entropy]
            # spawn_key distinguishes SeedSequence.spawn() children; the
            # length word keeps [5] and [5, 0] (child 0 of 5) distinct.
            return words + [len(words)] + [int(k) for k in seq.spawn_key]
        # Opaque bit generator: consume one draw (documented fallback).
        return [int(state.integers(0, 2 ** 63))]
    raise TypeError(f"cannot extract entropy from {type(state).__name__}")


def stream_signature(state: RandomState) -> Tuple[int, ...]:
    """Stable integer words identifying ``state``'s stream.

    Two states with equal signatures produce identical :func:`derive_rng`
    children for the same tokens, so the signature is a safe cache-key
    component (see ``repro.exec.cache``).  For seeds and seed-sequence-backed
    generators this never consumes draws; an opaque bit generator falls back
    to consuming one draw, exactly like :func:`derive_rng`.
    """
    return tuple(_entropy_words(state))


def spawn_rngs(state: RandomState, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from ``state``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seq = np.random.SeedSequence(_entropy_of(state))
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def _entropy_of(state: RandomState) -> int:
    if state is None:
        return _DEFAULT_SEED
    if isinstance(state, (int, np.integer)):
        return int(state)
    if isinstance(state, np.random.Generator):
        # Use a single draw as entropy; acceptable because the caller handed
        # us a live generator and expects it to be consumed.
        return int(state.integers(0, 2**63))
    raise TypeError(f"cannot extract entropy from {type(state).__name__}")


def uniform_order_statistics(
    rng: np.random.Generator, count: int, start: float, end: float
) -> np.ndarray:
    """Sorted uniform samples in ``[start, end)`` — arrival times of a
    homogeneous process conditioned on ``count`` events."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if end < start:
        raise ValueError("end must be >= start")
    times = rng.uniform(start, end, size=count)
    times.sort()
    return times
