"""Deterministic random-number plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  The helpers here normalise both into
generators and derive independent child streams so that adding a new
stochastic consumer never perturbs the draws of existing ones.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

#: Anything accepted where a source of randomness is required.
RandomState = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0x5CA9  # arbitrary but fixed: "SCAN" leetish


def as_generator(state: RandomState) -> np.random.Generator:
    """Normalise ``state`` into a :class:`numpy.random.Generator`.

    ``None`` maps to a fixed default seed so that library behaviour is
    reproducible unless the caller explicitly asks for variation.  An existing
    generator is returned as-is (shared, not copied).
    """
    if state is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(state, np.random.Generator):
        return state
    if isinstance(state, (int, np.integer)):
        return np.random.default_rng(int(state))
    raise TypeError(f"cannot build a Generator from {type(state).__name__}")


def derive_rng(state: RandomState, *tokens: object) -> np.random.Generator:
    """Derive an independent generator keyed by ``tokens``.

    The derivation is stable: the same ``state`` and tokens always produce the
    same stream, regardless of how many other streams were derived in between.
    Tokens are hashed structurally (via ``repr``) so strings, ints and tuples
    all work.
    """
    base = as_generator(state)
    # Pull entropy from the base stream deterministically by hashing tokens
    # together with a fixed draw; this avoids consuming base draws per call.
    key = np.uint64(0x9E3779B97F4A7C15)
    for token in tokens:
        for byte in repr(token).encode("utf-8"):
            key = np.uint64((int(key) ^ byte) * 0x100000001B3 % (1 << 64))
    seed_seq = np.random.SeedSequence([int(base.bit_generator.seed_seq.entropy or 0)
                                       if hasattr(base.bit_generator, "seed_seq") else 0,
                                       int(key) & 0xFFFFFFFF, int(key) >> 32])
    return np.random.default_rng(seed_seq)


def spawn_rngs(state: RandomState, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from ``state``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seq = np.random.SeedSequence(_entropy_of(state))
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def _entropy_of(state: RandomState) -> int:
    if state is None:
        return _DEFAULT_SEED
    if isinstance(state, (int, np.integer)):
        return int(state)
    if isinstance(state, np.random.Generator):
        # Use a single draw as entropy; acceptable because the caller handed
        # us a live generator and expects it to be consumed.
        return int(state.integers(0, 2**63))
    raise TypeError(f"cannot extract entropy from {type(state).__name__}")


def uniform_order_statistics(
    rng: np.random.Generator, count: int, start: float, end: float
) -> np.ndarray:
    """Sorted uniform samples in ``[start, end)`` — arrival times of a
    homogeneous process conditioned on ``count`` events."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if end < start:
        raise ValueError("end must be >= start")
    times = rng.uniform(start, end, size=count)
    times.sort()
    return times
