"""The streaming execution engine: source → windows → incremental scans.

:class:`StreamEngine` wires the pieces together: it pulls bounded windows
from a :class:`~repro.stream.source.StreamSource`, feeds them to an
:class:`~repro.stream.incremental.IncrementalScanIdentifier`, persists
durable checkpoints at a configurable cadence, and refreshes a
:class:`~repro.stream.stats.StreamStats` snapshot for progress reporting.

Checkpoint discipline: a snapshot is saved *after* the window that
completes each cadence interval is committed, and *before* the progress
callback fires — so however the process dies afterwards (including inside
the callback), the newest checkpoint covers exactly the windows already
reported.  A final snapshot lands before finalisation, which makes
re-running a completed stream nearly free: resume skips every packet and
finalisation replays from the restored state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.core.campaigns import CampaignCriteria, ScanTable
from repro.core.fingerprints import ToolFingerprinter
from repro.stream.analyses import AnalysisSuite
from repro.stream.checkpoint import CheckpointStore
from repro.stream.incremental import IncrementalScanIdentifier
from repro.stream.source import (
    DEFAULT_BATCH_SIZE,
    BatchStreamSource,
    IterStreamSource,
    StreamSource,
    TraceStreamSource,
)
from repro.stream.stats import StreamStats, peak_rss_bytes, wall_clock
from repro.telescope.packet import PacketBatch

ProgressCallback = Callable[[StreamStats], None]

#: Array-name prefix separating analysis-suite state from identifier state
#: inside one shared checkpoint payload.
ANALYSIS_PREFIX = "an__"


def _split_analysis_arrays(arrays: dict) -> dict:
    """Pop the ``an__``-prefixed arrays out of a checkpoint payload."""
    names = [name for name in arrays if name.startswith(ANALYSIS_PREFIX)]
    return {
        name[len(ANALYSIS_PREFIX):]: arrays.pop(name) for name in names
    }


@dataclass
class StreamConfig:
    """Knobs of one streaming run."""

    #: Maximum packets per window (None = native chunk sizes).
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE
    #: Optional absolute-time alignment: windows never span a
    #: ``floor(time / window_s)`` boundary.
    window_s: Optional[float] = None
    #: Directory for durable checkpoints (None disables checkpointing, as
    #: does a source without a stable identity).
    checkpoint_dir: Optional[Union[str, Path]] = None
    #: Save a checkpoint every this many committed windows (plus one final
    #: snapshot before finalisation).
    checkpoint_every: int = 8
    #: Tolerate a cleanly-truncated final trace batch (killed writer).
    strict: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")


@dataclass
class StreamResult:
    """Everything a streaming run produced."""

    scans: ScanTable
    stats: StreamStats
    #: True when the run restored a prior checkpoint instead of starting
    #: from the first packet.
    resumed: bool = False
    #: Content key of the run's checkpoint (None when checkpointing was off).
    checkpoint_key: Optional[str] = None
    checkpoint_path: Optional[Path] = None
    truncated_source: bool = field(default=False)
    #: The incremental analysis suite (when one rode along); it has
    #: consumed every window and awaits ``consume_scans`` + ``finalize``.
    analyses: Optional[AnalysisSuite] = None
    #: True when a ``stop`` callback ended the run between windows (the
    #: final checkpoint still covers every committed window, so a later
    #: run resumes where this one left off).
    interrupted: bool = False


class StreamEngine:
    """Bounded-memory, resumable scan identification over packet streams."""

    def __init__(
        self,
        criteria: Optional[CampaignCriteria] = None,
        fingerprinter: Optional[ToolFingerprinter] = None,
        config: Optional[StreamConfig] = None,
    ):
        self.criteria = criteria if criteria is not None else CampaignCriteria()
        self.fingerprinter = (
            fingerprinter if fingerprinter is not None else ToolFingerprinter()
        )
        self.config = config if config is not None else StreamConfig()

    def run(
        self,
        source: StreamSource,
        progress: Optional[ProgressCallback] = None,
        analyses: Optional[AnalysisSuite] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> StreamResult:
        """Stream ``source`` to completion and return the scan table.

        ``progress`` (when given) is invoked with the refreshed
        :class:`StreamStats` after every committed window.  ``analyses``
        (when given) consumes every window alongside the identifier, rides
        in the same checkpoints (under an ``an__`` array prefix, with its
        config joined into the key), and is handed back on the result for
        the caller to feed scans into and finalise.

        ``stop`` (when given) is polled after every committed window; the
        first ``True`` ends the run at that window boundary — a graceful
        interrupt.  The final checkpoint is still written (covering every
        window consumed so far) and the result carries ``interrupted=True``
        with the partial scans finalised, so the caller can report and a
        re-run resumes from the flushed checkpoint.
        """
        config = self.config
        identifier = IncrementalScanIdentifier(self.criteria, self.fingerprinter)

        store: Optional[CheckpointStore] = None
        key: Optional[str] = None
        resumed = False
        if config.checkpoint_dir is not None:
            identity = source.identity()
            if identity is not None:
                store = CheckpointStore(config.checkpoint_dir)
                key = store.key_for(
                    identity, self.criteria, self.fingerprinter,
                    config.batch_size, config.window_s,
                    analyses=(
                        analyses.key_material() if analyses is not None
                        else None
                    ),
                )
                arrays = store.load(key)
                if arrays is not None:
                    suite_arrays = _split_analysis_arrays(arrays)
                    identifier.restore(arrays)
                    if analyses is not None and suite_arrays:
                        analyses.restore(suite_arrays)
                    resumed = identifier.packets_consumed > 0

        stats = StreamStats(resumed_packets=identifier.packets_consumed)
        started = wall_clock()
        self._refresh(stats, identifier, started, analyses)

        windows_since_save = 0
        interrupted = False
        for window in source.windows(skip_packets=identifier.packets_consumed):
            identifier.consume(window)
            if analyses is not None:
                analyses.consume(window)
            windows_since_save += 1
            if store is not None and windows_since_save >= config.checkpoint_every:
                store.save(key, self._snapshot(identifier, analyses))
                windows_since_save = 0
            self._refresh(stats, identifier, started, analyses)
            if progress is not None:
                progress(stats)
            if stop is not None and stop():
                interrupted = True
                break

        checkpoint_path: Optional[Path] = None
        if store is not None:
            # Final snapshot before finalisation mutates the open sessions:
            # a re-run resumes past every packet and replays finalisation
            # from this state.
            checkpoint_path = store.save(key, self._snapshot(identifier, analyses))
        scans = identifier.finalize()
        self._refresh(stats, identifier, started, analyses)
        stats.scans = len(scans)
        return StreamResult(
            scans=scans,
            stats=stats,
            resumed=resumed,
            checkpoint_key=key,
            checkpoint_path=checkpoint_path,
            truncated_source=getattr(source, "truncated", False),
            analyses=analyses,
            interrupted=interrupted,
        )

    @staticmethod
    def _snapshot(
        identifier: IncrementalScanIdentifier,
        analyses: Optional[AnalysisSuite],
    ) -> dict:
        payload = identifier.snapshot()
        if analyses is not None:
            for name, array in analyses.snapshot().items():
                payload[ANALYSIS_PREFIX + name] = array
        return payload

    @staticmethod
    def _refresh(
        stats: StreamStats,
        identifier: IncrementalScanIdentifier,
        started: float,
        analyses: Optional[AnalysisSuite] = None,
    ) -> None:
        stats.packets = identifier.packets_consumed
        stats.windows = identifier.windows_consumed
        stats.open_sessions = identifier.open_sessions
        stats.open_packets = identifier.open_packets
        stats.candidate_sessions = identifier.candidate_sessions
        stats.scans = identifier.scans_found
        stats.sessions_discarded = identifier.sessions_discarded
        stats.buffered_bytes = identifier.buffered_bytes
        stats.peak_open_session_bytes = identifier.peak_buffered_bytes
        if analyses is not None:
            stats.analysis_state_bytes = analyses.state_nbytes()
        stats.wall_s = wall_clock() - started
        stats.peak_rss_bytes = peak_rss_bytes()


def as_stream_source(
    capture: Union[StreamSource, PacketBatch, str, Path, Iterable[PacketBatch]],
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    window_s: Optional[float] = None,
    strict: bool = True,
    mmap: Optional[bool] = None,
) -> StreamSource:
    """Coerce common capture shapes into a :class:`StreamSource`."""
    if isinstance(capture, StreamSource):
        return capture
    if isinstance(capture, PacketBatch):
        return BatchStreamSource(capture, batch_size, window_s)
    if isinstance(capture, (str, Path)):
        return TraceStreamSource(
            capture, batch_size, window_s, strict=strict, mmap=mmap
        )
    return IterStreamSource(capture, batch_size, window_s)


def identify_scans_stream(
    capture: Union[StreamSource, PacketBatch, str, Path, Iterable[PacketBatch]],
    criteria: Optional[CampaignCriteria] = None,
    fingerprinter: Optional[ToolFingerprinter] = None,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    window_s: Optional[float] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    mmap: Optional[bool] = None,
) -> ScanTable:
    """Streaming drop-in for :func:`repro.core.campaigns.identify_scans`.

    Produces a column-by-column identical :class:`ScanTable` at any batch
    size; see :mod:`repro.stream.incremental` for why.
    """
    source = as_stream_source(capture, batch_size, window_s, mmap=mmap)
    engine = StreamEngine(
        criteria,
        fingerprinter,
        StreamConfig(
            batch_size=batch_size,
            window_s=window_s,
            checkpoint_dir=checkpoint_dir,
        ),
    )
    return engine.run(source, progress=progress).scans
