"""Incremental paper analyses: the batch report on the streaming substrate.

The batch pipeline computes the paper's longitudinal results — §4.4
volatility, §6.6 recurrence, §4.2 trends and churn — from fully
materialised captures.  This module provides *mergeable accumulators* that
compute the exact same numbers from time-ordered packet windows, following
the :class:`~repro.stream.incremental.IncrementalScanIdentifier` pattern:
``consume`` windows (and ``consume_scans`` finalised scan-table chunks),
``merge`` accumulators from source-disjoint shards, ``snapshot`` /
``restore`` through flat numpy arrays for durable checkpoints, and
``finalize`` into the same report values the batch functions return.

Why the results are field-by-field **equal** to the batch path at any
window size and shard count:

* Every tally (per-port packets, per-(/16, week) activity, per-day first
  appearances) is an exact integer count kept in sorted-key order; merging
  sorted tallies is associative and reproduces one global ``np.unique``.
* Distinct-(source, week) dedupe is windowed: the stream is time-ordered,
  so only the weeks at the watermark can still receive packets — older
  weeks retire their source sets into the sparse tally and free the memory.
* Float statistics go through the same pure finalisers as the batch path
  (:func:`~repro.core.volatility.summaries_from_counts`,
  :func:`~repro.core.trends.concentration_from_packets`,
  :func:`~repro.core.recurrence.recurrence_stats_arrays`,
  :func:`~repro.core.churn.fit_population_curve`), fed in the batch path's
  canonical orders (sorted tally keys; ``lexsort((start, src_ip))`` scan
  rows), so even order-dependent pairwise float sums agree bit for bit.

Merging follows the shard contract of :mod:`repro.stream.sharded`: the two
accumulators must have consumed *source-disjoint* packet streams (per-source
facts — first appearance, distinct weeks — cannot be reconciled after the
fact when a source is split across accumulators).

Memory model: tallies grow with distinct (/16, week) and (port,) keys;
scan-side buffers grow with the result set (scans, not packets); the only
packet-rate structure — the open-week source sets — is bounded by the
sources active within the watermark's week.  Nothing scales with capture
length in packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.campaigns import ScanTable
from repro.core.churn import first_appearance_days, fit_population_curve
from repro.core.pipeline import EXCLUDED_STUDY_PORTS
from repro.core.recurrence import (
    daily_cadence_sources,
    recurrence_stats_arrays,
    split_scan_times,
)
from repro.core.report import (
    ChurnReport,
    PaperReport,
    RecurrenceReport,
    TrendsReport,
)
from repro.core.trends import (
    CLASSIC_PORTS,
    concentration_from_packets,
    entropy_from_counts,
    intensity_from_arrays,
)
from repro.core.volatility import (
    METRICS,
    dense_weekly_counts,
    pack_block_week,
    packet_weekly_tally,
    scan_weekly_tally,
    summaries_from_counts,
    week_index,
    weeks_in_period,
)
from repro.enrichment.types import ScannerType
from repro.stream.incremental import StreamOrderError
from repro.telescope.addresses import slash16_of
from repro.telescope.packet import PacketBatch

#: Bumped when any accumulator's snapshot layout changes; part of the
#: checkpoint key material, so old analysis checkpoints miss cleanly.
ANALYSES_SCHEMA_VERSION = 1


class _SparseTally:
    """A sorted-key ``int64`` tally, mergeable by sorted reduction.

    The same idiom as the per-session port tally of
    :mod:`repro.stream.incremental`: keys stay sorted-distinct, adds
    concatenate + stable-argsort + ``np.add.reduceat``.  Sorted keys are
    load-bearing — entropy finalisers sum in ``np.unique`` key order.
    """

    __slots__ = ("keys", "counts")

    def __init__(
        self,
        keys: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
    ):
        self.keys = keys if keys is not None else np.array([], dtype=np.int64)
        self.counts = (
            counts if counts is not None else np.array([], dtype=np.int64)
        )

    def add(self, keys: np.ndarray, counts: np.ndarray) -> None:
        """Fold a sorted-distinct ``(keys, counts)`` pair into the tally."""
        if keys.size == 0:
            return
        if self.keys.size == 0:
            self.keys = keys.astype(np.int64, copy=True)
            self.counts = counts.astype(np.int64, copy=True)
            return
        allk = np.concatenate([self.keys, keys.astype(np.int64, copy=False)])
        allc = np.concatenate(
            [self.counts, counts.astype(np.int64, copy=False)]
        )
        order = np.argsort(allk, kind="stable")
        allk, allc = allk[order], allc[order]
        firsts = np.flatnonzero(
            np.concatenate(([True], allk[1:] != allk[:-1]))
        )
        self.keys = allk[firsts]
        self.counts = np.add.reduceat(allc, firsts)

    def merge(self, other: "_SparseTally") -> None:
        self.add(other.keys, other.counts)

    def pair(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.keys, self.counts

    def count_of(self, keys: np.ndarray) -> int:
        """Total multiplicity of ``keys`` (absent keys count zero)."""
        if self.keys.size == 0:
            return 0
        idx = np.minimum(
            np.searchsorted(self.keys, keys), self.keys.size - 1
        )
        hit = self.keys[idx] == keys
        return int(self.counts[idx][hit].sum())

    @property
    def nbytes(self) -> int:
        return int(self.keys.nbytes + self.counts.nbytes)


def _cat(chunks: List[np.ndarray], dtype) -> np.ndarray:
    """Concatenate a chunk list (typed empty array for the empty case)."""
    if not chunks:
        return np.array([], dtype=dtype)
    if len(chunks) == 1:
        return chunks[0].astype(dtype, copy=False)
    return np.concatenate(chunks).astype(dtype, copy=False)


class IncrementalVolatility:
    """Streaming §4.4: per-/16, per-week activity tallies.

    Packet and scan counts are exact sparse tallies.  The distinct-source
    metric needs a per-week dedupe; the stream's time order bounds it —
    once the watermark's week moves past week ``w``, no packet can land in
    ``w`` again, so ``w``'s source set is *retired*: counted per /16 into
    the sparse tally and dropped.  Only the weeks at the watermark hold
    live source sets.
    """

    def __init__(self, n_weeks: int):
        if n_weeks < 1:
            raise ValueError("n_weeks must be >= 1")
        self.n_weeks = n_weeks
        self.tallies: Dict[str, _SparseTally] = {
            metric: _SparseTally() for metric in METRICS
        }
        #: Sorted distinct /16 blocks of the consumed packets (the dense
        #: matrices' row index, matching the batch path's block universe).
        self.blocks = np.array([], dtype=np.int64)
        #: week -> sorted distinct sources still able to gain members.
        self._open_weeks: Dict[int, np.ndarray] = {}
        self.watermark = float("-inf")

    def consume(self, batch: PacketBatch) -> None:
        """Ingest one time-ordered packet window (study view)."""
        if len(batch) == 0:
            return
        t = batch.time
        tmin = float(t.min())
        if self.watermark != float("-inf") and tmin < self.watermark:
            raise StreamOrderError(
                f"window starts at t={tmin:.6f}, before the volatility "
                f"watermark {self.watermark:.6f}; week retirement needs a "
                f"time-ordered stream"
            )
        keys, counts = packet_weekly_tally(batch, self.n_weeks)
        self.tallies["packets"].add(keys, counts)
        self.blocks = np.union1d(
            self.blocks, np.unique(slash16_of(batch.src_ip)).astype(np.int64)
        )

        weeks = week_index(t, self.n_weeks)
        pairs = np.unique(
            (batch.src_ip.astype(np.uint64) << np.uint64(32))
            | weeks.astype(np.uint64)
        )
        pair_week = (pairs & np.uint64(0xFFFFFFFF)).astype(np.int64)
        pair_src = (pairs >> np.uint64(32)).astype(np.uint32)
        # Group the distinct (src, week) pairs by week; the stable sort
        # keeps each group's sources ascending (pairs are src-major).
        order = np.argsort(pair_week, kind="stable")
        pair_week, pair_src = pair_week[order], pair_src[order]
        firsts = np.flatnonzero(
            np.concatenate(([True], pair_week[1:] != pair_week[:-1]))
        )
        bounds = np.append(firsts, pair_week.size)
        for i in range(firsts.size):
            week = int(pair_week[firsts[i]])
            srcs = pair_src[firsts[i]:bounds[i + 1]]
            current = self._open_weeks.get(week)
            if current is None:
                self._open_weeks[week] = srcs.copy()
            else:
                self._open_weeks[week] = np.union1d(current, srcs)

        self.watermark = max(self.watermark, float(t.max()))
        self._retire_closed_weeks()

    def consume_scans(self, scans: ScanTable) -> None:
        """Fold finalised scans (study view) into the scan tally."""
        keys, counts = scan_weekly_tally(scans, self.n_weeks)
        self.tallies["scans"].add(keys, counts)

    def merge(self, other: "IncrementalVolatility") -> None:
        """Fold a source-disjoint shard's state into this one."""
        if other.n_weeks != self.n_weeks:
            raise ValueError("cannot merge volatility over different horizons")
        for metric in METRICS:
            self.tallies[metric].merge(other.tallies[metric])
        self.blocks = np.union1d(self.blocks, other.blocks)
        for week, srcs in other._open_weeks.items():
            current = self._open_weeks.get(week)
            self._open_weeks[week] = (
                srcs.copy() if current is None else np.union1d(current, srcs)
            )
        self.watermark = max(self.watermark, other.watermark)
        self._retire_closed_weeks()

    def finalize_counts(self) -> Dict[str, np.ndarray]:
        """Retire every open week and scatter into dense weekly matrices."""
        for week in sorted(self._open_weeks):
            self._retire_week(week)
        return dense_weekly_counts(self.blocks, self.n_weeks, {
            metric: self.tallies[metric].pair() for metric in METRICS
        })

    def state_nbytes(self) -> int:
        open_bytes = sum(srcs.nbytes for srcs in self._open_weeks.values())
        return (
            sum(t.nbytes for t in self.tallies.values())
            + int(self.blocks.nbytes) + open_bytes
        )

    @property
    def open_week_count(self) -> int:
        """Live dedupe sets — the bounded-memory gauge of this accumulator."""
        return len(self._open_weeks)

    def _retire_closed_weeks(self) -> None:
        if self.watermark == float("-inf"):
            return
        floor = int(week_index(
            np.array([self.watermark]), self.n_weeks
        )[0])
        for week in [w for w in self._open_weeks if w < floor]:
            self._retire_week(week)

    def _retire_week(self, week: int) -> None:
        srcs = self._open_weeks.pop(week)
        blocks, counts = np.unique(
            slash16_of(srcs).astype(np.int64), return_counts=True
        )
        self.tallies["sources"].add(
            pack_block_week(blocks, np.full(blocks.size, week, dtype=np.int64)),
            counts,
        )


class IncrementalTrends:
    """Streaming §4.2 trends: port/country tallies plus scan-side buffers.

    Packet-side state is a sorted port tally (exact counts, entropy-safe
    order).  Scan-side columns are buffered as chunks and sorted into the
    canonical scan-table order (``lexsort((start, src_ip))``) at finalise,
    so the order-dependent float means match the batch path bit for bit;
    this buffer grows with the *result set*, not the packet stream.
    """

    def __init__(self):
        self.ports = _SparseTally()
        self.total_packets = 0
        self._src: List[np.ndarray] = []
        self._start: List[np.ndarray] = []
        self._end: List[np.ndarray] = []
        self._packets: List[np.ndarray] = []
        self._country: List[np.ndarray] = []

    def consume(self, batch: PacketBatch) -> None:
        """Ingest one packet window (study view)."""
        if len(batch) == 0:
            return
        ports, counts = np.unique(
            batch.dst_port.astype(np.int64), return_counts=True
        )
        self.ports.add(ports, counts)
        self.total_packets += len(batch)

    def consume_scans(self, scans: ScanTable) -> None:
        """Buffer one chunk of finalised, enriched scans (study view)."""
        if len(scans) == 0:
            return
        self._src.append(scans.src_ip.copy())
        self._start.append(scans.start.copy())
        self._end.append(scans.end.copy())
        self._packets.append(scans.packets.copy())
        self._country.append(scans.country.astype(str))

    def merge(self, other: "IncrementalTrends") -> None:
        self.ports.merge(other.ports)
        self.total_packets += other.total_packets
        self._src.extend(other._src)
        self._start.extend(other._start)
        self._end.extend(other._end)
        self._packets.extend(other._packets)
        self._country.extend(other._country)

    def finalize(self) -> TrendsReport:
        if self.total_packets:
            classic = self.ports.count_of(
                np.asarray(CLASSIC_PORTS, dtype=np.int64)
            )
            classic_share = float(classic / self.total_packets)
            port_entropy = entropy_from_counts(self.ports.counts)
        else:
            classic_share = 0.0
            port_entropy = 0.0

        country = _cat(self._country, np.str_)
        if country.size:
            _, country_counts = np.unique(country, return_counts=True)
            country_entropy = entropy_from_counts(country_counts)
        else:
            country_entropy = 0.0

        src = _cat(self._src, np.uint32)
        if src.size == 0:
            return TrendsReport(
                classic_port_share=classic_share,
                port_entropy=port_entropy,
                country_entropy=country_entropy,
                concentration=None,
                intensity=None,
            )
        start = _cat(self._start, np.float64)
        order = np.lexsort((start, src))
        start = start[order]
        end = _cat(self._end, np.float64)[order]
        packets = _cat(self._packets, np.int64)[order]
        duration = np.maximum(end - start, 1.0)
        return TrendsReport(
            classic_port_share=classic_share,
            port_entropy=port_entropy,
            country_entropy=country_entropy,
            concentration=concentration_from_packets(packets),
            intensity=intensity_from_arrays(packets, duration),
        )

    def state_nbytes(self) -> int:
        chunk_bytes = sum(
            chunk.nbytes
            for store in (
                self._src, self._start, self._end, self._packets,
                self._country,
            )
            for chunk in store
        )
        return self.ports.nbytes + chunk_bytes


class IncrementalChurn:
    """Streaming §4.2 churn: first-appearance day per distinct source.

    The stream is time-ordered, so a source's first window is its first
    appearance; day indices are monotone in time, making the per-window
    :func:`~repro.core.churn.first_appearance_days` minima globally
    correct.  State is the sorted seen-source array plus ``days`` counters.
    """

    def __init__(self, days: int):
        if days < 1:
            raise ValueError("days must be >= 1")
        self.days = days
        self.seen = np.array([], dtype=np.uint32)
        self.per_day = np.zeros(days, dtype=np.int64)
        self.watermark = float("-inf")

    def consume(self, batch: PacketBatch) -> None:
        """Ingest one time-ordered packet window (study view)."""
        if len(batch) == 0:
            return
        tmin = float(batch.time.min())
        if self.watermark != float("-inf") and tmin < self.watermark:
            raise StreamOrderError(
                f"window starts at t={tmin:.6f}, before the churn watermark "
                f"{self.watermark:.6f}; first-appearance days need a "
                f"time-ordered stream"
            )
        self.watermark = max(self.watermark, float(batch.time.max()))
        srcs, first_days = first_appearance_days(batch, self.days)
        if self.seen.size:
            idx = np.minimum(
                np.searchsorted(self.seen, srcs), self.seen.size - 1
            )
            new = self.seen[idx] != srcs
        else:
            new = np.ones(srcs.size, dtype=bool)
        if np.any(new):
            self.per_day += np.bincount(
                first_days[new], minlength=self.days
            ).astype(np.int64, copy=False)
            self.seen = np.union1d(self.seen, srcs[new])

    def merge(self, other: "IncrementalChurn") -> None:
        """Fold a source-disjoint shard's state into this one."""
        if other.days != self.days:
            raise ValueError("cannot merge churn over different horizons")
        self.per_day += other.per_day
        self.seen = np.union1d(self.seen, other.seen)
        self.watermark = max(self.watermark, other.watermark)

    def finalize(self) -> ChurnReport:
        curve = np.cumsum(self.per_day)
        fit = fit_population_curve(curve) if curve[-1] > 0 else None
        return ChurnReport(curve=curve, fit=fit)

    def state_nbytes(self) -> int:
        return int(self.seen.nbytes + self.per_day.nbytes)


class IncrementalRecurrence:
    """Streaming §6.6 recurrence: per-source scan-time digests.

    Buffers ``(src, start, scanner_type)`` per scan-table chunk; finalise
    runs the shared :func:`~repro.core.recurrence.split_scan_times` /
    :func:`~repro.core.recurrence.recurrence_stats_arrays` pipeline, whose
    lexsort makes the result independent of chunk arrival order.
    """

    def __init__(self):
        self._src: List[np.ndarray] = []
        self._start: List[np.ndarray] = []
        self._types: List[np.ndarray] = []

    def consume_scans(self, scans: ScanTable) -> None:
        """Buffer one chunk of finalised, enriched scans (study view)."""
        if len(scans) == 0:
            return
        self._src.append(scans.src_ip.copy())
        self._start.append(scans.start.copy())
        self._types.append(np.array(
            [str(t) if t is not None else "" for t in scans.scanner_type]
        ))

    def merge(self, other: "IncrementalRecurrence") -> None:
        self._src.extend(other._src)
        self._start.extend(other._start)
        self._types.extend(other._types)

    def finalize(self) -> RecurrenceReport:
        src = _cat(self._src, np.uint32)
        start = _cat(self._start, np.float64)
        types = _cat(self._types, np.str_)
        overall = recurrence_stats_arrays(*split_scan_times(src, start))
        by_type: Dict[ScannerType, Any] = {}
        for stype in ScannerType:
            mask = types == stype.value
            if np.any(mask):
                by_type[stype] = recurrence_stats_arrays(
                    *split_scan_times(src[mask], start[mask])
                )
        inst = types == ScannerType.INSTITUTIONAL.value
        daily = daily_cadence_sources(
            *split_scan_times(src[inst], start[inst])
        )
        return RecurrenceReport(
            overall=overall, by_type=by_type, institutional_daily=daily
        )

    def state_nbytes(self) -> int:
        return sum(
            chunk.nbytes
            for store in (self._src, self._start, self._types)
            for chunk in store
        )


@dataclass(frozen=True)
class AnalysisConfig:
    """What one analysis suite computes over: the period and study filter."""

    year: int
    days: int
    exclude_ports: Tuple[int, ...] = tuple(sorted(EXCLUDED_STUDY_PORTS))

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be >= 1")

    @property
    def n_weeks(self) -> int:
        return weeks_in_period(self.days)

    def key_material(self) -> Dict[str, Any]:
        """Checkpoint-key contribution: a run with analyses attached can
        never restore a checkpoint written without them (or with different
        analysis settings) — the suite would silently miss windows."""
        return {
            "analyses_schema": ANALYSES_SCHEMA_VERSION,
            "year": self.year,
            "days": self.days,
            "exclude_ports": list(self.exclude_ports),
        }


class AnalysisSuite:
    """All incremental analyses of one period behind a single surface.

    The suite applies the §3.2 study filter itself (packets to, and scans
    whose primary port is, an excluded port are dropped), so feeding it the
    raw stream plus the raw finalised scan table reproduces the batch
    path's ``study_batch`` / ``study_scans`` views exactly.
    """

    def __init__(self, config: AnalysisConfig):
        self.config = config
        self.volatility = IncrementalVolatility(config.n_weeks)
        self.trends = IncrementalTrends()
        self.churn = IncrementalChurn(config.days)
        self.recurrence = IncrementalRecurrence()
        self.packets_consumed = 0       # raw packets, pre study filter
        self.study_packets = 0
        self.study_scans = 0
        self.windows_consumed = 0
        self.watermark = float("-inf")
        self._excluded = np.array(
            sorted(config.exclude_ports), dtype=np.uint16
        )

    # -- streaming ----------------------------------------------------------

    def consume(self, batch: PacketBatch) -> None:
        """Ingest one raw, time-ordered packet window."""
        self.windows_consumed += 1
        n = len(batch)
        if n == 0:
            return
        tmin = float(batch.time.min())
        if self.packets_consumed and tmin < self.watermark:
            raise StreamOrderError(
                f"window starts at t={tmin:.6f}, before the stream watermark "
                f"{self.watermark:.6f}; the incremental analyses need a "
                f"time-ordered stream"
            )
        self.watermark = max(self.watermark, float(batch.time.max()))
        self.packets_consumed += n
        if self._excluded.size:
            batch = batch.where(
                ~np.isin(batch.dst_port, self._excluded)
            )
        if len(batch) == 0:
            return
        self.study_packets += len(batch)
        self.volatility.consume(batch)
        self.trends.consume(batch)
        self.churn.consume(batch)

    def consume_scans(self, scans: ScanTable) -> None:
        """Fold finalised, *enriched* scans in (each scan exactly once)."""
        if len(scans) == 0:
            return
        if self._excluded.size:
            scans = scans.select(
                ~np.isin(scans.primary_port, self._excluded)
            )
        if len(scans) == 0:
            return
        self.study_scans += len(scans)
        self.volatility.consume_scans(scans)
        self.trends.consume_scans(scans)
        self.recurrence.consume_scans(scans)

    def merge(self, other: "AnalysisSuite") -> None:
        """Fold a source-disjoint shard's suite into this one."""
        if other.config != self.config:
            raise ValueError("cannot merge suites with different configs")
        self.volatility.merge(other.volatility)
        self.trends.merge(other.trends)
        self.churn.merge(other.churn)
        self.recurrence.merge(other.recurrence)
        self.packets_consumed += other.packets_consumed
        self.study_packets += other.study_packets
        self.study_scans += other.study_scans
        self.windows_consumed = max(
            self.windows_consumed, other.windows_consumed
        )
        self.watermark = max(self.watermark, other.watermark)

    def finalize(self) -> PaperReport:
        """Build the :class:`~repro.core.report.PaperReport`."""
        counts = self.volatility.finalize_counts()
        return PaperReport(
            year=self.config.year,
            days=self.config.days,
            packets=self.study_packets,
            scans=self.study_scans,
            trends=self.trends.finalize(),
            volatility=summaries_from_counts(counts),
            recurrence=self.recurrence.finalize(),
            churn=self.churn.finalize(),
        )

    # -- gauges / keys ------------------------------------------------------

    def state_nbytes(self) -> int:
        """Bytes held by accumulator state (the bounded-memory gauge)."""
        return (
            self.volatility.state_nbytes() + self.trends.state_nbytes()
            + self.churn.state_nbytes() + self.recurrence.state_nbytes()
        )

    def key_material(self) -> Dict[str, Any]:
        return self.config.key_material()

    # -- checkpoint state -----------------------------------------------------

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Serialise the suite into flat arrays (``np.savez``-safe)."""
        vol = self.volatility
        open_weeks = sorted(vol._open_weeks)
        out: Dict[str, np.ndarray] = {
            "counters": np.array(
                [self.packets_consumed, self.study_packets,
                 self.study_scans, self.windows_consumed],
                dtype=np.int64,
            ),
            "watermarks": np.array(
                [self.watermark, vol.watermark, self.churn.watermark],
                dtype=np.float64,
            ),
            "vol_blocks": vol.blocks,
            "vol_week_ids": np.array(open_weeks, dtype=np.int64),
            "vol_week_offsets": np.concatenate(([0], np.cumsum(
                [vol._open_weeks[w].size for w in open_weeks]
            ))).astype(np.int64),
            "vol_week_srcs": _cat(
                [vol._open_weeks[w] for w in open_weeks], np.uint32
            ),
            "tr_port_keys": self.trends.ports.keys,
            "tr_port_counts": self.trends.ports.counts,
            "tr_total_packets": np.array(
                [self.trends.total_packets], dtype=np.int64
            ),
            "tr_src": _cat(self.trends._src, np.uint32),
            "tr_start": _cat(self.trends._start, np.float64),
            "tr_end": _cat(self.trends._end, np.float64),
            "tr_packets": _cat(self.trends._packets, np.int64),
            "tr_country": _cat(self.trends._country, np.str_),
            "ch_seen": self.churn.seen,
            "ch_per_day": self.churn.per_day,
            "rec_src": _cat(self.recurrence._src, np.uint32),
            "rec_start": _cat(self.recurrence._start, np.float64),
            "rec_types": _cat(self.recurrence._types, np.str_),
        }
        for metric in METRICS:
            keys, cnts = vol.tallies[metric].pair()
            out[f"vol_{metric}_keys"] = keys
            out[f"vol_{metric}_counts"] = cnts
        return out

    def restore(self, arrays: Dict[str, np.ndarray]) -> None:
        """Rebuild suite state from a :meth:`snapshot` payload."""
        counters = arrays["counters"]
        self.packets_consumed = int(counters[0])
        self.study_packets = int(counters[1])
        self.study_scans = int(counters[2])
        self.windows_consumed = int(counters[3])
        watermarks = arrays["watermarks"]
        self.watermark = float(watermarks[0])

        vol = IncrementalVolatility(self.config.n_weeks)
        vol.watermark = float(watermarks[1])
        vol.blocks = arrays["vol_blocks"].copy()
        for metric in METRICS:
            vol.tallies[metric] = _SparseTally(
                arrays[f"vol_{metric}_keys"].copy(),
                arrays[f"vol_{metric}_counts"].copy(),
            )
        week_ids = arrays["vol_week_ids"]
        offsets = arrays["vol_week_offsets"]
        srcs = arrays["vol_week_srcs"]
        for i in range(week_ids.size):
            vol._open_weeks[int(week_ids[i])] = srcs[
                int(offsets[i]):int(offsets[i + 1])
            ].copy()
        self.volatility = vol

        trends = IncrementalTrends()
        trends.ports = _SparseTally(
            arrays["tr_port_keys"].copy(), arrays["tr_port_counts"].copy()
        )
        trends.total_packets = int(arrays["tr_total_packets"][0])
        if arrays["tr_src"].size:
            trends._src = [arrays["tr_src"].copy()]
            trends._start = [arrays["tr_start"].copy()]
            trends._end = [arrays["tr_end"].copy()]
            trends._packets = [arrays["tr_packets"].copy()]
            trends._country = [arrays["tr_country"].copy()]
        self.trends = trends

        churn = IncrementalChurn(self.config.days)
        churn.watermark = float(watermarks[2])
        churn.seen = arrays["ch_seen"].copy()
        churn.per_day = arrays["ch_per_day"].astype(np.int64, copy=True)
        self.churn = churn

        recurrence = IncrementalRecurrence()
        if arrays["rec_src"].size:
            recurrence._src = [arrays["rec_src"].copy()]
            recurrence._start = [arrays["rec_start"].copy()]
            recurrence._types = [arrays["rec_types"].copy()]
        self.recurrence = recurrence
