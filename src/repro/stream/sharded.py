"""Source-sharded parallel streaming: N identifiers over one capture.

Scan sessions are a per-source construct — every statistic the pipeline
derives from a session (boundaries, score, ports, modes, fingerprints)
depends only on that source's own packets.  Partitioning the sources into N
shards and running one :class:`~repro.stream.incremental.IncrementalScanIdentifier`
per shard therefore changes *nothing* about any individual session, and the
merged result is column-by-column bit-identical to the serial path at any
shard count and any window size: each shard's table is exactly the serial
table restricted to its sources, and the final ``lexsort((start, src_ip))``
over the concatenated records reproduces the serial sort order (no ties —
one source never appears in two shards).

Execution modes:

* ``workers=0`` walks the shards sequentially in this process (any
  restartable :class:`~repro.stream.source.StreamSource` works, including
  in-memory test sources);
* ``workers>=1`` runs shards in a :class:`~concurrent.futures.ProcessPoolExecutor`
  (the ``exec/parallel.py`` discipline: a module-level task function, pure
  in its arguments).  Each worker re-opens the ``.rtrace`` by path through
  the mmap reader, so the capture's pages are shared read-only between
  workers by the page cache instead of being pickled across the pool.

Checkpointing is per shard: each shard owns a content-addressed key
(``key_for(..., shard=(i, n))``) and its snapshot carries one extra array —
``shard_stream_pos``, the shard's position in the *raw* (unfiltered) packet
stream — because the identifier's own ``packets_consumed`` counts only the
shard's packets and cannot seek the shared source.  A killed sharded run
resumes each shard independently from its newest snapshot.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.campaigns import CampaignCriteria, ScanTable
from repro.core.fingerprints import ToolFingerprinter
from repro.stream.analyses import AnalysisConfig, AnalysisSuite
from repro.stream.checkpoint import CheckpointStore
from repro.stream.engine import (
    ANALYSIS_PREFIX,
    StreamConfig,
    _split_analysis_arrays,
    as_stream_source,
)
from repro.stream.incremental import IncrementalScanIdentifier
from repro.stream.source import (
    DEFAULT_BATCH_SIZE,
    StreamSource,
    TraceStreamSource,
)
from repro.stream.stats import StreamStats, peak_rss_bytes, wall_clock

PathLike = Union[str, Path]

#: Knuth's multiplicative hash constant (2^32 / phi), used to decorrelate
#: shard assignment from allocation structure in the source address space
#: (sequential /24 neighbours land on different shards).
_HASH_MULTIPLIER = np.uint64(2654435761)


def shard_of(src_ip: np.ndarray, n_shards: int) -> np.ndarray:
    """Shard index of each source address (vectorised, stable across runs).

    A multiplicative hash in ``uint64`` (no wraparound: ``2^32 * 2^32/phi``
    fits in 64 bits) followed by a modulo over the mixed low word.  Plain
    ``src_ip % n`` would striped-assign adjacent addresses, concentrating a
    sequentially-allocated scanner fleet onto few shards.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    mixed = (src_ip.astype(np.uint64) * _HASH_MULTIPLIER) & np.uint64(
        0xFFFFFFFF
    )
    return (mixed % np.uint64(n_shards)).astype(np.int64)


@dataclass
class ShardRun:
    """One shard's contribution to a sharded run."""

    shard: int
    scans: ScanTable
    stats: StreamStats
    resumed: bool = False
    checkpoint_key: Optional[str] = None
    #: Snapshot of the shard's analysis suite (plain arrays, so pool
    #: workers hand it back without pickling live accumulator objects);
    #: ``None`` when the run carried no analyses.
    analysis: Optional[Dict[str, np.ndarray]] = None


@dataclass
class ShardedStreamResult:
    """Everything a sharded streaming run produced."""

    scans: ScanTable
    #: Aggregate view (see :meth:`StreamStats.merge` for the semantics).
    stats: StreamStats
    shards: List[ShardRun] = field(default_factory=list)
    #: True when any shard restored a prior checkpoint.
    resumed: bool = False
    #: The merged analysis suite (when the run carried analyses); it has
    #: consumed every window and awaits ``consume_scans`` + ``finalize``.
    analyses: Optional[AnalysisSuite] = None


def merge_scan_tables(tables: List[ScanTable]) -> ScanTable:
    """Concatenate per-shard tables into serial finalisation order.

    The serial path sorts its records with ``lexsort((start, src_ip))``;
    re-sorting the concatenated shard columns the same way reproduces that
    order exactly, because ``(src, start)`` pairs are unique (a source lives
    in one shard, and one source never starts two sessions at the same
    instant).  Byte-identity of every column follows: the rows themselves
    were produced by the same scoring code over the same per-source packets.
    """
    tables = [t for t in tables if len(t)]
    if not tables:
        return ScanTable.empty()
    if len(tables) == 1:
        return tables[0]
    src = np.concatenate([t.src_ip for t in tables])
    start = np.concatenate([t.start for t in tables])
    order = np.lexsort((start, src))
    port_sets = [ports for t in tables for ports in t.port_sets]
    return ScanTable(
        src_ip=src[order],
        start=start[order],
        end=np.concatenate([t.end for t in tables])[order],
        packets=np.concatenate([t.packets for t in tables])[order],
        distinct_dsts=np.concatenate(
            [t.distinct_dsts for t in tables]
        )[order],
        port_sets=[port_sets[i] for i in order],
        primary_port=np.concatenate([t.primary_port for t in tables])[order],
        tool=np.concatenate([t.tool for t in tables])[order],
        match_fraction=np.concatenate(
            [t.match_fraction for t in tables]
        )[order],
        speed_pps=np.concatenate([t.speed_pps for t in tables])[order],
        coverage=np.concatenate([t.coverage for t in tables])[order],
        sequential=np.concatenate([t.sequential for t in tables])[order],
        window_mode=np.concatenate([t.window_mode for t in tables])[order],
        ttl_mode=np.concatenate([t.ttl_mode for t in tables])[order],
    )


def _run_one_shard(
    source: StreamSource,
    shard: int,
    n_shards: int,
    criteria: CampaignCriteria,
    fingerprinter: ToolFingerprinter,
    config: StreamConfig,
    progress: Optional[Callable[[int, StreamStats], None]] = None,
    analyses: Optional[AnalysisConfig] = None,
) -> ShardRun:
    """Stream one shard of ``source`` to completion.

    Runs in the calling process — the serial fallback and the body of the
    pool task both come here.  Pure in its arguments (RPR007): all state is
    constructed locally, and the only writes are the shard's own
    content-addressed checkpoint files.  ``analyses`` (when given) attaches
    a fresh :class:`~repro.stream.analyses.AnalysisSuite` that sees exactly
    the shard's packets; its snapshot rides back on the :class:`ShardRun`
    for the caller to merge (sources are disjoint across shards, which is
    precisely the suite's merge contract).
    """
    identifier = IncrementalScanIdentifier(criteria, fingerprinter)
    suite = AnalysisSuite(analyses) if analyses is not None else None

    store: Optional[CheckpointStore] = None
    key: Optional[str] = None
    resumed = False
    raw_pos = 0
    if config.checkpoint_dir is not None:
        identity = source.identity()
        if identity is not None:
            store = CheckpointStore(config.checkpoint_dir)
            key = store.key_for(
                identity, criteria, fingerprinter,
                config.batch_size, config.window_s,
                shard=(shard, n_shards),
                analyses=(
                    analyses.key_material() if analyses is not None else None
                ),
            )
            arrays = store.load(key)
            if arrays is not None:
                raw_pos = int(arrays.pop("shard_stream_pos")[0])
                suite_arrays = _split_analysis_arrays(arrays)
                identifier.restore(arrays)
                if suite is not None and suite_arrays:
                    suite.restore(suite_arrays)
                resumed = identifier.packets_consumed > 0 or raw_pos > 0

    stats = StreamStats(resumed_packets=identifier.packets_consumed)
    started = wall_clock()

    def refresh() -> None:
        stats.packets = identifier.packets_consumed
        stats.windows = identifier.windows_consumed
        stats.open_sessions = identifier.open_sessions
        stats.open_packets = identifier.open_packets
        stats.candidate_sessions = identifier.candidate_sessions
        stats.scans = identifier.scans_found
        stats.sessions_discarded = identifier.sessions_discarded
        stats.buffered_bytes = identifier.buffered_bytes
        stats.peak_open_session_bytes = identifier.peak_buffered_bytes
        if suite is not None:
            stats.analysis_state_bytes = suite.state_nbytes()
        stats.wall_s = wall_clock() - started
        stats.peak_rss_bytes = peak_rss_bytes()

    def save() -> None:
        payload = identifier.snapshot()
        # The shard's raw-stream position rides along *outside* the frozen
        # snapshot schema (it is popped again before ``restore``): the
        # identifier only counts the shard's packets, but a resume must
        # seek the shared, unfiltered source.
        payload["shard_stream_pos"] = np.array([raw_pos], dtype=np.int64)
        if suite is not None:
            for name, array in suite.snapshot().items():
                payload[ANALYSIS_PREFIX + name] = array
        store.save(key, payload)

    windows_since_save = 0
    for window in source.windows(skip_packets=raw_pos):
        raw_pos += len(window)
        if n_shards > 1:
            window = window.where(shard_of(window.src_ip, n_shards) == shard)
        identifier.consume(window)
        if suite is not None:
            suite.consume(window)
        windows_since_save += 1
        if store is not None and windows_since_save >= config.checkpoint_every:
            save()
            windows_since_save = 0
        if progress is not None:
            refresh()
            progress(shard, stats)

    if store is not None:
        save()
    scans = identifier.finalize()
    refresh()
    stats.scans = len(scans)
    return ShardRun(
        shard=shard, scans=scans, stats=stats, resumed=resumed,
        checkpoint_key=key,
        analysis=suite.snapshot() if suite is not None else None,
    )


def _shard_stream_task(
    path: str,
    batch_size: Optional[int],
    window_s: Optional[float],
    strict: bool,
    mmap: Optional[bool],
    shard: int,
    n_shards: int,
    criteria: CampaignCriteria,
    fingerprinter: ToolFingerprinter,
    config: StreamConfig,
    analyses: Optional[AnalysisConfig] = None,
) -> ShardRun:
    """Worker entry point: one shard, re-opened from the capture path.

    Must stay a module-level function (process pools pickle it by
    reference).  The source is rebuilt inside the worker so only the path
    and knobs cross the process boundary — the mapped pages of the capture
    are then shared between workers by the OS page cache (the analysis
    state crosses back as the plain-array snapshot on the result).
    """
    source = TraceStreamSource(
        path, batch_size=batch_size, window_s=window_s, strict=strict,
        mmap=mmap,
    )
    return _run_one_shard(
        source, shard, n_shards, criteria, fingerprinter, config,
        analyses=analyses,
    )


class ShardedStreamEngine:
    """Bit-identical parallel streaming over source-hashed shards.

    ``n_shards`` picks the parallelism of the *state* (how many independent
    identifiers partition the sources); ``workers`` picks the parallelism of
    the *execution* (how many processes walk shards concurrently).  They are
    separate so a checkpointed run can change its worker count without
    invalidating its per-shard checkpoints — the shard count, not the worker
    count, is part of the checkpoint key.
    """

    def __init__(
        self,
        n_shards: int = 2,
        workers: int = 0,
        criteria: Optional[CampaignCriteria] = None,
        fingerprinter: Optional[ToolFingerprinter] = None,
        config: Optional[StreamConfig] = None,
        analyses: Optional[AnalysisConfig] = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.n_shards = n_shards
        self.workers = workers
        self.criteria = criteria if criteria is not None else CampaignCriteria()
        self.fingerprinter = (
            fingerprinter if fingerprinter is not None else ToolFingerprinter()
        )
        self.config = config if config is not None else StreamConfig()
        self.analyses = analyses

    def run(
        self,
        source: StreamSource,
        progress: Optional[Callable[[int, StreamStats], None]] = None,
    ) -> ShardedStreamResult:
        """Stream every shard of ``source`` and merge the results.

        ``progress`` (in-process mode only) is invoked as
        ``progress(shard, stats)`` after each committed window.
        """
        if self.workers == 0:
            runs = [
                _run_one_shard(
                    source, shard, self.n_shards, self.criteria,
                    self.fingerprinter, self.config, progress=progress,
                    analyses=self.analyses,
                )
                for shard in range(self.n_shards)
            ]
        else:
            if not isinstance(source, TraceStreamSource):
                raise ValueError(
                    "worker processes need a path-backed capture; got "
                    f"{type(source).__name__} (use workers=0, or stream an "
                    ".rtrace file)"
                )
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(
                        _shard_stream_task,
                        str(source.path), source.batch_size, source.window_s,
                        source.strict, source.mmap, shard, self.n_shards,
                        self.criteria, self.fingerprinter, self.config,
                        self.analyses,
                    )
                    for shard in range(self.n_shards)
                ]
                runs = [future.result() for future in futures]
        scans = merge_scan_tables([run.scans for run in runs])
        stats = StreamStats.merge([run.stats for run in runs])
        stats.scans = len(scans)
        suite: Optional[AnalysisSuite] = None
        if self.analyses is not None:
            # Fold the shard snapshots into one suite; shards partition the
            # sources, which is exactly the suite's merge precondition.
            suite = AnalysisSuite(self.analyses)
            for run in runs:
                part = AnalysisSuite(self.analyses)
                part.restore(run.analysis)
                suite.merge(part)
        return ShardedStreamResult(
            scans=scans,
            stats=stats,
            shards=runs,
            resumed=any(run.resumed for run in runs),
            analyses=suite,
        )


def identify_scans_sharded(
    capture: Union[StreamSource, PathLike],
    n_shards: int = 2,
    workers: int = 0,
    criteria: Optional[CampaignCriteria] = None,
    fingerprinter: Optional[ToolFingerprinter] = None,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    window_s: Optional[float] = None,
    checkpoint_dir: Optional[PathLike] = None,
    mmap: Optional[bool] = None,
) -> ScanTable:
    """Sharded drop-in for :func:`repro.core.campaigns.identify_scans`.

    Column-by-column identical to the batch path (and to
    :func:`~repro.stream.engine.identify_scans_stream`) at any shard count,
    window size, or worker count; see the module docstring for why.
    """
    source = as_stream_source(
        capture, batch_size, window_s, mmap=mmap
    )
    engine = ShardedStreamEngine(
        n_shards=n_shards,
        workers=workers,
        criteria=criteria,
        fingerprinter=fingerprinter,
        config=StreamConfig(
            batch_size=batch_size,
            window_s=window_s,
            checkpoint_dir=checkpoint_dir,
        ),
    )
    return engine.run(source).scans
