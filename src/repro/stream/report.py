"""One-pass paper reports over packet streams.

:func:`stream_report` is the streaming counterpart of
:func:`repro.core.report.paper_report`: it walks a capture once — through
the serial :class:`~repro.stream.engine.StreamEngine` or the
:class:`~repro.stream.sharded.ShardedStreamEngine` — with an
:class:`~repro.stream.analyses.AnalysisSuite` riding alongside the scan
identifier, then enriches the identified scans and finalises the suite into
a :class:`~repro.core.report.PaperReport`.

The report is field-by-field equal to the batch path's at any window size,
shard count, or worker count: the scan table is bit-identical by the
engine's own guarantee, and the analysis accumulators reproduce the batch
finalisers exactly (see :mod:`repro.stream.analyses`).  Memory stays
bounded throughout — the suite holds tallies and the finalised scan
columns, never the packet stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Union

from repro.core.campaigns import CampaignCriteria, ScanTable
from repro.core.fingerprints import ToolFingerprinter
from repro.core.report import PaperReport
from repro.enrichment import ScannerClassifier, build_default_registry
from repro.stream.analyses import AnalysisConfig, AnalysisSuite
from repro.stream.engine import (
    DEFAULT_BATCH_SIZE,
    StreamConfig,
    StreamEngine,
    as_stream_source,
)
from repro.stream.sharded import ShardedStreamEngine
from repro.stream.source import StreamSource
from repro.stream.stats import StreamStats
from repro.telescope.packet import PacketBatch

PathLike = Union[str, Path]


@dataclass
class StreamReportResult:
    """Everything one streaming report pass produced."""

    report: PaperReport
    scans: ScanTable            # identified + fingerprinted + enriched
    stats: StreamStats
    resumed: bool = False
    #: True when a ``stop`` callback cut the pass short; the report covers
    #: only the windows committed before the interrupt, and the flushed
    #: checkpoint lets a re-run pick up from there.
    interrupted: bool = False
    #: Where the final checkpoint landed (None when checkpointing was off).
    checkpoint_path: Optional[Path] = None


def _period_of(
    source: StreamSource, year: Optional[int], days: Optional[int]
) -> AnalysisConfig:
    """Resolve the period from explicit arguments or the source's metadata."""
    meta = getattr(source, "meta", None) or {}
    if year is None:
        year = meta.get("year")
    if days is None:
        days = meta.get("days")
    if year is None or days is None:
        missing = [
            name for name, value in (("year", year), ("days", days))
            if value is None
        ]
        raise ValueError(
            f"cannot size the analysis period: {' and '.join(missing)} "
            f"neither passed explicitly nor present in the capture metadata"
        )
    return AnalysisConfig(year=int(year), days=int(days))


def stream_report(
    capture: Union[StreamSource, PacketBatch, PathLike, Iterable[PacketBatch]],
    year: Optional[int] = None,
    days: Optional[int] = None,
    n_shards: int = 1,
    workers: int = 0,
    criteria: Optional[CampaignCriteria] = None,
    fingerprinter: Optional[ToolFingerprinter] = None,
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    window_s: Optional[float] = None,
    checkpoint_dir: Optional[PathLike] = None,
    checkpoint_every: int = 8,
    strict: bool = True,
    mmap: Optional[bool] = None,
    classifier: Optional[ScannerClassifier] = None,
    progress: Optional[Callable[..., None]] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> StreamReportResult:
    """Compute the full paper report from ``capture`` in one bounded pass.

    ``year``/``days`` default to the capture's own metadata (``.rtrace``
    files written by the simulator carry both).  ``classifier`` defaults to
    the registry-backed default; pass the simulation's own classifier to
    reproduce a specific :class:`~repro.core.pipeline.PeriodAnalysis`.
    ``progress`` follows the underlying engine's callback signature:
    ``progress(stats)`` serially, ``progress(shard, stats)`` sharded.
    ``stop`` (serial path only) gracefully interrupts between windows after
    flushing a checkpoint — see :meth:`StreamEngine.run`.
    """
    if stop is not None and n_shards != 1:
        raise ValueError("stop callbacks are only supported when n_shards=1")
    source = as_stream_source(
        capture, batch_size, window_s, strict=strict, mmap=mmap
    )
    analysis_config = _period_of(source, year, days)
    stream_config = StreamConfig(
        batch_size=batch_size,
        window_s=window_s,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        strict=strict,
    )

    if n_shards == 1:
        engine = StreamEngine(criteria, fingerprinter, stream_config)
        result = engine.run(
            source, progress=progress,
            analyses=AnalysisSuite(analysis_config),
            stop=stop,
        )
        suite = result.analyses
    else:
        sharded = ShardedStreamEngine(
            n_shards=n_shards,
            workers=workers,
            criteria=criteria,
            fingerprinter=fingerprinter,
            config=stream_config,
            analyses=analysis_config,
        )
        result = sharded.run(source, progress=progress)
        suite = result.analyses

    if classifier is None:
        classifier = ScannerClassifier(build_default_registry())
    scans = result.scans.enrich(classifier)
    suite.consume_scans(scans)
    return StreamReportResult(
        report=suite.finalize(),
        scans=scans,
        stats=result.stats,
        resumed=result.resumed,
        interrupted=getattr(result, "interrupted", False),
        checkpoint_path=getattr(result, "checkpoint_path", None),
    )
