"""Incremental scan identification: the streaming ``identify_scans``.

:class:`IncrementalScanIdentifier` consumes time-ordered packet windows one
at a time and maintains a mergeable per-source *session accumulator*; a
session finalises once its idle gap exceeds the campaign criteria (or the
stream ends) and is then scored through the exact same
:func:`repro.core.campaigns.score_sessions` math as the batch path.

Why the result is column-by-column **identical** to batch
:func:`~repro.core.campaigns.identify_scans` at any window size:

* Captures are time-ordered (``Telescope.observe`` sorts; the engine
  enforces a monotone watermark), so appending each window's per-source,
  time-sorted packet runs reproduces the batch path's global
  ``lexsort((time, src_ip))`` order, including its stable tie-breaks.
* Session boundaries depend only on per-source inter-packet gaps, which
  windowing never changes.
* Every per-session statistic in :func:`score_sessions` is segment-local,
  so scoring sessions in finalisation groups (rather than all at once)
  yields bit-identical floats; ports/modes/fingerprints are computed from
  exact tallies and first-*k* buffers that match the batch definitions.

Memory model: open sessions buffer their own packets (times/destinations as
column copies, ports as an exact count tally, header and fingerprint fields
only up to their first-64 / sample-limit prefixes).  The idle-gap expiry
continuously retires quiet sources, so the working set is bounded by the
traffic active within one expiry window — independent of capture length.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.campaigns import CampaignCriteria, ScanTable, score_sessions
from repro.core.fingerprints import ToolFingerprinter
from repro.scanners.base import Tool
from repro.telescope.packet import PacketBatch

#: Header-quirk modes use each session's first 64 packets (batch parity).
_HEAD_LIMIT = 64


class StreamOrderError(ValueError):
    """Raised when a window's packets precede the stream's watermark.

    The incremental identifier requires a time-ordered stream (all telescope
    captures are; ``Telescope.observe`` sorts).  Out-of-order input would
    silently desynchronise session boundaries from the batch path, so it is
    rejected loudly instead.
    """


class _SessionState:
    """Mergeable accumulator for one source's open session."""

    __slots__ = (
        "src", "count", "last_time", "times", "dsts", "dst_set",
        "ports", "port_counts", "head_window", "head_ttl", "head_count",
        "fp_cols", "fp_count", "buffered",
    )

    def __init__(self, src: int):
        self.src = src
        self.count = 0
        self.last_time = 0.0
        #: Chunked column buffers (copies, so window arrays are not pinned).
        self.times: List[np.ndarray] = []
        self.dsts: List[np.ndarray] = []
        #: Exact distinct-destination sketch: a sorted-unique merge.  Kept
        #: incrementally so live stats can count candidate sessions and
        #: finalisation needs no full-buffer unique pass.
        self.dst_set = np.array([], dtype=np.uint32)
        #: Exact port tally (sorted distinct ports + multiplicities).
        self.ports = np.array([], dtype=np.int64)
        self.port_counts = np.array([], dtype=np.int64)
        self.head_window: List[np.ndarray] = []
        self.head_ttl: List[np.ndarray] = []
        self.head_count = 0
        #: First sample-limit packets of (ip_id, seq, dst_ip, dst_port,
        #: src_port) for tool fingerprinting.
        self.fp_cols: Tuple[List[np.ndarray], ...] = ([], [], [], [], [])
        self.fp_count = 0
        self.buffered = 0

    def append(
        self,
        times: np.ndarray,
        dsts: np.ndarray,
        ports: np.ndarray,
        windows: np.ndarray,
        ttls: np.ndarray,
        fp_slices: Tuple[np.ndarray, ...],
        fp_limit: int,
    ) -> int:
        """Merge one time-ordered packet run; returns buffered-byte delta."""
        n = times.size
        t = times.copy()
        d = dsts.copy()
        self.times.append(t)
        self.dsts.append(d)
        delta = t.nbytes + d.nbytes

        self.dst_set = np.union1d(self.dst_set, d)

        u, c = np.unique(ports.astype(np.int64), return_counts=True)
        if self.ports.size == 0:
            self.ports, self.port_counts = u, c
        else:
            allp = np.concatenate([self.ports, u])
            allc = np.concatenate([self.port_counts, c])
            order = np.argsort(allp, kind="stable")
            allp, allc = allp[order], allc[order]
            firsts = np.flatnonzero(
                np.concatenate(([True], allp[1:] != allp[:-1]))
            )
            self.ports = allp[firsts]
            self.port_counts = np.add.reduceat(allc, firsts)

        if self.head_count < _HEAD_LIMIT:
            take = min(_HEAD_LIMIT - self.head_count, n)
            w = windows[:take].copy()
            tt = ttls[:take].copy()
            self.head_window.append(w)
            self.head_ttl.append(tt)
            self.head_count += take
            delta += w.nbytes + tt.nbytes
        if self.fp_count < fp_limit:
            take = min(fp_limit - self.fp_count, n)
            for store, col in zip(self.fp_cols, fp_slices):
                piece = col[:take].copy()
                store.append(piece)
                delta += piece.nbytes
            self.fp_count += take

        self.count += n
        self.last_time = float(times[n - 1])
        self.buffered += delta
        return delta


class IncrementalScanIdentifier:
    """Streaming equivalent of :func:`repro.core.campaigns.identify_scans`.

    Feed time-ordered windows to :meth:`consume`; call :meth:`finalize` once
    the stream ends to retire the remaining open sessions and obtain the
    :class:`ScanTable`.  State between windows is exposed via
    :meth:`snapshot` / :meth:`restore` for durable checkpoints.
    """

    def __init__(
        self,
        criteria: Optional[CampaignCriteria] = None,
        fingerprinter: Optional[ToolFingerprinter] = None,
    ):
        self.criteria = criteria if criteria is not None else CampaignCriteria()
        self.fingerprinter = (
            fingerprinter if fingerprinter is not None else ToolFingerprinter()
        )
        self._open: Dict[int, _SessionState] = {}
        self.packets_consumed = 0
        self.windows_consumed = 0
        self.watermark = float("-inf")
        self.sessions_discarded = 0
        self.buffered_bytes = 0
        # Columnar store of finalised scans (sorted into table order at the
        # very end; completion order is irrelevant after that sort).
        self._rec_src: List[int] = []
        self._rec_start: List[float] = []
        self._rec_end: List[float] = []
        self._rec_packets: List[int] = []
        self._rec_distinct: List[int] = []
        self._rec_port_sets: List[np.ndarray] = []
        self._rec_primary: List[int] = []
        self._rec_tool: List[Tool] = []
        self._rec_match: List[float] = []
        self._rec_speed: List[float] = []
        self._rec_coverage: List[float] = []
        self._rec_sequential: List[bool] = []
        self._rec_window: List[int] = []
        self._rec_ttl: List[int] = []

    # -- live gauges --------------------------------------------------------

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    @property
    def open_packets(self) -> int:
        return sum(state.count for state in self._open.values())

    @property
    def candidate_sessions(self) -> int:
        """Open sessions already past the distinct-destination threshold."""
        threshold = self.criteria.min_distinct_dsts
        return sum(
            1 for state in self._open.values() if state.dst_set.size >= threshold
        )

    @property
    def scans_found(self) -> int:
        return len(self._rec_src)

    # -- streaming ----------------------------------------------------------

    def consume(self, batch: PacketBatch) -> None:
        """Ingest one window (a contiguous, time-ordered stream slice)."""
        self.windows_consumed += 1
        n = len(batch)
        if n == 0:
            return
        expiry = self.criteria.expiry_s
        t = batch.time
        tmin = float(t.min())
        if self.packets_consumed and tmin < self.watermark:
            raise StreamOrderError(
                f"window starts at t={tmin:.6f}, before the stream watermark "
                f"{self.watermark:.6f}; the incremental identifier needs a "
                f"time-ordered stream"
            )

        # Window-local grouping: identical to the batch path's global
        # lexsort restricted to this window (stable tie-breaks and all).
        order = np.lexsort((t, batch.src_ip))
        s_o = batch.src_ip[order]
        t_o = batch.time[order]
        d_o = batch.dst_ip[order]
        p_o = batch.dst_port[order]
        w_o = batch.window[order]
        ttl_o = batch.ttl[order]
        ipid_o = batch.ip_id[order]
        seq_o = batch.seq[order]
        sp_o = batch.src_port[order]

        starts = np.flatnonzero(np.concatenate(([True], s_o[1:] != s_o[:-1])))
        ends = np.append(starts[1:], n)
        min_packets = self.criteria.min_distinct_dsts
        fp_limit = self.fingerprinter.sample_limit
        pending: List[_SessionState] = []

        for b, e in zip(starts, ends):
            src = int(s_o[b])
            times_g = t_o[b:e]
            if e - b > 1:
                cuts = np.flatnonzero(np.diff(times_g) > expiry) + 1
                bounds = np.concatenate(([0], cuts, [e - b]))
            else:
                bounds = np.array([0, 1], dtype=np.int64)
            n_segments = bounds.size - 1
            state = self._open.get(src)
            for j in range(n_segments):
                a0, a1 = int(bounds[j]) + b, int(bounds[j + 1]) + b
                if (
                    state is not None
                    and float(t_o[a0]) - state.last_time > expiry
                ):
                    self._retire(state, pending)
                    state = None
                last_segment = j == n_segments - 1
                if state is None:
                    # A segment known-complete within this window that is too
                    # small to have enough distinct destinations can be
                    # dropped without ever building a state (the batch
                    # path's cheap prefilter, applied eagerly).
                    if not last_segment and a1 - a0 < min_packets:
                        self.sessions_discarded += 1
                        continue
                    state = _SessionState(src)
                self.buffered_bytes += state.append(
                    t_o[a0:a1], d_o[a0:a1], p_o[a0:a1], w_o[a0:a1],
                    ttl_o[a0:a1],
                    (ipid_o[a0:a1], seq_o[a0:a1], d_o[a0:a1], p_o[a0:a1],
                     sp_o[a0:a1]),
                    fp_limit,
                )
                if not last_segment:
                    self._retire(state, pending)
                    state = None
            if state is not None:
                self._open[src] = state
            else:
                self._open.pop(src, None)

        # Watermark finalisation: future packets can only arrive at or after
        # this window's maximum time, so a source idle for more than the
        # expiry gap can never extend its session again.
        self.watermark = max(self.watermark, float(t.max()))
        expired = [
            src for src, state in self._open.items()
            if self.watermark - state.last_time > expiry
        ]
        for src in expired:
            self._retire(self._open.pop(src), pending)

        self.packets_consumed += n
        if pending:
            self._commit(pending)

    def finalize(self) -> ScanTable:
        """Retire every remaining open session and build the scan table.

        The records are sorted by (source, start time), which is exactly the
        session order the batch path's ``lexsort((time, src_ip))`` produces.
        """
        pending: List[_SessionState] = []
        for src in list(self._open):
            self._retire(self._open.pop(src), pending)
        if pending:
            self._commit(pending)
        if not self._rec_src:
            return ScanTable.empty()
        src = np.array(self._rec_src, dtype=np.uint32)
        start = np.array(self._rec_start, dtype=float)
        order = np.lexsort((start, src))
        return ScanTable(
            src_ip=src[order],
            start=start[order],
            end=np.array(self._rec_end, dtype=float)[order],
            packets=np.array(self._rec_packets, dtype=np.int64)[order],
            distinct_dsts=np.array(self._rec_distinct, dtype=np.int64)[order],
            port_sets=[self._rec_port_sets[i] for i in order],
            primary_port=np.array(self._rec_primary, dtype=np.uint16)[order],
            tool=np.array(self._rec_tool, dtype=object)[order],
            match_fraction=np.array(self._rec_match, dtype=float)[order],
            speed_pps=np.array(self._rec_speed, dtype=float)[order],
            coverage=np.array(self._rec_coverage, dtype=float)[order],
            sequential=np.array(self._rec_sequential, dtype=bool)[order],
            window_mode=np.array(self._rec_window, dtype=np.uint16)[order],
            ttl_mode=np.array(self._rec_ttl, dtype=np.uint8)[order],
        )

    # -- internals ----------------------------------------------------------

    def _retire(
        self, state: _SessionState, pending: List[_SessionState]
    ) -> None:
        """Close a session: queue it for scoring, or drop it outright."""
        self.buffered_bytes -= state.buffered
        threshold = self.criteria.min_distinct_dsts
        if state.count >= threshold and state.dst_set.size >= threshold:
            pending.append(state)
        else:
            self.sessions_discarded += 1

    def _commit(self, pending: List[_SessionState]) -> None:
        """Score a group of closed candidate sessions (batch-exact)."""
        counts = np.array([state.count for state in pending], dtype=np.int64)
        offsets = np.concatenate(
            ([0], np.cumsum(counts)[:-1])
        ).astype(np.int64)
        times = np.concatenate(
            [chunk for state in pending for chunk in state.times]
        )
        dsts = np.concatenate(
            [chunk for state in pending for chunk in state.dsts]
        ).astype(np.float64)
        start, end, sequential, rate = score_sessions(
            times, dsts, offsets, counts, self.criteria
        )
        min_rate = self.criteria.min_rate_pps
        for i, state in enumerate(pending):
            if rate[i] < min_rate:
                self.sessions_discarded += 1
                continue
            self._record(state, float(start[i]), float(end[i]),
                         bool(sequential[i]), float(rate[i]))

    def _record(
        self,
        state: _SessionState,
        start: float,
        end: float,
        sequential: bool,
        rate: float,
    ) -> None:
        distinct = int(state.dst_set.size)
        head_window = np.concatenate(state.head_window)
        head_ttl = np.concatenate(state.head_ttl)
        windows, window_counts = np.unique(head_window, return_counts=True)
        ttls, ttl_counts = np.unique(head_ttl, return_counts=True)
        verdict = self.fingerprinter.fingerprint_arrays(
            *(np.concatenate(chunks) for chunks in state.fp_cols)
        )
        self._rec_src.append(state.src)
        self._rec_start.append(start)
        self._rec_end.append(end)
        self._rec_packets.append(state.count)
        self._rec_distinct.append(distinct)
        self._rec_port_sets.append(state.ports)
        self._rec_primary.append(int(state.ports[int(np.argmax(state.port_counts))]))
        self._rec_tool.append(verdict.tool)
        self._rec_match.append(verdict.match_fraction)
        self._rec_speed.append(rate)
        self._rec_coverage.append(
            min(1.0, distinct / self.criteria.telescope_size)
        )
        self._rec_sequential.append(sequential)
        self._rec_window.append(int(windows[int(np.argmax(window_counts))]))
        self._rec_ttl.append(int(ttls[int(np.argmax(ttl_counts))]))

    # -- checkpoint state ----------------------------------------------------

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Serialise the full mid-stream state into flat numpy arrays.

        Variable-length per-session data (buffers, tallies) is stored as
        concatenated value arrays plus ``int64`` offset arrays of length
        ``n_sessions + 1``; the finalised records the same way.  The result
        round-trips through ``np.savez`` untouched.
        """
        states = list(self._open.values())

        def offsets_of(sizes: List[int]) -> np.ndarray:
            return np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)

        def cat(chunks: List[np.ndarray], dtype) -> np.ndarray:
            if not chunks:
                return np.array([], dtype=dtype)
            return np.concatenate(chunks).astype(dtype, copy=False)

        fp_chunks: Tuple[List[np.ndarray], ...] = ([], [], [], [], [])
        for state in states:
            for store, chunks in zip(fp_chunks, state.fp_cols):
                store.extend(chunks)
        return {
            "open_src": np.array([s.src for s in states], dtype=np.uint32),
            "open_count": np.array([s.count for s in states], dtype=np.int64),
            "open_last_time": np.array(
                [s.last_time for s in states], dtype=np.float64
            ),
            "open_buf_offsets": offsets_of([s.count for s in states]),
            "open_times": cat(
                [c for s in states for c in s.times], np.float64
            ),
            "open_dsts": cat([c for s in states for c in s.dsts], np.uint32),
            "open_ports_offsets": offsets_of([s.ports.size for s in states]),
            "open_ports": cat([s.ports for s in states], np.int64),
            "open_port_counts": cat(
                [s.port_counts for s in states], np.int64
            ),
            "open_head_offsets": offsets_of([s.head_count for s in states]),
            "open_head_window": cat(
                [c for s in states for c in s.head_window], np.uint16
            ),
            "open_head_ttl": cat(
                [c for s in states for c in s.head_ttl], np.uint8
            ),
            "open_fp_offsets": offsets_of([s.fp_count for s in states]),
            "open_fp_ip_id": cat(fp_chunks[0], np.uint16),
            "open_fp_seq": cat(fp_chunks[1], np.uint32),
            "open_fp_dst_ip": cat(fp_chunks[2], np.uint32),
            "open_fp_dst_port": cat(fp_chunks[3], np.uint16),
            "open_fp_src_port": cat(fp_chunks[4], np.uint16),
            "counters": np.array(
                [self.packets_consumed, self.windows_consumed,
                 self.sessions_discarded],
                dtype=np.int64,
            ),
            "watermark": np.array([self.watermark], dtype=np.float64),
            "rec_src": np.array(self._rec_src, dtype=np.uint32),
            "rec_start": np.array(self._rec_start, dtype=np.float64),
            "rec_end": np.array(self._rec_end, dtype=np.float64),
            "rec_packets": np.array(self._rec_packets, dtype=np.int64),
            "rec_distinct": np.array(self._rec_distinct, dtype=np.int64),
            "rec_ports_offsets": offsets_of(
                [ports.size for ports in self._rec_port_sets]
            ),
            "rec_ports": cat(list(self._rec_port_sets), np.int64),
            "rec_primary": np.array(self._rec_primary, dtype=np.uint16),
            "rec_tool": np.array(
                [str(tool.value) for tool in self._rec_tool], dtype=np.str_
            ),
            "rec_match": np.array(self._rec_match, dtype=np.float64),
            "rec_speed": np.array(self._rec_speed, dtype=np.float64),
            "rec_coverage": np.array(self._rec_coverage, dtype=np.float64),
            "rec_sequential": np.array(self._rec_sequential, dtype=bool),
            "rec_window": np.array(self._rec_window, dtype=np.uint16),
            "rec_ttl": np.array(self._rec_ttl, dtype=np.uint8),
        }

    def restore(self, arrays: Dict[str, np.ndarray]) -> None:
        """Rebuild mid-stream state from a :meth:`snapshot` payload."""
        self._open.clear()
        self.buffered_bytes = 0
        fp_limit = self.fingerprinter.sample_limit
        src_arr = arrays["open_src"]
        buf_off = arrays["open_buf_offsets"]
        ports_off = arrays["open_ports_offsets"]
        head_off = arrays["open_head_offsets"]
        fp_off = arrays["open_fp_offsets"]
        for i in range(src_arr.size):
            state = _SessionState(int(src_arr[i]))
            b0, b1 = int(buf_off[i]), int(buf_off[i + 1])
            times = arrays["open_times"][b0:b1].copy()
            dsts = arrays["open_dsts"][b0:b1].copy()
            state.times = [times]
            state.dsts = [dsts]
            state.dst_set = np.unique(dsts)
            p0, p1 = int(ports_off[i]), int(ports_off[i + 1])
            state.ports = arrays["open_ports"][p0:p1].copy()
            state.port_counts = arrays["open_port_counts"][p0:p1].copy()
            h0, h1 = int(head_off[i]), int(head_off[i + 1])
            head_window = arrays["open_head_window"][h0:h1].copy()
            head_ttl = arrays["open_head_ttl"][h0:h1].copy()
            state.head_window = [head_window]
            state.head_ttl = [head_ttl]
            state.head_count = h1 - h0
            f0, f1 = int(fp_off[i]), int(fp_off[i + 1])
            state.fp_cols = tuple(
                [arrays[name][f0:f1].copy()]
                for name in ("open_fp_ip_id", "open_fp_seq", "open_fp_dst_ip",
                             "open_fp_dst_port", "open_fp_src_port")
            )
            state.fp_count = min(f1 - f0, fp_limit)
            state.count = int(arrays["open_count"][i])
            state.last_time = float(arrays["open_last_time"][i])
            state.buffered = sum(
                chunk.nbytes
                for chunk in (times, dsts, head_window, head_ttl)
            ) + sum(chunks[0].nbytes for chunks in state.fp_cols)
            self.buffered_bytes += state.buffered
            self._open[state.src] = state
        counters = arrays["counters"]
        self.packets_consumed = int(counters[0])
        self.windows_consumed = int(counters[1])
        self.sessions_discarded = int(counters[2])
        self.watermark = float(arrays["watermark"][0])
        rec_ports_off = arrays["rec_ports_offsets"]
        self._rec_src = [int(v) for v in arrays["rec_src"]]
        self._rec_start = [float(v) for v in arrays["rec_start"]]
        self._rec_end = [float(v) for v in arrays["rec_end"]]
        self._rec_packets = [int(v) for v in arrays["rec_packets"]]
        self._rec_distinct = [int(v) for v in arrays["rec_distinct"]]
        self._rec_port_sets = [
            arrays["rec_ports"][
                int(rec_ports_off[i]):int(rec_ports_off[i + 1])
            ].copy()
            for i in range(len(self._rec_src))
        ]
        self._rec_primary = [int(v) for v in arrays["rec_primary"]]
        self._rec_tool = [Tool(str(v)) for v in arrays["rec_tool"]]
        self._rec_match = [float(v) for v in arrays["rec_match"]]
        self._rec_speed = [float(v) for v in arrays["rec_speed"]]
        self._rec_coverage = [float(v) for v in arrays["rec_coverage"]]
        self._rec_sequential = [bool(v) for v in arrays["rec_sequential"]]
        self._rec_window = [int(v) for v in arrays["rec_window"]]
        self._rec_ttl = [int(v) for v in arrays["rec_ttl"]]
