"""Incremental scan identification: the streaming ``identify_scans``.

:class:`IncrementalScanIdentifier` consumes time-ordered packet windows one
at a time and maintains a mergeable per-source *session accumulator*; a
session finalises once its idle gap exceeds the campaign criteria (or the
stream ends) and is then scored through the exact same
:func:`repro.core.campaigns.score_sessions` math as the batch path.

Why the result is column-by-column **identical** to batch
:func:`~repro.core.campaigns.identify_scans` at any window size:

* Captures are time-ordered (``Telescope.observe`` sorts; the engine
  enforces a monotone watermark), so appending each window's per-source,
  time-sorted packet runs reproduces the batch path's global
  ``lexsort((time, src_ip))`` order, including its stable tie-breaks.
* Session boundaries depend only on per-source inter-packet gaps, which
  windowing never changes.
* Every per-session statistic in :func:`score_sessions` is segment-local,
  so scoring sessions in finalisation groups (rather than all at once)
  yields bit-identical floats; ports/modes/fingerprints are computed from
  exact tallies and first-*k* buffers that match the batch definitions.

Memory model: open sessions buffer their own packets (times/destinations as
column copies, ports as an exact count tally, header and fingerprint fields
only up to their first-64 / sample-limit prefixes).  The idle-gap expiry
continuously retires quiet sources, so the working set is bounded by the
traffic active within one expiry window — independent of capture length.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.campaigns import CampaignCriteria, ScanTable, score_sessions
from repro.core.fingerprints import ToolFingerprinter
from repro.scanners.base import Tool
from repro.telescope.packet import PacketBatch

#: Header-quirk modes use each session's first 64 packets (batch parity).
_HEAD_LIMIT = 64


class StreamOrderError(ValueError):
    """Raised when a window's packets precede the stream's watermark.

    The incremental identifier requires a time-ordered stream (all telescope
    captures are; ``Telescope.observe`` sorts).  Out-of-order input would
    silently desynchronise session boundaries from the batch path, so it is
    rejected loudly instead.
    """


def _whole(chunks: List[np.ndarray]) -> np.ndarray:
    """Concatenate a chunked buffer (no-op view for the single-chunk case)."""
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


def _batched_modes(heads: List[np.ndarray]) -> np.ndarray:
    """Most frequent value of each array, ties broken toward the smallest.

    Matches ``u, c = np.unique(h, return_counts=True); u[np.argmax(c)]``
    per array (``np.unique`` sorts ascending and ``argmax`` takes the first
    maximum), but packs every array into one sort: values are tagged with
    their array ordinal in the high bits, so per-array tallies land in
    contiguous, value-sorted runs of a single ``np.unique``.
    """
    lens = np.array([h.size for h in heads], dtype=np.int64)
    ordinal = np.repeat(np.arange(len(heads), dtype=np.int64), lens)
    packed = (ordinal << np.int64(16)) | np.concatenate(heads).astype(np.int64)
    u, c = np.unique(packed, return_counts=True)
    seg = u >> np.int64(16)
    firsts = np.concatenate(
        ([0], np.cumsum(np.bincount(seg, minlength=len(heads)))[:-1])
    )
    max_count = np.maximum.reduceat(c, firsts)
    at_max = np.flatnonzero(c == max_count[seg])
    # First at-max position per array = smallest value with the top count.
    _, first_idx = np.unique(seg[at_max], return_index=True)
    return u[at_max[first_idx]] & np.int64(0xFFFF)


class _SessionState:
    """Mergeable accumulator for one source's open session."""

    __slots__ = (
        "src", "count", "last_time", "times", "dsts", "dst_set",
        "ports", "port_counts", "head_window", "head_ttl", "head_count",
        "fp_cols", "fp_count", "buffered",
    )

    def __init__(self, src: int):
        self.src = src
        self.count = 0
        self.last_time = 0.0
        #: Chunked column buffers (copies, so window arrays are not pinned).
        self.times: List[np.ndarray] = []
        self.dsts: List[np.ndarray] = []
        #: Exact distinct-destination sketch: a sorted-unique merge.  Kept
        #: incrementally so live stats can count candidate sessions and
        #: finalisation needs no full-buffer unique pass.
        self.dst_set = np.array([], dtype=np.uint32)
        #: Exact port tally (sorted distinct ports + multiplicities).
        self.ports = np.array([], dtype=np.int64)
        self.port_counts = np.array([], dtype=np.int64)
        self.head_window: List[np.ndarray] = []
        self.head_ttl: List[np.ndarray] = []
        self.head_count = 0
        #: First sample-limit packets of (ip_id, seq, dst_ip, dst_port,
        #: src_port) for tool fingerprinting.
        self.fp_cols: Tuple[List[np.ndarray], ...] = ([], [], [], [], [])
        self.fp_count = 0
        self.buffered = 0

    def append(
        self,
        times: np.ndarray,
        dsts: np.ndarray,
        ports: np.ndarray,
        windows: np.ndarray,
        ttls: np.ndarray,
        fp_slices: Tuple[np.ndarray, ...],
        fp_limit: int,
        copy: bool = True,
        dst_distinct: Optional[np.ndarray] = None,
        port_tally: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> int:
        """Merge one time-ordered packet run; returns buffered-byte delta.

        ``copy=False`` keeps zero-copy views of the input slices instead of
        snapshotting them — only safe when the session is retired (scored or
        dropped) before the window arrays go away, i.e. within the same
        ``consume`` call.  Sessions that stay open across windows must copy,
        or they would pin every window they ever touched.

        ``dst_distinct`` / ``port_tally`` hand in this run's sorted
        distinct destinations and its ``(sorted ports, multiplicities)``
        tally when the caller already computed them in a batched pass; they
        replace the per-state ``np.unique`` calls and merge identically
        (``union1d`` deduplicates either way).
        """
        n = times.size
        t = times.copy() if copy else times
        d = dsts.copy() if copy else dsts
        self.times.append(t)
        self.dsts.append(d)
        delta = t.nbytes + d.nbytes

        if self.dst_set.size == 0:
            if dst_distinct is not None:
                self.dst_set = dst_distinct.copy() if copy else dst_distinct
            else:
                self.dst_set = np.unique(d)
        else:
            self.dst_set = np.union1d(
                self.dst_set, d if dst_distinct is None else dst_distinct
            )

        if port_tally is not None:
            u, c = port_tally
        else:
            u, c = np.unique(ports.astype(np.int64), return_counts=True)
        if self.ports.size == 0:
            if copy and port_tally is not None:
                u, c = u.copy(), c.copy()
            self.ports, self.port_counts = u, c
        else:
            allp = np.concatenate([self.ports, u])
            allc = np.concatenate([self.port_counts, c])
            order = np.argsort(allp, kind="stable")
            allp, allc = allp[order], allc[order]
            firsts = np.flatnonzero(
                np.concatenate(([True], allp[1:] != allp[:-1]))
            )
            self.ports = allp[firsts]
            self.port_counts = np.add.reduceat(allc, firsts)

        if self.head_count < _HEAD_LIMIT:
            take = min(_HEAD_LIMIT - self.head_count, n)
            w = windows[:take].copy() if copy else windows[:take]
            tt = ttls[:take].copy() if copy else ttls[:take]
            self.head_window.append(w)
            self.head_ttl.append(tt)
            self.head_count += take
            delta += w.nbytes + tt.nbytes
        if self.fp_count < fp_limit:
            take = min(fp_limit - self.fp_count, n)
            for store, col in zip(self.fp_cols, fp_slices):
                piece = col[:take].copy() if copy else col[:take]
                store.append(piece)
                delta += piece.nbytes
            self.fp_count += take

        self.count += n
        self.last_time = float(times[n - 1])
        self.buffered += delta
        return delta


class IncrementalScanIdentifier:
    """Streaming equivalent of :func:`repro.core.campaigns.identify_scans`.

    Feed time-ordered windows to :meth:`consume`; call :meth:`finalize` once
    the stream ends to retire the remaining open sessions and obtain the
    :class:`ScanTable`.  State between windows is exposed via
    :meth:`snapshot` / :meth:`restore` for durable checkpoints.
    """

    def __init__(
        self,
        criteria: Optional[CampaignCriteria] = None,
        fingerprinter: Optional[ToolFingerprinter] = None,
    ):
        self.criteria = criteria if criteria is not None else CampaignCriteria()
        self.fingerprinter = (
            fingerprinter if fingerprinter is not None else ToolFingerprinter()
        )
        self._open: Dict[int, _SessionState] = {}
        self.packets_consumed = 0
        self.windows_consumed = 0
        self.watermark = float("-inf")
        self.sessions_discarded = 0
        self.buffered_bytes = 0
        #: High-water mark of ``buffered_bytes`` (open-session buffers).
        #: Not checkpointed: after a restore it restarts from the resumed
        #: working set, i.e. it is the peak *since resume*.
        self.peak_buffered_bytes = 0
        # Columnar store of finalised scans (sorted into table order at the
        # very end; completion order is irrelevant after that sort).
        self._rec_src: List[int] = []
        self._rec_start: List[float] = []
        self._rec_end: List[float] = []
        self._rec_packets: List[int] = []
        self._rec_distinct: List[int] = []
        self._rec_port_sets: List[np.ndarray] = []
        self._rec_primary: List[int] = []
        self._rec_tool: List[Tool] = []
        self._rec_match: List[float] = []
        self._rec_speed: List[float] = []
        self._rec_coverage: List[float] = []
        self._rec_sequential: List[bool] = []
        self._rec_window: List[int] = []
        self._rec_ttl: List[int] = []

    # -- live gauges --------------------------------------------------------

    @property
    def open_sessions(self) -> int:
        return len(self._open)

    @property
    def open_packets(self) -> int:
        return sum(state.count for state in self._open.values())

    @property
    def candidate_sessions(self) -> int:
        """Open sessions already past the distinct-destination threshold."""
        threshold = self.criteria.min_distinct_dsts
        return sum(
            1 for state in self._open.values() if state.dst_set.size >= threshold
        )

    @property
    def scans_found(self) -> int:
        return len(self._rec_src)

    # -- streaming ----------------------------------------------------------

    def consume(self, batch: PacketBatch) -> None:
        """Ingest one window (a contiguous, time-ordered stream slice)."""
        self.windows_consumed += 1
        n = len(batch)
        if n == 0:
            return
        expiry = self.criteria.expiry_s
        t = batch.time
        tmin = float(t.min())
        if self.packets_consumed and tmin < self.watermark:
            raise StreamOrderError(
                f"window starts at t={tmin:.6f}, before the stream watermark "
                f"{self.watermark:.6f}; the incremental identifier needs a "
                f"time-ordered stream"
            )

        # Window-local grouping: identical to the batch path's global
        # lexsort restricted to this window (stable tie-breaks and all).
        order = np.lexsort((t, batch.src_ip))
        s_o = batch.src_ip[order]
        t_o = batch.time[order]
        d_o = batch.dst_ip[order]
        p_o = batch.dst_port[order]
        w_o = batch.window[order]
        ttl_o = batch.ttl[order]
        ipid_o = batch.ip_id[order]
        seq_o = batch.seq[order]
        sp_o = batch.src_port[order]

        starts = np.flatnonzero(np.concatenate(([True], s_o[1:] != s_o[:-1])))
        ends = np.append(starts[1:], n)
        min_packets = self.criteria.min_distinct_dsts
        fp_limit = self.fingerprinter.sample_limit
        pending: List[_SessionState] = []

        # Fast path for *ephemeral* sources: no open state to attach to, and
        # their last packet is already more than the expiry gap behind this
        # window's maximum time, so every one of their sessions both opens
        # and watermark-expires inside this single window.  At telescope
        # scale this is the overwhelming majority (background radiation that
        # probes a handful of addresses and vanishes), and the per-source
        # Python loop is what capped the serial path.  These sources never
        # enter ``_open``: sub-threshold segments are counted as discarded
        # in one vectorised pass, and only candidate segments pay for a
        # (zero-copy, retire-immediately) ``_SessionState``.  Slow sources —
        # anything with attached or lingering state — still take the exact
        # per-source loop below, so the stream semantics are unchanged.
        wmax = float(t.max())
        group_src = s_o[starts]
        group_last = t_o[ends - 1]
        if self._open:
            open_srcs = np.fromiter(
                self._open.keys(), dtype=np.uint32, count=len(self._open)
            )
            has_open = np.isin(group_src, open_srcs)
        else:
            has_open = np.zeros(group_src.size, dtype=bool)
        slow_group = has_open | ((wmax - group_last) <= expiry)

        # Global segment table: a new session segment starts where the
        # source changes or the in-source idle gap exceeds the expiry —
        # exactly the per-source ``np.diff`` cuts of the serial
        # formulation, computed once for the whole window.
        brk = np.empty(n, dtype=bool)
        brk[0] = True
        if n > 1:
            brk[1:] = (s_o[1:] != s_o[:-1]) | (np.diff(t_o) > expiry)
        seg_starts = np.flatnonzero(brk)
        seg_ends = np.append(seg_starts[1:], n)
        seg_len = seg_ends - seg_starts
        seg_group = np.searchsorted(starts, seg_starts, side="right") - 1
        fast_seg = ~slow_group[seg_group]

        # Sub-threshold fast segments can never reach the
        # distinct-destination threshold: discarded without any state.
        small_fast = fast_seg & (seg_len < min_packets)
        self.sessions_discarded += int(np.count_nonzero(small_fast))

        def packed_tally(
            segs: np.ndarray, values: np.ndarray, bits: int
        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Per-segment sorted-unique tallies in one pass.

            Tags each value with its segment ordinal in the high bits and
            sorts once; per-segment results are then contiguous slices of
            the sorted array.  Replaces one ``np.unique`` per segment with
            a single ``np.unique`` per window.  Returns ``(values, counts,
            offsets)`` where segment ``i`` owns ``values[offsets[i]:
            offsets[i + 1]]`` (sorted distinct) with multiplicities
            ``counts[...]``.
            """
            lens = seg_len[segs]
            total = int(lens.sum())
            ordinal = np.repeat(np.arange(segs.size, dtype=np.int64), lens)
            idx = (
                np.repeat(seg_starts[segs] - (np.cumsum(lens) - lens), lens)
                + np.arange(total)
            )
            packed = (ordinal << np.int64(bits)) | values[idx].astype(
                np.int64
            )
            u, c = np.unique(packed, return_counts=True)
            per_seg = np.bincount(u >> np.int64(bits), minlength=segs.size)
            vals = u & np.int64((1 << bits) - 1)
            offsets = np.concatenate(([0], np.cumsum(per_seg)))
            return vals, c, offsets

        # Batched destination tallies for every segment that may need them
        # (fast candidates for the threshold check, slow segments to seed
        # their state append); position lookup maps a global segment index
        # into the tally arrays.
        tally_segs = np.flatnonzero(~small_fast)
        tally_pos = np.full(seg_starts.size, -1, dtype=np.int64)
        tally_pos[tally_segs] = np.arange(tally_segs.size)
        dst_vals_i64, _, dst_offs = packed_tally(tally_segs, d_o, 32)
        dst_vals = dst_vals_i64.astype(np.uint32)
        dst_n = np.diff(dst_offs)

        fast_tally = fast_seg[tally_segs]
        ok = dst_n >= min_packets
        # Fast candidates failing the distinct threshold: discarded without
        # any state either.
        self.sessions_discarded += int(np.count_nonzero(fast_tally & ~ok))

        # Port tallies only where a state will actually be built: passing
        # fast segments plus every slow segment.
        port_mask = (fast_tally & ok) | ~fast_tally
        port_segs = tally_segs[port_mask]
        port_pos = np.full(seg_starts.size, -1, dtype=np.int64)
        port_pos[port_segs] = np.arange(port_segs.size)
        port_vals, port_counts, port_offs = packed_tally(port_segs, p_o, 16)

        def seg_append(
            state: _SessionState, k: int, copy: bool
        ) -> int:
            """Append global segment ``k`` to ``state`` with its tallies."""
            a0, a1 = int(seg_starts[k]), int(seg_ends[k])
            ti, pi = int(tally_pos[k]), int(port_pos[k])
            return state.append(
                t_o[a0:a1], d_o[a0:a1], p_o[a0:a1], w_o[a0:a1],
                ttl_o[a0:a1],
                (ipid_o[a0:a1], seq_o[a0:a1], d_o[a0:a1], p_o[a0:a1],
                 sp_o[a0:a1]),
                fp_limit,
                copy=copy,
                dst_distinct=dst_vals[dst_offs[ti]:dst_offs[ti + 1]],
                port_tally=(
                    port_vals[port_offs[pi]:port_offs[pi + 1]],
                    port_counts[port_offs[pi]:port_offs[pi + 1]],
                ),
            )

        # Fast path: ephemeral sources whose sessions open *and*
        # watermark-expire inside this window.  They never enter ``_open``;
        # each passing segment pays only for a zero-copy,
        # retire-immediately state.
        for k in tally_segs[fast_tally & ok].tolist():
            state = _SessionState(int(s_o[seg_starts[k]]))
            seg_append(state, k, copy=False)
            pending.append(state)

        # Slow path: sources with attached or lingering state take the
        # serial per-source walk (segment bounds and tallies now come from
        # the global tables, so the semantics are unchanged).
        slow_idx = np.flatnonzero(slow_group)
        seg_lo = np.searchsorted(seg_group, slow_idx, side="left")
        seg_hi = np.searchsorted(seg_group, slow_idx, side="right")
        for g, k0, k1 in zip(
            slow_idx.tolist(), seg_lo.tolist(), seg_hi.tolist()
        ):
            src = int(group_src[g])
            state = self._open.get(src)
            for k in range(k0, k1):
                a0 = int(seg_starts[k])
                if (
                    state is not None
                    and float(t_o[a0]) - state.last_time > expiry
                ):
                    self._retire(state, pending)
                    state = None
                last_segment = k == k1 - 1
                if state is None:
                    # A segment known-complete within this window that is
                    # too small to have enough distinct destinations can be
                    # dropped without ever building a state (the batch
                    # path's cheap prefilter, applied eagerly).
                    if not last_segment and int(seg_len[k]) < min_packets:
                        self.sessions_discarded += 1
                        continue
                    state = _SessionState(src)
                # Only a last segment can leave the state open past this
                # ``consume`` call; earlier segments are retired right away
                # and may keep zero-copy views.
                self.buffered_bytes += seg_append(
                    state, k, copy=last_segment
                )
                if not last_segment:
                    self._retire(state, pending)
                    state = None
            if state is not None:
                self._open[src] = state
            else:
                self._open.pop(src, None)

        # Watermark finalisation: future packets can only arrive at or after
        # this window's maximum time, so a source idle for more than the
        # expiry gap can never extend its session again.
        self.watermark = max(self.watermark, wmax)
        if self.buffered_bytes > self.peak_buffered_bytes:
            # Peak *before* the sweep: the retiring sessions were genuinely
            # buffered up to this point.
            self.peak_buffered_bytes = self.buffered_bytes
        expired = [
            src for src, state in self._open.items()
            if self.watermark - state.last_time > expiry
        ]
        for src in expired:
            self._retire(self._open.pop(src), pending)

        self.packets_consumed += n
        if pending:
            self._commit(pending)

    def finalize(self) -> ScanTable:
        """Retire every remaining open session and build the scan table.

        The records are sorted by (source, start time), which is exactly the
        session order the batch path's ``lexsort((time, src_ip))`` produces.
        """
        pending: List[_SessionState] = []
        for src in list(self._open):
            self._retire(self._open.pop(src), pending)
        if pending:
            self._commit(pending)
        if not self._rec_src:
            return ScanTable.empty()
        src = np.array(self._rec_src, dtype=np.uint32)
        start = np.array(self._rec_start, dtype=float)
        order = np.lexsort((start, src))
        return ScanTable(
            src_ip=src[order],
            start=start[order],
            end=np.array(self._rec_end, dtype=float)[order],
            packets=np.array(self._rec_packets, dtype=np.int64)[order],
            distinct_dsts=np.array(self._rec_distinct, dtype=np.int64)[order],
            port_sets=[self._rec_port_sets[i] for i in order],
            primary_port=np.array(self._rec_primary, dtype=np.uint16)[order],
            tool=np.array(self._rec_tool, dtype=object)[order],
            match_fraction=np.array(self._rec_match, dtype=float)[order],
            speed_pps=np.array(self._rec_speed, dtype=float)[order],
            coverage=np.array(self._rec_coverage, dtype=float)[order],
            sequential=np.array(self._rec_sequential, dtype=bool)[order],
            window_mode=np.array(self._rec_window, dtype=np.uint16)[order],
            ttl_mode=np.array(self._rec_ttl, dtype=np.uint8)[order],
        )

    # -- internals ----------------------------------------------------------

    def _retire(
        self, state: _SessionState, pending: List[_SessionState]
    ) -> None:
        """Close a session: queue it for scoring, or drop it outright."""
        self.buffered_bytes -= state.buffered
        threshold = self.criteria.min_distinct_dsts
        if state.count >= threshold and state.dst_set.size >= threshold:
            pending.append(state)
        else:
            self.sessions_discarded += 1

    def _commit(self, pending: List[_SessionState]) -> None:
        """Score a group of closed candidate sessions (batch-exact)."""
        counts = np.array([state.count for state in pending], dtype=np.int64)
        offsets = np.concatenate(
            ([0], np.cumsum(counts)[:-1])
        ).astype(np.int64)
        times = np.concatenate(
            [chunk for state in pending for chunk in state.times]
        )
        dsts = np.concatenate(
            [chunk for state in pending for chunk in state.dsts]
        ).astype(np.float64)
        start, end, sequential, rate = score_sessions(
            times, dsts, offsets, counts, self.criteria
        )
        min_rate = self.criteria.min_rate_pps
        keep: List[int] = []
        for i in range(len(pending)):
            if rate[i] < min_rate:
                self.sessions_discarded += 1
            else:
                keep.append(i)
        if not keep:
            return
        # Header-quirk modes of all kept sessions in one batched pass (the
        # heads are at most 64 packets each, so one sort over the lot beats
        # two ``np.unique`` calls per session).
        window_modes = _batched_modes(
            [_whole(pending[i].head_window) for i in keep]
        )
        ttl_modes = _batched_modes([_whole(pending[i].head_ttl) for i in keep])
        for j, i in enumerate(keep):
            self._record(pending[i], float(start[i]), float(end[i]),
                         bool(sequential[i]), float(rate[i]),
                         int(window_modes[j]), int(ttl_modes[j]))

    def _record(
        self,
        state: _SessionState,
        start: float,
        end: float,
        sequential: bool,
        rate: float,
        window_mode: int,
        ttl_mode: int,
    ) -> None:
        distinct = int(state.dst_set.size)
        verdict = self.fingerprinter.fingerprint_arrays(
            *(_whole(chunks) for chunks in state.fp_cols)
        )
        self._rec_src.append(state.src)
        self._rec_start.append(start)
        self._rec_end.append(end)
        self._rec_packets.append(state.count)
        self._rec_distinct.append(distinct)
        self._rec_port_sets.append(state.ports)
        self._rec_primary.append(int(state.ports[int(np.argmax(state.port_counts))]))
        self._rec_tool.append(verdict.tool)
        self._rec_match.append(verdict.match_fraction)
        self._rec_speed.append(rate)
        self._rec_coverage.append(
            min(1.0, distinct / self.criteria.telescope_size)
        )
        self._rec_sequential.append(sequential)
        self._rec_window.append(window_mode)
        self._rec_ttl.append(ttl_mode)

    # -- checkpoint state ----------------------------------------------------

    def snapshot(self) -> Dict[str, np.ndarray]:
        """Serialise the full mid-stream state into flat numpy arrays.

        Variable-length per-session data (buffers, tallies) is stored as
        concatenated value arrays plus ``int64`` offset arrays of length
        ``n_sessions + 1``; the finalised records the same way.  The result
        round-trips through ``np.savez`` untouched.
        """
        states = list(self._open.values())

        def offsets_of(sizes: List[int]) -> np.ndarray:
            return np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)

        def cat(chunks: List[np.ndarray], dtype) -> np.ndarray:
            if not chunks:
                return np.array([], dtype=dtype)
            return np.concatenate(chunks).astype(dtype, copy=False)

        fp_chunks: Tuple[List[np.ndarray], ...] = ([], [], [], [], [])
        for state in states:
            for store, chunks in zip(fp_chunks, state.fp_cols):
                store.extend(chunks)
        return {
            "open_src": np.array([s.src for s in states], dtype=np.uint32),
            "open_count": np.array([s.count for s in states], dtype=np.int64),
            "open_last_time": np.array(
                [s.last_time for s in states], dtype=np.float64
            ),
            "open_buf_offsets": offsets_of([s.count for s in states]),
            "open_times": cat(
                [c for s in states for c in s.times], np.float64
            ),
            "open_dsts": cat([c for s in states for c in s.dsts], np.uint32),
            "open_ports_offsets": offsets_of([s.ports.size for s in states]),
            "open_ports": cat([s.ports for s in states], np.int64),
            "open_port_counts": cat(
                [s.port_counts for s in states], np.int64
            ),
            "open_head_offsets": offsets_of([s.head_count for s in states]),
            "open_head_window": cat(
                [c for s in states for c in s.head_window], np.uint16
            ),
            "open_head_ttl": cat(
                [c for s in states for c in s.head_ttl], np.uint8
            ),
            "open_fp_offsets": offsets_of([s.fp_count for s in states]),
            "open_fp_ip_id": cat(fp_chunks[0], np.uint16),
            "open_fp_seq": cat(fp_chunks[1], np.uint32),
            "open_fp_dst_ip": cat(fp_chunks[2], np.uint32),
            "open_fp_dst_port": cat(fp_chunks[3], np.uint16),
            "open_fp_src_port": cat(fp_chunks[4], np.uint16),
            "counters": np.array(
                [self.packets_consumed, self.windows_consumed,
                 self.sessions_discarded],
                dtype=np.int64,
            ),
            "watermark": np.array([self.watermark], dtype=np.float64),
            "rec_src": np.array(self._rec_src, dtype=np.uint32),
            "rec_start": np.array(self._rec_start, dtype=np.float64),
            "rec_end": np.array(self._rec_end, dtype=np.float64),
            "rec_packets": np.array(self._rec_packets, dtype=np.int64),
            "rec_distinct": np.array(self._rec_distinct, dtype=np.int64),
            "rec_ports_offsets": offsets_of(
                [ports.size for ports in self._rec_port_sets]
            ),
            "rec_ports": cat(list(self._rec_port_sets), np.int64),
            "rec_primary": np.array(self._rec_primary, dtype=np.uint16),
            "rec_tool": np.array(
                [str(tool.value) for tool in self._rec_tool], dtype=np.str_
            ),
            "rec_match": np.array(self._rec_match, dtype=np.float64),
            "rec_speed": np.array(self._rec_speed, dtype=np.float64),
            "rec_coverage": np.array(self._rec_coverage, dtype=np.float64),
            "rec_sequential": np.array(self._rec_sequential, dtype=bool),
            "rec_window": np.array(self._rec_window, dtype=np.uint16),
            "rec_ttl": np.array(self._rec_ttl, dtype=np.uint8),
        }

    def restore(self, arrays: Dict[str, np.ndarray]) -> None:
        """Rebuild mid-stream state from a :meth:`snapshot` payload."""
        self._open.clear()
        self.buffered_bytes = 0
        self.peak_buffered_bytes = 0
        fp_limit = self.fingerprinter.sample_limit
        src_arr = arrays["open_src"]
        buf_off = arrays["open_buf_offsets"]
        ports_off = arrays["open_ports_offsets"]
        head_off = arrays["open_head_offsets"]
        fp_off = arrays["open_fp_offsets"]
        for i in range(src_arr.size):
            state = _SessionState(int(src_arr[i]))
            b0, b1 = int(buf_off[i]), int(buf_off[i + 1])
            times = arrays["open_times"][b0:b1].copy()
            dsts = arrays["open_dsts"][b0:b1].copy()
            state.times = [times]
            state.dsts = [dsts]
            state.dst_set = np.unique(dsts)
            p0, p1 = int(ports_off[i]), int(ports_off[i + 1])
            state.ports = arrays["open_ports"][p0:p1].copy()
            state.port_counts = arrays["open_port_counts"][p0:p1].copy()
            h0, h1 = int(head_off[i]), int(head_off[i + 1])
            head_window = arrays["open_head_window"][h0:h1].copy()
            head_ttl = arrays["open_head_ttl"][h0:h1].copy()
            state.head_window = [head_window]
            state.head_ttl = [head_ttl]
            state.head_count = h1 - h0
            f0, f1 = int(fp_off[i]), int(fp_off[i + 1])
            state.fp_cols = tuple(
                [arrays[name][f0:f1].copy()]
                for name in ("open_fp_ip_id", "open_fp_seq", "open_fp_dst_ip",
                             "open_fp_dst_port", "open_fp_src_port")
            )
            state.fp_count = min(f1 - f0, fp_limit)
            state.count = int(arrays["open_count"][i])
            state.last_time = float(arrays["open_last_time"][i])
            state.buffered = sum(
                chunk.nbytes
                for chunk in (times, dsts, head_window, head_ttl)
            ) + sum(chunks[0].nbytes for chunks in state.fp_cols)
            self.buffered_bytes += state.buffered
            self._open[state.src] = state
        counters = arrays["counters"]
        self.packets_consumed = int(counters[0])
        self.windows_consumed = int(counters[1])
        self.sessions_discarded = int(counters[2])
        self.watermark = float(arrays["watermark"][0])
        rec_ports_off = arrays["rec_ports_offsets"]
        self._rec_src = [int(v) for v in arrays["rec_src"]]
        self._rec_start = [float(v) for v in arrays["rec_start"]]
        self._rec_end = [float(v) for v in arrays["rec_end"]]
        self._rec_packets = [int(v) for v in arrays["rec_packets"]]
        self._rec_distinct = [int(v) for v in arrays["rec_distinct"]]
        self._rec_port_sets = [
            arrays["rec_ports"][
                int(rec_ports_off[i]):int(rec_ports_off[i + 1])
            ].copy()
            for i in range(len(self._rec_src))
        ]
        self._rec_primary = [int(v) for v in arrays["rec_primary"]]
        self._rec_tool = [Tool(str(v)) for v in arrays["rec_tool"]]
        self._rec_match = [float(v) for v in arrays["rec_match"]]
        self._rec_speed = [float(v) for v in arrays["rec_speed"]]
        self._rec_coverage = [float(v) for v in arrays["rec_coverage"]]
        self._rec_sequential = [bool(v) for v in arrays["rec_sequential"]]
        self._rec_window = [int(v) for v in arrays["rec_window"]]
        self._rec_ttl = [int(v) for v in arrays["rec_ttl"]]
        self.peak_buffered_bytes = self.buffered_bytes
