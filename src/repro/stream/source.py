"""Chunked ingestion front-ends for the streaming engine.

A *stream source* turns a capture — an ``.rtrace`` file, a pcap, or an
in-memory :class:`~repro.telescope.packet.PacketBatch` — into a sequence of
bounded *windows*: contiguous slices of the packet stream, re-batched to a
configurable packet budget and optionally aligned to wall-time boundaries.

Re-batching is **memoryless across window boundaries**: the split points
depend only on the packets after the previous boundary (a fill count that
resets on every emit, and absolute-time buckets).  That property is what
makes checkpoint resume exact — skipping the first *N* committed packets
and re-batching the remainder reproduces the original window sequence.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.telescope.packet import PacketBatch
from repro.telescope.trace import MAGIC, TraceReader, open_trace_reader

PathLike = Union[str, Path]

#: Default window budget: large enough that per-window numpy passes dominate
#: the Python orchestration, small enough to bound the working set.
DEFAULT_BATCH_SIZE = 65_536


def rebatch(
    chunks: Iterable[PacketBatch],
    batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
    window_s: Optional[float] = None,
) -> Iterator[PacketBatch]:
    """Re-chunk a batch stream into windows of at most ``batch_size`` packets.

    With ``window_s`` set, a window additionally never spans an absolute
    time boundary (``floor(time / window_s)`` changes force a flush), which
    assumes the stream is time-ordered — the engine enforces that anyway.
    Empty windows are never emitted; input chunk boundaries are otherwise
    invisible to the consumer.
    """
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if window_s is not None and window_s <= 0:
        raise ValueError("window_s must be positive")

    pending: List[PacketBatch] = []
    pending_n = 0
    pending_bucket: Optional[int] = None

    def take(k: int) -> PacketBatch:
        """Pop exactly ``k`` packets off the front of the pending queue."""
        nonlocal pending, pending_n
        out: List[PacketBatch] = []
        got = 0
        while got < k:
            head = pending[0]
            need = k - got
            if len(head) <= need:
                out.append(pending.pop(0))
                got += len(head)
            else:
                out.append(head[:need])
                pending[0] = head[need:]
                got += need
        pending_n -= k
        return out[0] if len(out) == 1 else PacketBatch.concat(out)

    def pieces_of(chunk: PacketBatch) -> Iterator[PacketBatch]:
        """Split a chunk wherever its time bucket changes."""
        if window_s is None or len(chunk) <= 1:
            yield chunk
            return
        buckets = np.floor(chunk.time / window_s).astype(np.int64)
        cuts = np.flatnonzero(buckets[1:] != buckets[:-1]) + 1
        prev = 0
        for cut in list(cuts) + [len(chunk)]:
            if cut > prev:
                yield chunk[prev:cut]
            prev = cut

    for chunk in chunks:
        if len(chunk) == 0:
            continue
        for piece in pieces_of(chunk):
            if window_s is not None:
                bucket = int(np.floor(float(piece.time[0]) / window_s))
                if pending_n and bucket != pending_bucket:
                    yield take(pending_n)
                pending_bucket = bucket
            # Zero-copy fast path: with nothing buffered, a piece that fits
            # the budget exactly IS the window — emit it as-is (the common
            # case when the capture's chunk size is a multiple of the window
            # budget, e.g. mmap chunks sliced by ``pieces_of``).  Buffered
            # pieces still share memory with their chunk (``take`` pops
            # views); only windows spanning chunk boundaries ever copy.
            if (
                not pending_n
                and batch_size is not None
                and len(piece) == batch_size
            ):
                yield piece
                continue
            pending.append(piece)
            pending_n += len(piece)
            while batch_size is not None and pending_n >= batch_size:
                yield take(batch_size)
    if pending_n:
        yield take(pending_n)


class StreamSource:
    """Base interface: windows of a capture, plus optional resume support."""

    #: Capture metadata (the ``.rtrace`` JSON block where available).
    meta: Dict[str, Any] = {}

    def identity(self) -> Optional[Dict[str, Any]]:
        """Stable description of the capture for checkpoint keying.

        ``None`` means the source cannot be re-identified across processes
        (e.g. an ad-hoc in-memory iterable), which disables checkpointing.
        """
        return None

    def windows(self, skip_packets: int = 0) -> Iterator[PacketBatch]:
        raise NotImplementedError


class TraceStreamSource(StreamSource):
    """Windows over an ``.rtrace`` capture.

    ``mmap=None`` (the default) reads through the zero-copy
    :class:`~repro.telescope.trace.MappedTraceReader` where the platform
    supports it, falling back to the buffered :class:`TraceReader`
    elsewhere; ``True`` requires the mapped reader, ``False`` forces the
    buffered one.  On the mapped path the windows handed to the engine are
    read-only views straight into the file — the sensor filter, re-batching
    and session building all run over the mapped pages in one pass, with a
    copy only where a window genuinely spans two chunks.

    ``skip_packets`` fast-forwards for checkpoint resume: an index seek on
    the mapped reader, chunk-header seeks on the buffered one — either way a
    resumed run re-reads almost none of the committed bytes.
    """

    def __init__(
        self,
        path: PathLike,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        window_s: Optional[float] = None,
        strict: bool = True,
        mmap: Optional[bool] = None,
    ):
        self.path = Path(path)
        self.batch_size = batch_size
        self.window_s = window_s
        self.strict = strict
        self.mmap = mmap
        #: Mirrors ``TraceReader.truncated`` after a ``windows()`` pass.
        self.truncated = False
        with TraceReader(self.path, strict=strict) as reader:
            self.meta = reader.meta

    def identity(self) -> Optional[Dict[str, Any]]:
        """Size plus a digest of the metadata block.

        Cheap (no full-content read) yet specific enough that a different
        capture squatting on the same path misses the checkpoint instead of
        corrupting the resume.
        """
        import json

        meta_blob = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        return {
            "kind": "rtrace",
            "size": self.path.stat().st_size,
            "meta_blake2b": hashlib.blake2b(
                MAGIC + meta_blob, digest_size=16
            ).hexdigest(),
        }

    def windows(self, skip_packets: int = 0) -> Iterator[PacketBatch]:
        with open_trace_reader(
            self.path, strict=self.strict, use_mmap=self.mmap
        ) as reader:
            chunks: Iterator[PacketBatch]
            if skip_packets:
                remainder = reader.skip_packets(skip_packets)
                chunks = _chain_remainder(remainder, reader)
            else:
                chunks = iter(reader)
            yield from rebatch(chunks, self.batch_size, self.window_s)
            self.truncated = reader.truncated


class BatchStreamSource(StreamSource):
    """Windows over an in-memory batch (tests, library callers).

    No stable cross-process identity, so checkpointing is unavailable;
    ``skip_packets`` still works (in-process restarts, unit tests).
    """

    def __init__(
        self,
        batch: PacketBatch,
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        window_s: Optional[float] = None,
    ):
        self._batch = batch
        self.batch_size = batch_size
        self.window_s = window_s
        self.meta = {}

    def windows(self, skip_packets: int = 0) -> Iterator[PacketBatch]:
        if skip_packets > len(self._batch):
            raise ValueError(
                f"cannot skip {skip_packets} packets of a "
                f"{len(self._batch)}-packet batch"
            )
        rest = self._batch[skip_packets:] if skip_packets else self._batch
        yield from rebatch(iter([rest]), self.batch_size, self.window_s)


class IterStreamSource(StreamSource):
    """Windows over any one-shot batch iterable (pcap adapters, generators).

    Single use: the underlying iterable is consumed by the first
    ``windows()`` call.  Resume is unsupported (no identity, no skipping).
    """

    def __init__(
        self,
        batches: Iterable[PacketBatch],
        batch_size: Optional[int] = DEFAULT_BATCH_SIZE,
        window_s: Optional[float] = None,
    ):
        self._batches = iter(batches)
        self.batch_size = batch_size
        self.window_s = window_s
        self.meta = {}

    def windows(self, skip_packets: int = 0) -> Iterator[PacketBatch]:
        if skip_packets:
            raise ValueError("IterStreamSource cannot skip packets")
        yield from rebatch(self._batches, self.batch_size, self.window_s)


def _chain_remainder(
    remainder: PacketBatch, rest: Iterable[PacketBatch]
) -> Iterator[PacketBatch]:
    if len(remainder):
        yield remainder
    yield from rest
