"""Live progress/stats surface of the streaming engine.

:class:`StreamStats` is a plain snapshot the engine refreshes after every
committed window; consumers (the ``repro-scan stream`` CLI, tests, or any
long-running service wrapping the engine) read it to answer "how fast, how
much is buffered, how far along".  The helpers here are deliberately free of
engine internals so ``report``/``validate`` reuse them for their own
resource summaries.

Wall-clock reads live behind :func:`wall_clock` — this is operational
telemetry about the *process*, not simulation state, so it is exempt from
the RPR001 determinism rule (nothing downstream of an analysis ever
consumes these numbers).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Sequence


def wall_clock() -> float:
    """Monotonic wall-clock seconds for throughput accounting."""
    return time.perf_counter()  # repro-lint: disable=RPR001


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; platforms
    without the :mod:`resource` module report 0 rather than failing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def format_bytes(n: int) -> str:
    """Human-readable byte count (``142.3 MB``)."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} TB"  # pragma: no cover - unreachable


@dataclass
class StreamStats:
    """Counters describing one streaming run, refreshed per window."""

    #: Packets consumed so far (including packets restored from a checkpoint).
    packets: int = 0
    #: Windows committed so far.
    windows: int = 0
    #: Packets skipped on resume because a checkpoint already covered them.
    resumed_packets: int = 0
    #: Sessions currently open (accumulating, not yet past the idle gap).
    open_sessions: int = 0
    #: Packets buffered inside open sessions.
    open_packets: int = 0
    #: Open sessions already past the distinct-destination threshold.
    candidate_sessions: int = 0
    #: Sessions finalised into scans.
    scans: int = 0
    #: Sessions finalised and discarded (below the campaign criteria).
    sessions_discarded: int = 0
    #: Bytes buffered by open-session accumulators (column copies only).
    buffered_bytes: int = 0
    #: High-water mark of ``buffered_bytes`` over the run — the bounded-
    #: memory guarantee in one number (``buffered_bytes`` itself drains to 0
    #: by the time a run finishes, so only the peak is meaningful then).
    peak_open_session_bytes: int = 0
    #: Bytes held by the incremental analysis accumulators (0 when no
    #: analyses ride along); bounded like the session buffers — it scales
    #: with distinct keys and finalised scans, never with packets streamed.
    analysis_state_bytes: int = 0
    #: Wall-clock seconds spent streaming (excludes skipped resume windows).
    wall_s: float = 0.0
    #: Peak resident-set size of the process, bytes.
    peak_rss_bytes: int = field(default_factory=peak_rss_bytes)

    @property
    def packets_per_s(self) -> float:
        """Consumption throughput over this run's wall time."""
        fresh = self.packets - self.resumed_packets
        return fresh / self.wall_s if self.wall_s > 0 else 0.0

    def progress_line(self) -> str:
        """One-line human rendering for live progress output."""
        return (
            f"w={self.windows} packets={self.packets:,} "
            f"({self.packets_per_s:,.0f} pps) open={self.open_sessions:,} "
            f"candidates={self.candidate_sessions:,} scans={self.scans:,} "
            f"buffered={format_bytes(self.buffered_bytes)} "
            f"rss={format_bytes(self.peak_rss_bytes)}"
        )

    def summary_line(self) -> str:
        """One-line human rendering for end-of-run output."""
        return (
            f"{self.packets:,} packets in {self.windows} window(s), "
            f"{self.scans:,} scan(s), {self.packets_per_s:,.0f} pps, "
            f"peak RSS {format_bytes(self.peak_rss_bytes)}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (``--stats-json``, benchmarks)."""
        return {
            "packets": self.packets,
            "windows": self.windows,
            "resumed_packets": self.resumed_packets,
            "open_sessions": self.open_sessions,
            "open_packets": self.open_packets,
            "candidate_sessions": self.candidate_sessions,
            "scans": self.scans,
            "sessions_discarded": self.sessions_discarded,
            "buffered_bytes": self.buffered_bytes,
            "peak_open_session_bytes": self.peak_open_session_bytes,
            "analysis_state_bytes": self.analysis_state_bytes,
            "wall_s": self.wall_s,
            "packets_per_s": self.packets_per_s,
            "peak_rss_bytes": self.peak_rss_bytes,
        }

    @classmethod
    def merge(cls, parts: Sequence["StreamStats"]) -> "StreamStats":
        """Aggregate per-shard stats into one run-level view.

        Shards partition the sources, so additive counters (packets, scans,
        discards, open-session gauges) simply sum.  Windows do not: every
        shard walks the same raw window sequence, so the aggregate keeps the
        maximum.  Wall time is the slowest shard (shards overlap when run in
        worker processes), and the memory gauges keep the per-shard maximum —
        the bound the sharded design promises is *per shard*, not summed
        across a fleet of workers.
        """
        out = cls(peak_rss_bytes=0)
        for part in parts:
            out.packets += part.packets
            out.resumed_packets += part.resumed_packets
            out.open_sessions += part.open_sessions
            out.open_packets += part.open_packets
            out.candidate_sessions += part.candidate_sessions
            out.scans += part.scans
            out.sessions_discarded += part.sessions_discarded
            out.buffered_bytes += part.buffered_bytes
            out.analysis_state_bytes += part.analysis_state_bytes
            out.windows = max(out.windows, part.windows)
            out.wall_s = max(out.wall_s, part.wall_s)
            out.peak_open_session_bytes = max(
                out.peak_open_session_bytes, part.peak_open_session_bytes
            )
            out.peak_rss_bytes = max(out.peak_rss_bytes, part.peak_rss_bytes)
        return out
