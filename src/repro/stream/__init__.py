"""repro.stream — streaming ingestion and incremental analysis.

Turns the batch pipeline into a bounded-memory, resumable one: chunked
ingestion over ``.rtrace`` captures (:mod:`~repro.stream.source`), an
incremental scan identifier stream-equivalent to batch ``identify_scans``
(:mod:`~repro.stream.incremental`), durable content-addressed checkpoints
(:mod:`~repro.stream.checkpoint`), and a live progress/stats surface
(:mod:`~repro.stream.stats`), all orchestrated by
:class:`~repro.stream.engine.StreamEngine` — or, source-sharded across
worker processes with bit-identical output, by
:class:`~repro.stream.sharded.ShardedStreamEngine`.
"""

from repro.stream.checkpoint import (
    STREAM_SCHEMA_VERSION,
    CheckpointStore,
    CheckpointVersionError,
)
from repro.stream.engine import (
    StreamConfig,
    StreamEngine,
    StreamResult,
    as_stream_source,
    identify_scans_stream,
)
from repro.stream.incremental import IncrementalScanIdentifier, StreamOrderError
from repro.stream.sharded import (
    ShardedStreamEngine,
    ShardedStreamResult,
    ShardRun,
    identify_scans_sharded,
    merge_scan_tables,
    shard_of,
)
from repro.stream.source import (
    DEFAULT_BATCH_SIZE,
    BatchStreamSource,
    IterStreamSource,
    StreamSource,
    TraceStreamSource,
    rebatch,
)
from repro.stream.stats import StreamStats, format_bytes, peak_rss_bytes

__all__ = [
    "STREAM_SCHEMA_VERSION",
    "CheckpointStore",
    "CheckpointVersionError",
    "StreamConfig",
    "StreamEngine",
    "StreamResult",
    "as_stream_source",
    "identify_scans_stream",
    "IncrementalScanIdentifier",
    "StreamOrderError",
    "ShardedStreamEngine",
    "ShardedStreamResult",
    "ShardRun",
    "identify_scans_sharded",
    "merge_scan_tables",
    "shard_of",
    "DEFAULT_BATCH_SIZE",
    "BatchStreamSource",
    "IterStreamSource",
    "StreamSource",
    "TraceStreamSource",
    "rebatch",
    "StreamStats",
    "format_bytes",
    "peak_rss_bytes",
]
