"""repro.stream — streaming ingestion and incremental analysis.

Turns the batch pipeline into a bounded-memory, resumable one: chunked
ingestion over ``.rtrace`` captures (:mod:`~repro.stream.source`), an
incremental scan identifier stream-equivalent to batch ``identify_scans``
(:mod:`~repro.stream.incremental`), durable content-addressed checkpoints
(:mod:`~repro.stream.checkpoint`), and a live progress/stats surface
(:mod:`~repro.stream.stats`), all orchestrated by
:class:`~repro.stream.engine.StreamEngine` — or, source-sharded across
worker processes with bit-identical output, by
:class:`~repro.stream.sharded.ShardedStreamEngine`.  On top of the scan
identifier, :mod:`~repro.stream.analyses` runs the paper's longitudinal
analyses incrementally, and :func:`~repro.stream.report.stream_report`
produces the full batch-equal :class:`~repro.core.report.PaperReport` in
one bounded-memory pass.
"""

from repro.stream.analyses import (
    ANALYSES_SCHEMA_VERSION,
    AnalysisConfig,
    AnalysisSuite,
    IncrementalChurn,
    IncrementalRecurrence,
    IncrementalTrends,
    IncrementalVolatility,
)
from repro.stream.checkpoint import (
    STREAM_SCHEMA_VERSION,
    CheckpointStore,
    CheckpointVersionError,
)
from repro.stream.engine import (
    StreamConfig,
    StreamEngine,
    StreamResult,
    as_stream_source,
    identify_scans_stream,
)
from repro.stream.incremental import IncrementalScanIdentifier, StreamOrderError
from repro.stream.report import StreamReportResult, stream_report
from repro.stream.sharded import (
    ShardedStreamEngine,
    ShardedStreamResult,
    ShardRun,
    identify_scans_sharded,
    merge_scan_tables,
    shard_of,
)
from repro.stream.source import (
    DEFAULT_BATCH_SIZE,
    BatchStreamSource,
    IterStreamSource,
    StreamSource,
    TraceStreamSource,
    rebatch,
)
from repro.stream.stats import StreamStats, format_bytes, peak_rss_bytes

__all__ = [
    "ANALYSES_SCHEMA_VERSION",
    "AnalysisConfig",
    "AnalysisSuite",
    "IncrementalChurn",
    "IncrementalRecurrence",
    "IncrementalTrends",
    "IncrementalVolatility",
    "StreamReportResult",
    "stream_report",
    "STREAM_SCHEMA_VERSION",
    "CheckpointStore",
    "CheckpointVersionError",
    "StreamConfig",
    "StreamEngine",
    "StreamResult",
    "as_stream_source",
    "identify_scans_stream",
    "IncrementalScanIdentifier",
    "StreamOrderError",
    "ShardedStreamEngine",
    "ShardedStreamResult",
    "ShardRun",
    "identify_scans_sharded",
    "merge_scan_tables",
    "shard_of",
    "DEFAULT_BATCH_SIZE",
    "BatchStreamSource",
    "IterStreamSource",
    "StreamSource",
    "TraceStreamSource",
    "rebatch",
    "StreamStats",
    "format_bytes",
    "peak_rss_bytes",
]
