"""Durable checkpoints for the streaming engine.

A checkpoint is the full :class:`~repro.stream.incremental.IncrementalScanIdentifier`
state after some prefix of committed windows — open-session buffers,
finalised records, and the consumed-packet counter — serialised to one
``.npz`` file.  A killed run resumes by restoring the newest checkpoint and
asking the source to skip the packets it already consumed; memoryless
re-batching (see :mod:`repro.stream.source`) guarantees the resumed window
sequence matches the original one exactly.

Like :class:`repro.exec.cache.CaptureCache`, entries are content-addressed:
the key digests everything that determines the stream's behaviour (source
identity, campaign criteria, fingerprinter settings, batching parameters,
schema/library version), so a checkpoint can never be replayed against a
different capture or configuration.  Writes are atomic (temp file +
``os.replace``); a crash mid-save leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro import __version__
from repro.core.campaigns import CampaignCriteria
from repro.core.fingerprints import ToolFingerprinter
from repro.exec.cache import _canonical

#: Bump when the snapshot array layout changes; stale checkpoints are then
#: ignored (the stream simply restarts from the beginning).
STREAM_SCHEMA_VERSION = 1

PathLike = Union[str, Path]


class CheckpointVersionError(ValueError):
    """A checkpoint exists but was written by an incompatible version."""


class CheckpointStore:
    """A directory of content-addressed streaming checkpoints."""

    def __init__(self, root: PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Why the most recent :meth:`load` treated a present file as a
        #: miss (``None`` when the load hit or the file was absent).
        self.last_mismatch: Optional[str] = None

    # -- keys ---------------------------------------------------------------

    def key_for(
        self,
        source_identity: Dict[str, Any],
        criteria: CampaignCriteria,
        fingerprinter: ToolFingerprinter,
        batch_size: Optional[int],
        window_s: Optional[float],
        shard: Optional[Tuple[int, int]] = None,
        analyses: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Content key of one (capture, configuration) streaming run.

        The batching parameters are part of the key because they shape the
        window sequence, and a restored run must replay the exact windows
        the checkpointed run saw.  ``shard=(index, of)`` keys one shard of
        a sharded run (see :mod:`repro.stream.sharded`); it joins the key
        material only when given, so unsharded keys are unchanged and a
        shard can never resume from another shard's (or the serial run's)
        state.  ``analyses`` (the
        :meth:`~repro.stream.analyses.AnalysisConfig.key_material` dict of a
        run with incremental analyses attached) joins the same way: a run
        carrying analysis accumulators can never restore a checkpoint
        written without them — the suite would silently miss every window
        the identifier skips.
        """
        material = {
            "schema": STREAM_SCHEMA_VERSION,
            "version": __version__,
            "source": _canonical(source_identity),
            "criteria": _canonical(criteria),
            "fingerprinter": {
                "threshold": _canonical(fingerprinter.threshold),
                "sample_limit": fingerprinter.sample_limit,
            },
            "batching": {
                "batch_size": batch_size,
                "window_s": _canonical(window_s),
            },
        }
        if shard is not None:
            material["shard"] = {"index": shard[0], "of": shard[1]}
        if analyses is not None:
            material["analyses"] = _canonical(analyses)
        blob = json.dumps(material, sort_keys=True).encode("utf-8")
        return hashlib.blake2b(blob, digest_size=16).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.stream.npz"

    # -- save / load --------------------------------------------------------

    def save(self, key: str, arrays: Dict[str, np.ndarray]) -> Path:
        """Persist one snapshot under ``key`` (atomic replace)."""
        path = self.path_for(key)
        payload = dict(arrays)
        payload["checkpoint_meta"] = np.array(
            json.dumps({
                "schema": STREAM_SCHEMA_VERSION,
                "version": __version__,
                "key": key,
            }, sort_keys=True)
        )
        tmp = path.with_name(path.name + f".tmp{os.getpid()}.npz")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **payload)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                tmp.unlink()
        return path

    def load(
        self, key: str, strict: bool = False
    ) -> Optional[Dict[str, np.ndarray]]:
        """Materialise the snapshot for ``key``, or ``None`` when absent.

        A checkpoint written by a different schema/library version or
        squatting on the wrong key is treated as a miss by default — the
        caller just streams from the start — but the reason (naming the
        file, the versions it was written by, and the versions this build
        reads) is recorded in :attr:`last_mismatch` and raised as
        :class:`CheckpointVersionError` under ``strict=True``.
        """
        self.last_mismatch = None
        path = self.path_for(key)
        if not path.exists():
            return None
        with np.load(path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
        meta_blob = arrays.pop("checkpoint_meta", None)
        if meta_blob is None:
            return self._mismatch(
                f"checkpoint {path} has no checkpoint_meta block "
                f"(this build reads schema {STREAM_SCHEMA_VERSION} / "
                f"library {__version__})",
                strict,
            )
        try:
            meta = json.loads(str(meta_blob))
        except json.JSONDecodeError:
            return self._mismatch(
                f"checkpoint {path} has an unreadable checkpoint_meta "
                f"block (this build reads schema {STREAM_SCHEMA_VERSION} / "
                f"library {__version__})",
                strict,
            )
        if (
            meta.get("schema") != STREAM_SCHEMA_VERSION
            or meta.get("version") != __version__
        ):
            return self._mismatch(
                f"checkpoint {path} was written by schema "
                f"{meta.get('schema')!r} / library {meta.get('version')!r}; "
                f"this build reads schema {STREAM_SCHEMA_VERSION!r} / "
                f"library {__version__!r}",
                strict,
            )
        if meta.get("key") != key:
            return self._mismatch(
                f"checkpoint {path} records key {meta.get('key')!r} but was "
                f"looked up as {key!r}",
                strict,
            )
        return arrays

    def _mismatch(self, message: str, strict: bool) -> None:
        self.last_mismatch = message
        if strict:
            raise CheckpointVersionError(message)
        return None

    # -- maintenance --------------------------------------------------------

    def delete(self, key: str) -> bool:
        """Drop the checkpoint for ``key`` (e.g. after a completed run)."""
        path = self.path_for(key)
        if path.exists():
            path.unlink()
            return True
        return False

    def entries(self) -> list:
        return sorted(self.root.glob("*.stream.npz"))
