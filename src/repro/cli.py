"""Command-line interface.

Four subcommands cover the simulate → capture → analyse → report loop::

    repro-scan simulate --year 2020 --out capture.rtrace [--pcap capture.pcap]
    repro-scan analyze capture.rtrace
    repro-scan report --years 2015,2020,2024
    repro-scan fingerprint capture.rtrace

Captures produced by ``simulate`` carry their period metadata, so
``analyze`` needs no extra flags; externally produced pcap files can be
analysed with explicit ``--year``/``--days``.  The synthetic Internet
registry is deterministic, so enrichment works identically across
processes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import __version__
from repro.core import (
    analyze_period,
    analyze_simulation,
    known_scanner_share,
    single_source_bias,
    summarize_period,
    type_shares,
)
from repro.core.fingerprints import ToolFingerprinter
from repro.enrichment import ScannerClassifier, build_default_registry
from repro.reporting import (
    render_scorecard,
    render_table1,
    render_table2,
    validate_reproduction,
)
from repro.simulation import ALL_YEARS, TelescopeWorld
from repro.telescope import (
    PrefixPreservingAnonymizer,
    read_pcap,
    read_trace,
    write_pcap,
    write_trace,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scan",
        description="Reproduction toolkit for 'Have you SYN me?' (IMC 2024)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic telescope capture")
    sim.add_argument("--year", type=int, default=2020, choices=ALL_YEARS)
    sim.add_argument("--days", type=int, default=14)
    sim.add_argument("--max-packets", type=int, default=300_000)
    sim.add_argument("--min-scans", type=int, default=600)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--out", type=Path, required=True,
                     help="output .rtrace path")
    sim.add_argument("--pcap", type=Path, default=None,
                     help="also write a pcap copy (tcpdump/Wireshark)")
    sim.add_argument("--cache-dir", type=Path, default=None,
                     help="content-addressed capture cache directory")

    ana = sub.add_parser("analyze", help="run the full pipeline over a capture")
    ana.add_argument("capture", type=Path, help=".rtrace or .pcap file")
    ana.add_argument("--year", type=int, default=None,
                     help="override the capture's year metadata")
    ana.add_argument("--days", type=int, default=None,
                     help="override the capture's period length")

    rep = sub.add_parser("report", help="simulate years and print Table 1")
    rep.add_argument("--years", type=str, default="2015,2020,2024",
                     help="comma-separated study years")
    rep.add_argument("--days", type=int, default=14)
    rep.add_argument("--max-packets", type=int, default=250_000)
    rep.add_argument("--seed", type=int, default=7)
    rep.add_argument("--workers", type=int, default=0,
                     help="simulate years over N worker processes (0 = serial)")
    rep.add_argument("--cache-dir", type=Path, default=None,
                     help="content-addressed capture cache directory")

    fpr = sub.add_parser("fingerprint", help="per-tool attribution of a capture")
    fpr.add_argument("capture", type=Path)

    val = sub.add_parser(
        "validate",
        help="simulate a mini decade and print the paper-claim scorecard",
    )
    val.add_argument("--days", type=int, default=10)
    val.add_argument("--max-packets", type=int, default=100_000)
    val.add_argument("--seed", type=int, default=7)
    val.add_argument("--years", type=str, default="2015,2017,2020,2022,2024")
    val.add_argument("--workers", type=int, default=0,
                     help="simulate years over N worker processes (0 = serial)")
    val.add_argument("--cache-dir", type=Path, default=None,
                     help="content-addressed capture cache directory")

    anon = sub.add_parser(
        "anonymize",
        help="prefix-preserving source-address anonymisation of a capture",
    )
    anon.add_argument("capture", type=Path, help="input .rtrace file")
    anon.add_argument("--out", type=Path, required=True)
    anon.add_argument("--key", type=int, required=True,
                      help="64-bit anonymisation key")
    anon.add_argument("--both-sides", action="store_true",
                      help="also anonymise destination addresses")

    return parser


def _make_cache(args: argparse.Namespace):
    """Build the capture cache named by ``--cache-dir`` (or ``None``)."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.exec import CaptureCache

    return CaptureCache(args.cache_dir)


def _load_capture(path: Path):
    """Read a capture plus its metadata from .rtrace or .pcap."""
    if path.suffix == ".pcap":
        return read_pcap(path), {}
    batch, meta = read_trace(path)
    return batch, meta


def _cmd_simulate(args: argparse.Namespace) -> int:
    world = TelescopeWorld(rng=args.seed)
    cache = _make_cache(args)
    sim = world.simulate_year(
        args.year, days=args.days, max_packets=args.max_packets,
        min_scans=args.min_scans, cache=cache,
    )
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)
    meta = {
        "year": sim.year,
        "days": sim.days,
        "packet_scale": sim.packet_scale,
        "scan_scale": sim.scan_scale,
        "seed": args.seed,
    }
    write_trace(args.out, sim.batch, meta=meta)
    print(f"wrote {len(sim.batch):,} packets to {args.out}")
    if args.pcap is not None:
        write_pcap(args.pcap, sim.batch)
        print(f"wrote pcap copy to {args.pcap}")
    print(f"ground truth: {len(sim.campaigns):,} campaigns, "
          f"{sim.background_sources:,} background sources, "
          f"SYN share {sim.syn_scan_share():.1%}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    batch, meta = _load_capture(args.capture)
    year = args.year if args.year is not None else meta.get("year")
    days = args.days if args.days is not None else meta.get("days")
    if year is None or days is None:
        print("error: capture carries no year/days metadata; "
              "pass --year and --days", file=sys.stderr)
        return 2
    classifier = ScannerClassifier(build_default_registry())
    analysis = analyze_period(batch, year=int(year), days=int(days),
                              classifier=classifier)
    summary = summarize_period(analysis)
    print(render_table1({int(year): summary}))
    print()
    print(render_table2(type_shares(analysis)))
    share = known_scanner_share(analysis)
    print(f"\nknown scanners: {share.organisations} orgs, "
          f"{share.source_share:.2%} of sources, "
          f"{share.packet_share:.1%} of packets")
    bias = single_source_bias(analysis.study_scans)
    print(f"single-source counting inflation: {bias.inflation_factor:.2f}x "
          f"({bias.collaborative_campaigns} collaborative campaigns)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        years = [int(y) for y in args.years.split(",") if y.strip()]
    except ValueError:
        print(f"error: malformed --years {args.years!r}", file=sys.stderr)
        return 2
    bad = [y for y in years if y not in ALL_YEARS]
    if bad or not years:
        print(f"error: years outside the study range: {bad}", file=sys.stderr)
        return 2
    world = TelescopeWorld(rng=args.seed)
    cache = _make_cache(args)
    sims = world.simulate_years(
        years, days=args.days, max_packets=args.max_packets,
        workers=args.workers, cache=cache,
    )
    summaries = {}
    for year in years:
        sim = sims[year]
        summaries[year] = summarize_period(analyze_simulation(sim))
        origin = "cached" if sim.cache_hit else "simulated"
        print(f"{year}: {origin} {len(sim.batch):,} packets", file=sys.stderr)
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)
    print(render_table1(
        summaries, scale_note="(simulation scale; volumes not projected)"
    ))
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    batch, meta = _load_capture(args.capture)
    if len(batch) == 0:
        print("capture is empty", file=sys.stderr)
        return 1
    tools = ToolFingerprinter().per_packet_tool(batch)
    total = len(batch)
    print(f"{total:,} packets")
    import numpy as np
    values, counts = np.unique([str(t) for t in tools], return_counts=True)
    for value, count in sorted(zip(values, counts), key=lambda kv: -kv[1]):
        print(f"  {value:10s} {count / total:6.1%}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        years = [int(y) for y in args.years.split(",") if y.strip()]
    except ValueError:
        print(f"error: malformed --years {args.years!r}", file=sys.stderr)
        return 2
    bad = [y for y in years if y not in ALL_YEARS]
    if bad or not years:
        print(f"error: years outside the study range: {bad}", file=sys.stderr)
        return 2
    world = TelescopeWorld(rng=args.seed)
    cache = _make_cache(args)
    print(f"simulating {len(years)} year(s) "
          f"(workers={args.workers}) ...", file=sys.stderr)
    sims = world.simulate_years(
        years, days=args.days, max_packets=args.max_packets, min_scans=400,
        workers=args.workers, cache=cache,
    )
    analyses = {year: analyze_simulation(sims[year]) for year in years}
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)
    checks = validate_reproduction(analyses, sims)
    print(render_scorecard(checks))
    return 0 if all(c.passed for c in checks) else 1


def _cmd_anonymize(args: argparse.Namespace) -> int:
    batch, meta = read_trace(args.capture)
    try:
        anonymizer = PrefixPreservingAnonymizer(args.key)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = anonymizer.anonymize_batch(batch, sources_only=not args.both_sides)
    meta = dict(meta)
    meta["anonymized"] = True
    write_trace(args.out, out, meta=meta)
    print(f"wrote {len(out):,} anonymised packets to {args.out}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "report": _cmd_report,
    "fingerprint": _cmd_fingerprint,
    "anonymize": _cmd_anonymize,
    "validate": _cmd_validate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
