"""Command-line interface.

The subcommands cover the simulate → capture → analyse → report loop::

    repro-scan simulate --year 2020 --out capture.rtrace [--pcap capture.pcap]
    repro-scan analyze capture.rtrace
    repro-scan stream capture.rtrace --checkpoint-dir .stream-ckpt
    repro-scan report --years 2015,2020,2024
    repro-scan fingerprint capture.rtrace
    repro-scan cache ls --cache-dir .capture-cache
    repro-scan serve --port 8752 --workers 4

Captures produced by ``simulate`` carry their period metadata, so
``analyze`` needs no extra flags; externally produced pcap files can be
analysed with explicit ``--year``/``--days``.  The synthetic Internet
registry is deterministic, so enrichment works identically across
processes.

Flag parity: every subcommand that loads captures accepts ``--workers`` /
``--cache-dir`` (a capture argument may then name a cache entry by its
content key), and a shared ``--batch-size`` that bounds the streaming
reader's windows.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro import __version__
from repro.core import (
    analyze_period,
    analyze_simulation,
    known_scanner_share,
    single_source_bias,
    summarize_period,
    type_shares,
)
from repro.core.fingerprints import ToolFingerprinter
from repro.core.report import paper_report
from repro.enrichment import ScannerClassifier, build_default_registry
from repro.reporting import (
    render_paper_report,
    render_paper_report_json,
    render_scorecard,
    render_table1,
    render_table2,
    validate_reproduction,
)
from repro.simulation import ALL_YEARS, TelescopeWorld
from repro.stream import DEFAULT_BATCH_SIZE as STREAM_DEFAULT_BATCH_SIZE
from repro.stream import (
    BatchStreamSource,
    ShardedStreamEngine,
    StreamConfig,
    StreamEngine,
    TraceStreamSource,
    format_bytes,
    peak_rss_bytes,
    stream_report,
)
from repro.telescope import (
    PacketBatch,
    PrefixPreservingAnonymizer,
    read_pcap,
    write_pcap,
    write_trace,
)


class _GracefulStop:
    """SIGINT/SIGTERM as a polled flag instead of an exception.

    Installing replaces both handlers with one that only records which
    signal arrived (and fires an optional callback); long-running commands
    poll :meth:`stop` at safe boundaries — a checkpointed window, an HTTP
    accept loop — flush their state, and exit 0.  Handlers can only be set
    on the main thread; elsewhere (pytest workers calling ``main()``)
    install is a no-op and ``stop`` stays permanently False.  ``restore``
    puts the previous handlers back, so nothing leaks across calls.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, on_signal: Optional[Callable[[], None]] = None):
        self.signal_name: Optional[str] = None
        self._on_signal = on_signal
        self._previous: dict = {}

    def install(self) -> "_GracefulStop":
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in self._SIGNALS:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def _handle(self, signum, frame) -> None:
        self.signal_name = signal.Signals(signum).name
        if self._on_signal is not None:
            self._on_signal()

    def stop(self) -> bool:
        return self.signal_name is not None

    def restore(self) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()


def _parse_size(text: str) -> int:
    """Parse a byte budget like ``750K``, ``64M``, ``2G`` or ``1048576``."""
    units = {"K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}
    raw = text.strip().upper()
    multiplier = 1
    if raw and raw[-1] in units:
        multiplier = units[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * multiplier)
    except ValueError:
        raise ValueError(f"malformed size {text!r} (expected e.g. 64M, 2G)")
    if value < 0:
        raise ValueError(f"size must be >= 0, got {text!r}")
    return value


def _add_worker_flags(parser: argparse.ArgumentParser) -> None:
    """The shared execution flags every capture-touching subcommand takes."""
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for simulation (0 = serial)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="content-addressed capture cache directory")


def _add_capture_flags(parser: argparse.ArgumentParser) -> None:
    """Flags of subcommands that read a capture through the streaming layer."""
    _add_worker_flags(parser)
    parser.add_argument("--batch-size", type=int, default=None,
                        help="streaming-reader window size in packets "
                             f"(default {STREAM_DEFAULT_BATCH_SIZE:,})")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scan",
        description="Reproduction toolkit for 'Have you SYN me?' (IMC 2024)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic telescope capture")
    sim.add_argument("--year", type=int, default=2020, choices=ALL_YEARS)
    sim.add_argument("--days", type=int, default=14)
    sim.add_argument("--max-packets", type=int, default=300_000)
    sim.add_argument("--min-scans", type=int, default=600)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--out", type=Path, required=True,
                     help="output .rtrace path")
    sim.add_argument("--pcap", type=Path, default=None,
                     help="also write a pcap copy (tcpdump/Wireshark)")
    _add_worker_flags(sim)

    ana = sub.add_parser("analyze", help="run the full pipeline over a capture")
    ana.add_argument("capture", type=Path, help=".rtrace/.pcap file or cache key")
    ana.add_argument("--year", type=int, default=None,
                     help="override the capture's year metadata")
    ana.add_argument("--days", type=int, default=None,
                     help="override the capture's period length")
    ana.add_argument("--report", action="store_true",
                     help="print the combined paper report (trends, "
                          "volatility, recurrence, churn) instead of the "
                          "Table 1/2 summary")
    ana.add_argument("--json", action="store_true",
                     help="with --report: emit the machine-readable JSON "
                          "report instead of the text tables")
    _add_capture_flags(ana)

    stm = sub.add_parser(
        "stream",
        help="bounded-memory streaming scan identification with checkpoints",
    )
    stm.add_argument("capture", type=Path, help=".rtrace/.pcap file or cache key")
    stm.add_argument("--window-s", type=float, default=None,
                     help="align windows to absolute time buckets of this size")
    stm.add_argument("--checkpoint-dir", type=Path, default=None,
                     help="durable checkpoint directory (enables resume)")
    stm.add_argument("--checkpoint-every", type=int, default=8,
                     help="windows between checkpoint saves")
    stm.add_argument("--progress-every", type=int, default=0,
                     help="print a progress line every N windows (0 = off)")
    stm.add_argument("--stats-json", type=Path, default=None,
                     help="write the final stream stats as JSON")
    stm.add_argument("--tolerate-truncation", action="store_true",
                     help="accept a cleanly-truncated final trace batch")
    stm.add_argument("--shards", type=int, default=1,
                     help="source-hash shards; >1 splits the identifier "
                          "state by hash(src_ip) %% N with bit-identical "
                          "output (--workers then runs shards in parallel)")
    stm.add_argument("--mmap", action=argparse.BooleanOptionalAction,
                     default=None,
                     help="force (--mmap) or forbid (--no-mmap) the "
                          "zero-copy mapped trace reader; default auto")
    stm.add_argument("--report", action="store_true",
                     help="run the incremental analyses alongside the "
                          "identifier and print the combined paper report "
                          "(equal to 'analyze --report', in one bounded-"
                          "memory pass)")
    stm.add_argument("--json", action="store_true",
                     help="with --report: emit the machine-readable JSON "
                          "report instead of the text tables")
    stm.add_argument("--year", type=int, default=None,
                     help="override the capture's year metadata (--report)")
    stm.add_argument("--days", type=int, default=None,
                     help="override the capture's period length (--report)")
    _add_capture_flags(stm)

    rep = sub.add_parser("report", help="simulate years and print Table 1")
    rep.add_argument("--years", type=str, default="2015,2020,2024",
                     help="comma-separated study years")
    rep.add_argument("--days", type=int, default=14)
    rep.add_argument("--max-packets", type=int, default=250_000)
    rep.add_argument("--seed", type=int, default=7)
    _add_worker_flags(rep)

    fpr = sub.add_parser("fingerprint", help="per-tool attribution of a capture")
    fpr.add_argument("capture", type=Path, help=".rtrace/.pcap file or cache key")
    _add_capture_flags(fpr)

    val = sub.add_parser(
        "validate",
        help="simulate a mini decade and print the paper-claim scorecard",
    )
    val.add_argument("--days", type=int, default=10)
    val.add_argument("--max-packets", type=int, default=100_000)
    val.add_argument("--seed", type=int, default=7)
    val.add_argument("--years", type=str, default="2015,2017,2020,2022,2024")
    _add_worker_flags(val)

    anon = sub.add_parser(
        "anonymize",
        help="prefix-preserving source-address anonymisation of a capture",
    )
    anon.add_argument("capture", type=Path, help=".rtrace file or cache key")
    anon.add_argument("--out", type=Path, required=True)
    anon.add_argument("--key", type=int, required=True,
                      help="64-bit anonymisation key")
    anon.add_argument("--both-sides", action="store_true",
                      help="also anonymise destination addresses")
    _add_capture_flags(anon)

    cch = sub.add_parser("cache", help="inspect and prune the capture cache")
    cch_sub = cch.add_subparsers(dest="cache_command", required=True)
    cls = cch_sub.add_parser("ls", help="list cached captures, LRU first")
    cls.add_argument("--cache-dir", type=Path, required=True)
    cpr = cch_sub.add_parser(
        "prune",
        help="evict least-recently-used captures until the cache fits",
    )
    cpr.add_argument("--cache-dir", type=Path, required=True)
    cpr.add_argument("--max-bytes", type=str, required=True,
                     help="retained-size budget (e.g. 64M, 2G, 0)")

    srv = sub.add_parser(
        "serve",
        help="run the long-lived analysis service (HTTP API + SSE stats)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8752)
    srv.add_argument("--workers", type=int, default=2,
                     help="job worker processes")
    srv.add_argument("--cache-dir", type=Path, default=None,
                     help="capture cache directory "
                          "(default <state-dir>/captures)")
    srv.add_argument("--state-dir", type=Path, default=Path(".repro-serve"),
                     help="job records, checkpoints and scenarios")
    srv.add_argument("--max-retries", type=int, default=1,
                     help="extra attempts when a worker process dies")
    srv.add_argument("--stats-interval", type=float, default=1.0,
                     help="default /stats/live event cadence in seconds")
    srv.add_argument("--verbose", action="store_true",
                     help="log every HTTP request to stderr")

    return parser


def _make_cache(args: argparse.Namespace):
    """Build the capture cache named by ``--cache-dir`` (or ``None``)."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.exec import CaptureCache

    return CaptureCache(args.cache_dir)


def _resolve_capture(args: argparse.Namespace) -> Path:
    """Resolve a capture argument to a file, via the cache when needed.

    A capture argument that is not an existing file is looked up in
    ``--cache-dir`` as a content key (``repro-scan report --cache-dir X``
    leaves its captures there), so analyses can be re-run straight off the
    cache without knowing the file layout.
    """
    path: Path = args.capture
    if path.exists():
        return path
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        candidate = Path(cache_dir) / f"{path.name}.rtrace"
        if candidate.exists():
            return candidate
    raise FileNotFoundError(
        f"capture {path} not found"
        + (f" (also looked in cache {cache_dir})" if cache_dir else "")
    )


def _capture_source(args: argparse.Namespace, strict: bool = True):
    """Build the streaming source for a subcommand's capture argument."""
    path = _resolve_capture(args)
    batch_size = getattr(args, "batch_size", None) or STREAM_DEFAULT_BATCH_SIZE
    if path.suffix == ".pcap":
        return BatchStreamSource(
            read_pcap(path), batch_size=batch_size,
            window_s=getattr(args, "window_s", None),
        )
    return TraceStreamSource(
        path, batch_size=batch_size, strict=strict,
        window_s=getattr(args, "window_s", None),
        mmap=getattr(args, "mmap", None),
    )


def _load_capture(args: argparse.Namespace):
    """Read a capture plus its metadata through the streaming reader.

    The whole batch is still materialised (these subcommands are whole-
    capture analyses), but the reads go through the same windowed front-end
    as ``repro-scan stream``, so ``--batch-size`` bounds the read
    granularity everywhere.
    """
    source = _capture_source(args)
    batch = PacketBatch.concat(list(source.windows()))
    return batch, source.meta


def _cmd_simulate(args: argparse.Namespace) -> int:
    world = TelescopeWorld(rng=args.seed)
    cache = _make_cache(args)
    if args.workers > 0:
        sim = world.simulate_years(
            [args.year], days=args.days, max_packets=args.max_packets,
            min_scans=args.min_scans, workers=args.workers, cache=cache,
        )[args.year]
    else:
        sim = world.simulate_year(
            args.year, days=args.days, max_packets=args.max_packets,
            min_scans=args.min_scans, cache=cache,
        )
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)
    meta = {
        "year": sim.year,
        "days": sim.days,
        "packet_scale": sim.packet_scale,
        "scan_scale": sim.scan_scale,
        "seed": args.seed,
    }
    write_trace(args.out, sim.batch, meta=meta)
    print(f"wrote {len(sim.batch):,} packets to {args.out}")
    if args.pcap is not None:
        write_pcap(args.pcap, sim.batch)
        print(f"wrote pcap copy to {args.pcap}")
    print(f"ground truth: {len(sim.campaigns):,} campaigns, "
          f"{sim.background_sources:,} background sources, "
          f"SYN share {sim.syn_scan_share():.1%}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.json and not args.report:
        print("error: --json requires --report", file=sys.stderr)
        return 2
    batch, meta = _load_capture(args)
    year = args.year if args.year is not None else meta.get("year")
    days = args.days if args.days is not None else meta.get("days")
    if year is None or days is None:
        print("error: capture carries no year/days metadata; "
              "pass --year and --days", file=sys.stderr)
        return 2
    classifier = ScannerClassifier(build_default_registry())
    analysis = analyze_period(batch, year=int(year), days=int(days),
                              classifier=classifier)
    if args.report:
        # Report only on stdout — 'stream --report' promises byte-equal
        # output, so CI can diff the two commands directly (text and JSON).
        report = paper_report(analysis)
        print(render_paper_report_json(report) if args.json
              else render_paper_report(report))
        return 0
    summary = summarize_period(analysis)
    print(render_table1({int(year): summary}))
    print()
    print(render_table2(type_shares(analysis)))
    share = known_scanner_share(analysis)
    print(f"\nknown scanners: {share.organisations} orgs, "
          f"{share.source_share:.2%} of sources, "
          f"{share.packet_share:.1%} of packets")
    bias = single_source_bias(analysis.study_scans)
    print(f"single-source counting inflation: {bias.inflation_factor:.2f}x "
          f"({bias.collaborative_campaigns} collaborative campaigns)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        years = [int(y) for y in args.years.split(",") if y.strip()]
    except ValueError:
        print(f"error: malformed --years {args.years!r}", file=sys.stderr)
        return 2
    bad = [y for y in years if y not in ALL_YEARS]
    if bad or not years:
        print(f"error: years outside the study range: {bad}", file=sys.stderr)
        return 2
    world = TelescopeWorld(rng=args.seed)
    cache = _make_cache(args)
    sims = world.simulate_years(
        years, days=args.days, max_packets=args.max_packets,
        workers=args.workers, cache=cache,
    )
    summaries = {}
    for year in years:
        sim = sims[year]
        summaries[year] = summarize_period(analyze_simulation(sim))
        origin = "cached" if sim.cache_hit else "simulated"
        print(f"{year}: {origin} {len(sim.batch):,} packets", file=sys.stderr)
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)
    print(render_table1(
        summaries, scale_note="(simulation scale; volumes not projected)"
    ))
    print(f"peak RSS {format_bytes(peak_rss_bytes())}", file=sys.stderr)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    if args.json and not args.report:
        print("error: --json requires --report", file=sys.stderr)
        return 2
    try:
        config = StreamConfig(
            batch_size=args.batch_size or STREAM_DEFAULT_BATCH_SIZE,
            window_s=args.window_s,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            strict=not args.tolerate_truncation,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    source = _capture_source(args, strict=config.strict)

    if args.report:
        return _stream_report_cmd(args, source, config)

    if args.shards > 1:
        progress = None
        if args.progress_every > 0 and args.workers == 0:
            every = args.progress_every

            def progress(shard, stats):
                if stats.windows % every == 0:
                    print(f"shard {shard}: {stats.progress_line()}",
                          file=sys.stderr)

        sharded = ShardedStreamEngine(
            n_shards=args.shards, workers=args.workers, config=config
        )
        result = sharded.run(source, progress=progress)
        if result.resumed:
            print("resumed "
                  f"{sum(1 for r in result.shards if r.resumed)} shard(s) "
                  f"from checkpoints past {result.stats.resumed_packets:,} "
                  "packets", file=sys.stderr)
        for run in result.shards:
            print(f"shard {run.shard}: {run.stats.summary_line()}",
                  file=sys.stderr)
        print(result.stats.summary_line())
        table = result.scans
        print(f"identified {len(table):,} scan(s), "
              f"{int(table.packets.sum()):,} scan packets, "
              f"{result.stats.sessions_discarded:,} session(s) below criteria")
        if args.stats_json is not None:
            import json

            args.stats_json.write_text(
                json.dumps(result.stats.to_dict(), indent=2)
            )
            print(f"stats written to {args.stats_json}", file=sys.stderr)
        return 0

    progress = None
    if args.progress_every > 0:
        every = args.progress_every

        def progress(stats):
            if stats.windows % every == 0:
                print(stats.progress_line(), file=sys.stderr)

    stopper = _GracefulStop().install()
    try:
        engine = StreamEngine(config=config)
        result = engine.run(source, progress=progress, stop=stopper.stop)
    finally:
        stopper.restore()
    if result.resumed:
        print(f"resumed from checkpoint past "
              f"{result.stats.resumed_packets:,} packets", file=sys.stderr)
    if result.truncated_source:
        print("note: capture was truncated; partial final batch dropped",
              file=sys.stderr)
    if result.interrupted:
        where = (result.checkpoint_path if result.checkpoint_path is not None
                 else "(no --checkpoint-dir; progress not saved)")
        print(f"interrupted by {stopper.signal_name}; checkpoint flushed — "
              f"resumable from {where}", file=sys.stderr)
    print(result.stats.summary_line())
    table = result.scans
    print(f"identified {len(table):,} scan(s), "
          f"{int(table.packets.sum()):,} scan packets, "
          f"{result.stats.sessions_discarded:,} session(s) below criteria")
    if result.checkpoint_path is not None:
        print(f"checkpoint: {result.checkpoint_path}", file=sys.stderr)
    if args.stats_json is not None:
        import json

        args.stats_json.write_text(json.dumps(result.stats.to_dict(), indent=2))
        print(f"stats written to {args.stats_json}", file=sys.stderr)
    return 0


def _stream_report_cmd(
    args: argparse.Namespace, source, config: StreamConfig
) -> int:
    """``stream --report``: the paper report in one bounded-memory pass.

    Only the report itself goes to stdout (progress, stats and scan counts
    go to stderr), so its output is byte-diffable against
    ``analyze --report``.
    """
    progress = None
    if args.progress_every > 0 and (args.shards == 1 or args.workers == 0):
        every = args.progress_every
        if args.shards > 1:
            def progress(shard, stats):
                if stats.windows % every == 0:
                    print(f"shard {shard}: {stats.progress_line()}",
                          file=sys.stderr)
        else:
            def progress(stats):
                if stats.windows % every == 0:
                    print(stats.progress_line(), file=sys.stderr)

    stopper = _GracefulStop().install()
    try:
        result = stream_report(
            source,
            year=args.year,
            days=args.days,
            n_shards=args.shards,
            workers=args.workers,
            batch_size=config.batch_size,
            window_s=config.window_s,
            checkpoint_dir=config.checkpoint_dir,
            checkpoint_every=config.checkpoint_every,
            strict=config.strict,
            progress=progress,
            stop=stopper.stop if args.shards == 1 else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        stopper.restore()
    if result.resumed:
        print(f"resumed from checkpoint past "
              f"{result.stats.resumed_packets:,} packets", file=sys.stderr)
    print(result.stats.summary_line(), file=sys.stderr)
    print(f"identified {len(result.scans):,} scan(s); analysis state "
          f"{format_bytes(result.stats.analysis_state_bytes)}",
          file=sys.stderr)
    if result.interrupted:
        # A partial report would silently break the byte-parity promise
        # with 'analyze --report'; flush the checkpoint and say so instead.
        where = (result.checkpoint_path if result.checkpoint_path is not None
                 else "(no --checkpoint-dir; progress not saved)")
        print(f"interrupted by {stopper.signal_name}; checkpoint flushed — "
              f"resumable from {where}", file=sys.stderr)
    else:
        print(render_paper_report_json(result.report) if args.json
              else render_paper_report(result.report))
    if args.stats_json is not None:
        import json

        args.stats_json.write_text(
            json.dumps(result.stats.to_dict(), indent=2)
        )
        print(f"stats written to {args.stats_json}", file=sys.stderr)
    return 0


def _cmd_fingerprint(args: argparse.Namespace) -> int:
    batch, meta = _load_capture(args)
    if len(batch) == 0:
        print("capture is empty", file=sys.stderr)
        return 1
    tools = ToolFingerprinter().per_packet_tool(batch)
    total = len(batch)
    print(f"{total:,} packets")
    import numpy as np
    values, counts = np.unique([str(t) for t in tools], return_counts=True)
    for value, count in sorted(zip(values, counts), key=lambda kv: -kv[1]):
        print(f"  {value:10s} {count / total:6.1%}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        years = [int(y) for y in args.years.split(",") if y.strip()]
    except ValueError:
        print(f"error: malformed --years {args.years!r}", file=sys.stderr)
        return 2
    bad = [y for y in years if y not in ALL_YEARS]
    if bad or not years:
        print(f"error: years outside the study range: {bad}", file=sys.stderr)
        return 2
    world = TelescopeWorld(rng=args.seed)
    cache = _make_cache(args)
    print(f"simulating {len(years)} year(s) "
          f"(workers={args.workers}) ...", file=sys.stderr)
    sims = world.simulate_years(
        years, days=args.days, max_packets=args.max_packets, min_scans=400,
        workers=args.workers, cache=cache,
    )
    analyses = {year: analyze_simulation(sims[year]) for year in years}
    if cache is not None:
        print(cache.stats_line(), file=sys.stderr)
    checks = validate_reproduction(analyses, sims)
    print(render_scorecard(checks))
    print(f"peak RSS {format_bytes(peak_rss_bytes())}", file=sys.stderr)
    return 0 if all(c.passed for c in checks) else 1


def _cmd_anonymize(args: argparse.Namespace) -> int:
    batch, meta = _load_capture(args)
    try:
        anonymizer = PrefixPreservingAnonymizer(args.key)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = anonymizer.anonymize_batch(batch, sources_only=not args.both_sides)
    meta = dict(meta)
    meta["anonymized"] = True
    write_trace(args.out, out, meta=meta)
    print(f"wrote {len(out):,} anonymised packets to {args.out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec import CaptureCache

    cache = CaptureCache(args.cache_dir)
    if args.cache_command == "ls":
        entries = cache.usage()
        for entry in entries:
            print(f"{entry.key}  {format_bytes(entry.bytes):>10}  {entry.path}")
        print(f"{len(entries)} entr(y/ies), "
              f"{format_bytes(cache.total_bytes())} total", file=sys.stderr)
        return 0
    try:
        budget = _parse_size(args.max_bytes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    removed = cache.prune(budget)
    for entry in removed:
        print(f"evicted {entry.key}  {format_bytes(entry.bytes)}")
    print(f"{len(removed)} evicted; "
          f"{format_bytes(cache.total_bytes())} retained", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import create_server

    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        server = create_server(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            state_dir=args.state_dir,
            workers=args.workers,
            max_retries=args.max_retries,
            stats_interval=args.stats_interval,
            verbose=args.verbose,
        )
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2

    def _shutdown() -> None:
        # serve_forever() runs on this (main) thread; shutdown() blocks
        # until the loop exits, so it must run on a helper thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    stopper = _GracefulStop(on_signal=_shutdown).install()
    host, port = server.server_address[:2]
    jobs = server.app.queue.stats()["jobs"]
    print(f"repro-serve listening on http://{host}:{port} "
          f"(workers={args.workers}, state={args.state_dir}, "
          f"{jobs['total']} job record(s) restored)", file=sys.stderr)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        stopper.restore()
        server.app.close()
        server.server_close()
    print(f"stopped by {stopper.signal_name or 'shutdown'}; job records "
          f"flushed — resumable from {args.state_dir}", file=sys.stderr)
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "stream": _cmd_stream,
    "report": _cmd_report,
    "fingerprint": _cmd_fingerprint,
    "anonymize": _cmd_anonymize,
    "validate": _cmd_validate,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
