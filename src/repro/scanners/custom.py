"""Custom / unknown scanner tooling.

A large share of scanning — dominant in 2015, resurgent by 2023/2024 as
actors de-fingerprint their tools (paper §6.1) — comes from bespoke programs
whose header fields follow no tracked relation.  This model emits OS-stack
style fields: kernel-random sequence numbers, incrementing IP-ID counters per
host, and configurable target ordering.

The incrementing IP-ID is deliberate: it is what a scanner using the normal
socket API inherits from the kernel, and it must not systematically collide
with the Masscan relation (which ties IP-ID to the probe tuple).
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import RandomState
from repro.scanners.base import (
    HeaderFields,
    ScannerToolModel,
    TargetOrder,
    Tool,
    register_tool,
)


@register_tool
class CustomToolModel(ScannerToolModel):
    """A bespoke scanner with OS-default header behaviour."""

    tool = Tool.UNKNOWN

    def __init__(
        self,
        rng: RandomState = None,
        sequential: bool = False,
    ):
        super().__init__(rng)
        self.target_order = (
            TargetOrder.SEQUENTIAL if sequential else TargetOrder.RANDOM_PERMUTATION
        )
        # Kernel IP-ID counter starts at a random offset per host/boot.
        self._ip_id_counter = int(self._rng.integers(0, 2**16))

    def craft(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> HeaderFields:
        dst_ip, dst_port = self._validate_targets(dst_ip, dst_port)
        n = dst_ip.size
        ip_id = (self._ip_id_counter + np.arange(n, dtype=np.uint32)) % (1 << 16)
        self._ip_id_counter = int((self._ip_id_counter + n) % (1 << 16))
        return HeaderFields(
            src_port=self._ephemeral_src_ports(n),
            ip_id=ip_id.astype(np.uint16),
            seq=self._rng.integers(0, 2**32, size=n, dtype=np.uint32),
            ttl=self._default_ttls(n, base=64),
            window=np.full(n, 29200, dtype=np.uint16),  # linux default
        )
