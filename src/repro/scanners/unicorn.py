"""Unicornscan wire-behaviour model.

Unicornscan ("Unicorn") encodes source and destination host information in the
TCP sequence number (Ghiëtte et al. 2016).  Within one instance, two packets
satisfy (paper §3.3)::

    Seq1 ⊕ Seq2 = destIP1 ⊕ destIP2 ⊕ srcPort1 ⊕ srcPort2
                  ⊕ ((destPort1 ⊕ destPort2) << 16)

This holds when each packet's sequence number is built as::

    Seq = destIP ⊕ srcPort ⊕ (destPort << 16) ⊕ K

for a per-instance constant ``K``, which is what this model implements.

The paper finds Unicorn essentially extinct: only two distinct IP addresses
ever used it across the full decade — the simulator's per-year configs
reflect that.
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import RandomState
from repro.scanners.base import (
    HeaderFields,
    ScannerToolModel,
    TargetOrder,
    Tool,
    register_tool,
)


def unicorn_seq(
    dst_ip: np.ndarray, dst_port: np.ndarray, src_port: np.ndarray, key: int
) -> np.ndarray:
    """The Unicorn sequence-number construction (generator & detector share it)."""
    return (
        dst_ip.astype(np.uint32)
        ^ src_port.astype(np.uint32)
        ^ (dst_port.astype(np.uint32) << np.uint32(16))
        ^ np.uint32(key & 0xFFFFFFFF)
    ).astype(np.uint32)


@register_tool
class UnicornModel(ScannerToolModel):
    """One Unicornscan instance (one key)."""

    tool = Tool.UNICORN
    target_order = TargetOrder.RANDOM_PERMUTATION

    def __init__(self, rng: RandomState = None):
        super().__init__(rng)
        self._key = int(self._rng.integers(0, 2**32))

    def craft(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> HeaderFields:
        dst_ip, dst_port = self._validate_targets(dst_ip, dst_port)
        n = dst_ip.size
        src_port = self._ephemeral_src_ports(n)
        return HeaderFields(
            src_port=src_port,
            ip_id=self._rng.integers(0, 2**16, size=n, dtype=np.uint16),
            seq=unicorn_seq(dst_ip, dst_port, src_port, self._key),
            ttl=self._default_ttls(n, base=64),
            window=np.full(n, 4096, dtype=np.uint16),
        )
