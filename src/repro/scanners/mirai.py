"""Mirai wire-behaviour model.

Mirai's self-propagation scanner (Antonakakis et al. 2017) is a tiny
stateless routine on an embedded device.  Its hallmark — kept by virtually
every descendant strain because nobody bothers changing it — is using the
**destination IP address as the 32-bit TCP sequence number** (paper §3.3)::

    SeqNum == destIP

The original bot targets Telnet, choosing 23/TCP with probability 0.9 and
2323/TCP with 0.1; post-source-release strains re-point the routine at
whatever port their exploit needs, which is how the fingerprint ends up on
99.6% of all TCP ports by 2020.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._util.rng import RandomState
from repro.scanners.base import (
    HeaderFields,
    ScannerToolModel,
    TargetOrder,
    Tool,
    register_tool,
)

#: Default Mirai port mix: (port, probability) of the stock scanner.
STOCK_PORT_MIX: Sequence = ((23, 0.9), (2323, 0.1))


@register_tool
class MiraiModel(ScannerToolModel):
    """One Mirai-infected device (or a strain reusing its scan routine)."""

    tool = Tool.MIRAI
    target_order = TargetOrder.RANDOM_PERMUTATION

    def craft(self, dst_ip: np.ndarray, dst_port: np.ndarray) -> HeaderFields:
        dst_ip, dst_port = self._validate_targets(dst_ip, dst_port)
        n = dst_ip.size
        return HeaderFields(
            src_port=self._ephemeral_src_ports(n, low=1024, high=65535),
            ip_id=self._rng.integers(0, 2**16, size=n, dtype=np.uint16),
            seq=dst_ip.astype(np.uint32),  # the fingerprint
            ttl=self._default_ttls(n, base=64),
            window=self._rng.integers(1024, 65535, size=n, dtype=np.uint16),
        )

    def choose_stock_ports(self, rng: Optional[np.random.Generator], count: int) -> np.ndarray:
        """Sample destination ports with the stock 23/2323 (0.9/0.1) mix."""
        generator = rng if rng is not None else self._rng
        ports = np.array([p for p, _ in STOCK_PORT_MIX], dtype=np.uint16)
        probs = np.array([w for _, w in STOCK_PORT_MIX], dtype=float)
        return generator.choice(ports, size=count, p=probs / probs.sum())
